//! The adaptation controller: fit a set of prioritized streams into a
//! bandwidth budget by graceful degradation.
//!
//! This is the session-layer policy of the paper's reference \[27\] (the
//! TEEVE multi-stream adaptation framework): streams carry a *contribution
//! score* (how much they matter to the local field of view — the same
//! score the FOV subscription framework computes), and when the estimated
//! available bandwidth cannot carry every stream at full quality, the
//! controller repeatedly degrades the least-contributing stream one
//! quality level — dropping it entirely as the last step — until the
//! demand fits.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use teeve_types::{Quality, QualityLadder, StreamId};

/// One stream under adaptation: identity, FOV contribution score, and its
/// quality ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptStream {
    /// The stream.
    pub stream: StreamId,
    /// FOV contribution score; higher = degraded later.
    pub score: f64,
    /// The stream's quality ladder.
    pub ladder: QualityLadder,
}

/// The chosen level for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The stream decided on.
    pub stream: StreamId,
    /// Chosen ladder rung (0 = full quality), or `None` if dropped.
    pub level: Option<usize>,
    /// Bit rate granted (0 when dropped).
    pub bitrate_bps: u64,
    /// Utility delivered (0 when dropped).
    pub utility: f64,
}

impl Decision {
    /// Returns true if the stream was dropped entirely.
    pub fn is_dropped(&self) -> bool {
        self.level.is_none()
    }

    /// Returns the chosen rung as the shared [`Quality`] representation
    /// dissemination plan entries carry, or `None` when dropped.
    pub fn quality(&self) -> Option<Quality> {
        self.level.map(|l| Quality::new(l as u8))
    }
}

/// The controller's output: one decision per input stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationPlan {
    budget_bps: u64,
    decisions: Vec<Decision>,
}

impl AdaptationPlan {
    /// Returns the budget this plan was computed for.
    pub fn budget_bps(&self) -> u64 {
        self.budget_bps
    }

    /// Returns the decisions, in the input stream order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Returns the decision for `stream`, if it was in the input.
    pub fn decision(&self, stream: StreamId) -> Option<&Decision> {
        self.decisions.iter().find(|d| d.stream == stream)
    }

    /// Returns the total granted bit rate.
    pub fn total_bitrate_bps(&self) -> u64 {
        self.decisions.iter().map(|d| d.bitrate_bps).sum()
    }

    /// Returns the total delivered utility.
    pub fn total_utility(&self) -> f64 {
        self.decisions.iter().map(|d| d.utility).sum()
    }

    /// Returns the number of dropped streams.
    pub fn dropped_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_dropped()).count()
    }

    /// Returns the number of streams served below full quality (including
    /// drops).
    pub fn degraded_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.level != Some(0)).count()
    }
}

/// Priority-based graceful-degradation controller.
///
/// # Examples
///
/// ```
/// use teeve_adapt::{AdaptStream, AdaptationController, QualityLadder};
/// use teeve_types::{SiteId, StreamId};
///
/// let streams: Vec<AdaptStream> = (0..4)
///     .map(|q| AdaptStream {
///         stream: StreamId::new(SiteId::new(1), q),
///         score: 1.0 - 0.2 * f64::from(q),
///         ladder: QualityLadder::paper_default(),
///     })
///     .collect();
///
/// // 32 Mbps carries everything at full quality (4 × 8 Mbps)…
/// let plan = AdaptationController::new().plan(32_000_000, &streams);
/// assert_eq!(plan.degraded_count(), 0);
///
/// // …at 20 Mbps the two least-contributing streams degrade first.
/// let tight = AdaptationController::new().plan(20_000_000, &streams);
/// assert!(tight.total_bitrate_bps() <= 20_000_000);
/// assert_eq!(tight.decision(streams[0].stream).unwrap().level, Some(0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptationController {
    _private: (),
}

impl AdaptationController {
    /// Creates a controller.
    pub fn new() -> Self {
        AdaptationController::default()
    }

    /// Fits `streams` into `budget_bps`.
    ///
    /// Starting from full quality everywhere, the least-scored stream is
    /// degraded one rung at a time (ties broken by stream identity, so
    /// plans are deterministic) until the total demand fits the budget.
    /// A stream below its last rung is dropped. Streams the budget can
    /// never carry — even alone at the lowest rung — end up dropped, so
    /// the loop always terminates with `total ≤ budget`.
    pub fn plan(&self, budget_bps: u64, streams: &[AdaptStream]) -> AdaptationPlan {
        // Current rung per stream: Some(index) or None = dropped.
        let mut levels: Vec<Option<usize>> = vec![Some(0); streams.len()];
        let mut total: u64 = streams.iter().map(|s| s.ladder.full().bitrate_bps).sum();

        // Degradation order: ascending score, then stream id for
        // determinism. Each pass degrades the weakest stream that still
        // has somewhere to go. `total_cmp` gives NaN scores a fixed place
        // in the order instead of the unstable "pretend equal" a partial
        // comparison would produce.
        let mut order: Vec<usize> = (0..streams.len()).collect();
        order.sort_by(|&a, &b| {
            streams[a]
                .score
                .total_cmp(&streams[b].score)
                .then_with(|| streams[a].stream.cmp(&streams[b].stream))
        });

        while total > budget_bps {
            // The weakest stream that is not yet dropped.
            let Some(&victim) = order.iter().find(|&&i| levels[i].is_some()) else {
                break; // everything dropped; total is 0
            };
            let ladder = &streams[victim].ladder;
            let current = levels[victim].expect("victim not dropped");
            let current_rate = ladder.level(current).bitrate_bps;
            if current + 1 < ladder.len() {
                levels[victim] = Some(current + 1);
                total = total - current_rate + ladder.level(current + 1).bitrate_bps;
            } else {
                levels[victim] = None;
                total -= current_rate;
            }
        }

        let decisions = streams
            .iter()
            .zip(&levels)
            .map(|(s, &level)| match level {
                Some(i) => {
                    let rung = s.ladder.level(i);
                    Decision {
                        stream: s.stream,
                        level: Some(i),
                        bitrate_bps: rung.bitrate_bps,
                        utility: rung.utility,
                    }
                }
                None => Decision {
                    stream: s.stream,
                    level: None,
                    bitrate_bps: 0,
                    utility: 0.0,
                },
            })
            .collect();
        AdaptationPlan {
            budget_bps,
            decisions,
        }
    }
}

/// Summarizes a plan per origin site: granted bit rate and stream count,
/// the shape the rendezvous point reports upstream.
pub fn per_site_grants(plan: &AdaptationPlan) -> BTreeMap<teeve_types::SiteId, (u64, usize)> {
    let mut out = BTreeMap::new();
    for d in plan.decisions() {
        if !d.is_dropped() {
            let entry = out.entry(d.stream.origin()).or_insert((0, 0));
            entry.0 += d.bitrate_bps;
            entry.1 += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_types::SiteId;

    fn streams(scores: &[f64]) -> Vec<AdaptStream> {
        scores
            .iter()
            .enumerate()
            .map(|(q, &score)| AdaptStream {
                stream: StreamId::new(SiteId::new(0), q as u32),
                score,
                ladder: QualityLadder::paper_default(),
            })
            .collect()
    }

    #[test]
    fn ample_budget_keeps_full_quality() {
        let s = streams(&[0.9, 0.5, 0.1]);
        let plan = AdaptationController::new().plan(100_000_000, &s);
        assert_eq!(plan.degraded_count(), 0);
        assert_eq!(plan.total_bitrate_bps(), 24_000_000);
        assert_eq!(plan.total_utility(), 3.0);
    }

    #[test]
    fn plan_respects_budget() {
        let s = streams(&[0.9, 0.5, 0.1]);
        for budget in [0, 1_000_000, 7_999_999, 12_000_000, 23_999_999] {
            let plan = AdaptationController::new().plan(budget, &s);
            assert!(
                plan.total_bitrate_bps() <= budget,
                "budget {budget} exceeded: {}",
                plan.total_bitrate_bps()
            );
        }
    }

    #[test]
    fn weakest_stream_degrades_first() {
        let s = streams(&[0.9, 0.5, 0.1]);
        // 24 Mbps full demand; 20 Mbps forces one 8→4 degradation.
        let plan = AdaptationController::new().plan(20_000_000, &s);
        assert_eq!(plan.decision(s[0].stream).unwrap().level, Some(0));
        assert_eq!(plan.decision(s[1].stream).unwrap().level, Some(0));
        assert_eq!(plan.decision(s[2].stream).unwrap().level, Some(1));
    }

    #[test]
    fn degradation_cascades_up_the_priority_order() {
        let s = streams(&[0.9, 0.5, 0.1]);
        // 10 Mbps: stream 2 drops (−8), stream 1 steps to 2 Mbps
        // (8→4→2), stream 0 to 8 Mbps: 0+2+8 = 10.
        let plan = AdaptationController::new().plan(10_000_000, &s);
        assert!(plan.decision(s[2].stream).unwrap().is_dropped());
        assert_eq!(plan.decision(s[1].stream).unwrap().bitrate_bps, 2_000_000);
        assert_eq!(plan.decision(s[0].stream).unwrap().bitrate_bps, 8_000_000);
    }

    #[test]
    fn zero_budget_drops_everything() {
        let s = streams(&[0.9, 0.5]);
        let plan = AdaptationController::new().plan(0, &s);
        assert_eq!(plan.dropped_count(), 2);
        assert_eq!(plan.total_bitrate_bps(), 0);
        assert_eq!(plan.total_utility(), 0.0);
    }

    #[test]
    fn no_streams_is_a_valid_plan() {
        let plan = AdaptationController::new().plan(1_000_000, &[]);
        assert!(plan.decisions().is_empty());
        assert_eq!(plan.total_bitrate_bps(), 0);
    }

    #[test]
    fn equal_scores_break_ties_deterministically() {
        let s = streams(&[0.5, 0.5, 0.5]);
        let a = AdaptationController::new().plan(18_000_000, &s);
        let b = AdaptationController::new().plan(18_000_000, &s);
        assert_eq!(a, b);
        // The lowest stream id degrades first on a tie.
        assert_ne!(a.decision(s[0].stream).unwrap().level, Some(0));
    }

    #[test]
    fn nan_scores_cannot_destabilize_the_plan() {
        // A NaN FOV score (e.g. a degenerate geometry division) must not
        // make the degradation order depend on the input permutation:
        // total_cmp places NaN deterministically, so the same stream set
        // always produces the same plan regardless of score pathologies.
        let mut s = streams(&[0.9, f64::NAN, 0.1, f64::NAN]);
        let budget = 14_000_000; // forces several degradations
        let baseline = AdaptationController::new().plan(budget, &s);
        // Re-planning the identical input is trivially stable…
        assert_eq!(AdaptationController::new().plan(budget, &s), baseline);
        // …and a reordered input serves every stream identically (the
        // old partial_cmp sort could legally produce different victim
        // orders for permutations of a NaN-scored set).
        s.reverse();
        let reordered = AdaptationController::new().plan(budget, &s);
        for d in baseline.decisions() {
            assert_eq!(
                reordered.decision(d.stream).unwrap().level,
                d.level,
                "{} served differently after reordering",
                d.stream
            );
        }
        assert!(baseline.total_bitrate_bps() <= budget);
    }

    #[test]
    fn decisions_expose_shared_quality() {
        let s = streams(&[0.9, 0.1]);
        let plan = AdaptationController::new().plan(12_000_000, &s);
        let full = plan.decision(s[0].stream).unwrap();
        assert_eq!(full.quality(), Some(teeve_types::Quality::FULL));
        let degraded = plan.decision(s[1].stream).unwrap();
        assert_eq!(degraded.quality(), Some(teeve_types::Quality::new(1)));
        let dropped = Decision {
            stream: s[0].stream,
            level: None,
            bitrate_bps: 0,
            utility: 0.0,
        };
        assert_eq!(dropped.quality(), None);
    }

    #[test]
    fn more_budget_never_hurts_utility() {
        let s = streams(&[0.8, 0.6, 0.4, 0.2]);
        let mut prev = -1.0;
        for budget in (0..=40_000_000).step_by(2_000_000) {
            let u = AdaptationController::new().plan(budget, &s).total_utility();
            assert!(u >= prev, "utility dropped at budget {budget}");
            prev = u;
        }
    }

    #[test]
    fn per_site_grants_aggregate() {
        let mut s = streams(&[0.9, 0.8]);
        s.push(AdaptStream {
            stream: StreamId::new(SiteId::new(3), 0),
            score: 0.7,
            ladder: QualityLadder::paper_default(),
        });
        let plan = AdaptationController::new().plan(100_000_000, &s);
        let grants = per_site_grants(&plan);
        assert_eq!(grants[&SiteId::new(0)], (16_000_000, 2));
        assert_eq!(grants[&SiteId::new(3)], (8_000_000, 1));
    }
}
