//! The closed loop: bandwidth estimation driving replanning with
//! hysteresis.

use serde::{Deserialize, Serialize};

use crate::controller::{AdaptStream, AdaptationController, AdaptationPlan};
use crate::estimator::BandwidthEstimator;

/// An adaptive receiver: owns the estimator and the current plan, and
/// replans only when the estimate has drifted past a hysteresis band —
/// the flap damping every deployed adaptation loop needs (constant
/// replanning makes the rendered quality oscillate visibly).
///
/// # Examples
///
/// ```
/// use teeve_adapt::{AdaptStream, AdaptiveReceiver, BandwidthEstimator, QualityLadder};
/// use teeve_types::{SiteId, StreamId};
///
/// let streams: Vec<AdaptStream> = (0..3)
///     .map(|q| AdaptStream {
///         stream: StreamId::new(SiteId::new(1), q),
///         score: 1.0 / f64::from(q + 1),
///         ladder: QualityLadder::paper_default(),
///     })
///     .collect();
/// // A fully reactive estimator keeps the example arithmetic exact.
/// let mut rx = AdaptiveReceiver::new(streams, 0.15)
///     .with_estimator(BandwidthEstimator::new(1.0));
///
/// // First observation always produces a plan.
/// let plan = rx.observe_bps(30_000_000.0).expect("initial plan");
/// assert_eq!(plan.degraded_count(), 0);
///
/// // A tiny wiggle stays inside the hysteresis band: no replan.
/// assert!(rx.observe_bps(29_000_000.0).is_none());
///
/// // A real drop replans and degrades.
/// let degraded = rx.observe_bps(12_000_000.0).expect("replans");
/// assert!(degraded.degraded_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReceiver {
    streams: Vec<AdaptStream>,
    estimator: BandwidthEstimator,
    /// Relative drift that triggers a replan, e.g. 0.15 = 15 %.
    hysteresis: f64,
    /// Budget the current plan was computed for.
    planned_budget_bps: Option<u64>,
}

impl AdaptiveReceiver {
    /// Creates a receiver adapting `streams` with the default estimator
    /// and the given hysteresis band.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is negative or not finite.
    pub fn new(streams: Vec<AdaptStream>, hysteresis: f64) -> Self {
        assert!(
            hysteresis.is_finite() && hysteresis >= 0.0,
            "hysteresis must be a non-negative fraction"
        );
        AdaptiveReceiver {
            streams,
            estimator: BandwidthEstimator::default(),
            hysteresis,
            planned_budget_bps: None,
        }
    }

    /// Replaces the estimator (e.g. for a more reactive alpha).
    pub fn with_estimator(mut self, estimator: BandwidthEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Returns the streams under adaptation.
    pub fn streams(&self) -> &[AdaptStream] {
        &self.streams
    }

    /// Returns the budget of the active plan, if any.
    pub fn planned_budget_bps(&self) -> Option<u64> {
        self.planned_budget_bps
    }

    /// Returns the current bandwidth estimate in bits per second.
    pub fn estimate_bps(&self) -> f64 {
        self.estimator.estimate_bps()
    }

    /// Feeds one throughput observation (bits per second) and replans if
    /// the smoothed estimate drifted out of the hysteresis band around
    /// the active plan's budget. Returns the new plan when one was made.
    pub fn observe_bps(&mut self, bps: f64) -> Option<AdaptationPlan> {
        self.estimator.observe_bps(bps);
        let estimate = self.estimator.estimate_bps();
        let replan = match self.planned_budget_bps {
            None => true,
            Some(planned) => {
                let planned = planned as f64;
                (estimate - planned).abs() > planned * self.hysteresis
            }
        };
        if !replan {
            return None;
        }
        let budget = estimate.max(0.0) as u64;
        self.planned_budget_bps = Some(budget);
        Some(AdaptationController::new().plan(budget, &self.streams))
    }

    /// Feeds a `(bytes, seconds)` observation; see [`Self::observe_bps`].
    pub fn observe_bytes(&mut self, bytes: u64, seconds: f64) -> Option<AdaptationPlan> {
        if seconds <= 0.0 || !seconds.is_finite() {
            return None;
        }
        self.observe_bps(bytes as f64 * 8.0 / seconds)
    }

    /// Updates the stream set (a FOV change) and forces a replan at the
    /// current estimate.
    pub fn set_streams(&mut self, streams: Vec<AdaptStream>) -> AdaptationPlan {
        self.streams = streams;
        let budget = self.estimator.estimate_bps().max(0.0) as u64;
        self.planned_budget_bps = Some(budget);
        AdaptationController::new().plan(budget, &self.streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_types::QualityLadder;
    use teeve_types::{SiteId, StreamId};

    fn three_streams() -> Vec<AdaptStream> {
        (0..3)
            .map(|q| AdaptStream {
                stream: StreamId::new(SiteId::new(2), q),
                score: 1.0 - 0.3 * f64::from(q),
                ladder: QualityLadder::paper_default(),
            })
            .collect()
    }

    #[test]
    fn first_observation_always_plans() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.2);
        assert!(rx.observe_bps(25_000_000.0).is_some());
        assert_eq!(rx.planned_budget_bps(), Some(25_000_000));
    }

    #[test]
    fn small_wiggles_do_not_replan() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.2);
        rx.observe_bps(20_000_000.0).unwrap();
        for bps in [21e6, 19e6, 20.5e6, 18.5e6] {
            assert!(rx.observe_bps(bps).is_none(), "replanned at {bps}");
        }
    }

    #[test]
    fn large_drop_replans_and_degrades() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.1)
            .with_estimator(BandwidthEstimator::new(1.0));
        let initial = rx.observe_bps(30_000_000.0).unwrap();
        assert_eq!(initial.degraded_count(), 0);
        let degraded = rx.observe_bps(9_000_000.0).unwrap();
        assert!(degraded.degraded_count() > 0);
        assert!(degraded.total_bitrate_bps() <= 9_000_000);
    }

    #[test]
    fn recovery_replans_upwards() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.1)
            .with_estimator(BandwidthEstimator::new(1.0));
        rx.observe_bps(8_000_000.0).unwrap();
        let recovered = rx.observe_bps(40_000_000.0).expect("replans on recovery");
        assert_eq!(recovered.degraded_count(), 0);
    }

    #[test]
    fn smoothing_needs_sustained_change() {
        // With a gentle alpha, a single dip does not cross the band.
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.3)
            .with_estimator(BandwidthEstimator::new(0.1));
        rx.observe_bps(24_000_000.0).unwrap();
        assert!(rx.observe_bps(10_000_000.0).is_none());
        // Sustained congestion eventually drives the estimate through it.
        let mut replanned = false;
        for _ in 0..30 {
            if rx.observe_bps(10_000_000.0).is_some() {
                replanned = true;
                break;
            }
        }
        assert!(replanned);
    }

    #[test]
    fn fov_change_forces_replan() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.2);
        rx.observe_bps(16_000_000.0).unwrap();
        let mut streams = three_streams();
        streams.truncate(1);
        let plan = rx.set_streams(streams);
        assert_eq!(plan.decisions().len(), 1);
        assert_eq!(plan.degraded_count(), 0); // one 8 Mbps stream fits 16
    }

    #[test]
    fn byte_observations_drive_the_loop() {
        let mut rx = AdaptiveReceiver::new(three_streams(), 0.2);
        // 2.5 MB over 1 s = 20 Mbps.
        let plan = rx.observe_bytes(2_500_000, 1.0).unwrap();
        assert!(plan.total_bitrate_bps() <= 20_000_000);
        assert!(rx.observe_bytes(100, 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn negative_hysteresis_panics() {
        let _ = AdaptiveReceiver::new(Vec::new(), -0.1);
    }
}
