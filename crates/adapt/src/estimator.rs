//! Available-bandwidth estimation from throughput observations.

use serde::{Deserialize, Serialize};

/// Exponentially weighted moving-average bandwidth estimator.
///
/// Receivers feed it `(bytes, seconds)` throughput observations; the
/// estimate converges towards the observed rate with smoothing factor
/// `alpha` (higher = more reactive). This is the classic estimator used by
/// transport-level flow coordination in tele-immersion (the paper's
/// reference \[15\]) and the input to the adaptation controller.
///
/// # Examples
///
/// ```
/// use teeve_adapt::BandwidthEstimator;
///
/// let mut est = BandwidthEstimator::new(0.5);
/// est.observe_bytes(1_250_000, 1.0); // 10 Mbps for one second
/// est.observe_bytes(1_250_000, 1.0);
/// let mbps = est.estimate_bps() / 1e6;
/// assert!((mbps - 10.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    alpha: f64,
    estimate_bps: Option<f64>,
}

impl BandwidthEstimator {
    /// Creates an estimator with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        BandwidthEstimator {
            alpha,
            estimate_bps: None,
        }
    }

    /// Returns the smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one observation: `bytes` transferred over `seconds`.
    /// Observations with a non-positive duration are ignored.
    pub fn observe_bytes(&mut self, bytes: u64, seconds: f64) {
        if seconds <= 0.0 || !seconds.is_finite() {
            return;
        }
        self.observe_bps(bytes as f64 * 8.0 / seconds);
    }

    /// Feeds one observation already expressed in bits per second.
    /// Negative or non-finite rates are ignored.
    pub fn observe_bps(&mut self, bps: f64) {
        if !bps.is_finite() || bps < 0.0 {
            return;
        }
        self.estimate_bps = Some(match self.estimate_bps {
            // The first observation seeds the filter directly; warming up
            // from zero would under-report for many rounds.
            None => bps,
            Some(prev) => prev + self.alpha * (bps - prev),
        });
    }

    /// Returns the current estimate in bits per second (0 before any
    /// observation).
    pub fn estimate_bps(&self) -> f64 {
        self.estimate_bps.unwrap_or(0.0)
    }

    /// Returns true if at least one observation was recorded.
    pub fn is_warm(&self) -> bool {
        self.estimate_bps.is_some()
    }

    /// Discards all history, returning the filter to its cold state.
    pub fn reset(&mut self) {
        self.estimate_bps = None;
    }
}

impl Default for BandwidthEstimator {
    /// `alpha = 0.25`: reacts within a few observations without chasing
    /// single-sample noise.
    fn default() -> Self {
        BandwidthEstimator::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_the_estimate() {
        let mut est = BandwidthEstimator::new(0.1);
        est.observe_bps(5e6);
        assert_eq!(est.estimate_bps(), 5e6);
        assert!(est.is_warm());
    }

    #[test]
    fn cold_estimator_reports_zero() {
        let est = BandwidthEstimator::default();
        assert_eq!(est.estimate_bps(), 0.0);
        assert!(!est.is_warm());
    }

    #[test]
    fn estimate_converges_to_steady_rate() {
        let mut est = BandwidthEstimator::new(0.25);
        est.observe_bps(1e6);
        for _ in 0..50 {
            est.observe_bps(8e6);
        }
        assert!((est.estimate_bps() - 8e6).abs() < 1e3);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut est = BandwidthEstimator::new(1.0);
        est.observe_bps(3e6);
        est.observe_bps(9e6);
        assert_eq!(est.estimate_bps(), 9e6);
    }

    #[test]
    fn smoothing_dampens_spikes() {
        let mut est = BandwidthEstimator::new(0.1);
        est.observe_bps(10e6);
        est.observe_bps(100e6); // one spike
        assert!(est.estimate_bps() < 20e6);
    }

    #[test]
    fn byte_observations_convert_to_bits() {
        let mut est = BandwidthEstimator::new(1.0);
        est.observe_bytes(1000, 2.0);
        assert_eq!(est.estimate_bps(), 4000.0);
    }

    #[test]
    fn bad_observations_are_ignored() {
        let mut est = BandwidthEstimator::new(0.5);
        est.observe_bytes(100, 0.0);
        est.observe_bytes(100, -1.0);
        est.observe_bps(f64::NAN);
        est.observe_bps(-5.0);
        assert!(!est.is_warm());
    }

    #[test]
    fn reset_clears_history() {
        let mut est = BandwidthEstimator::default();
        est.observe_bps(1e6);
        est.reset();
        assert!(!est.is_warm());
        assert_eq!(est.estimate_bps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_panics() {
        let _ = BandwidthEstimator::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn oversized_alpha_panics() {
        let _ = BandwidthEstimator::new(1.5);
    }
}
