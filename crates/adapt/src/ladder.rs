//! Quality ladders: the discrete bit-rate levels a stream can be served
//! at.

use serde::{Deserialize, Serialize};

/// One rung of a quality ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityLevel {
    /// Bit rate this level consumes.
    pub bitrate_bps: u64,
    /// Relative visual utility in `[0, 1]` (1 = full quality).
    pub utility: f64,
}

/// A descending ladder of quality levels for one stream, ending in an
/// implicit "dropped" state (0 bps, 0 utility).
///
/// # Examples
///
/// ```
/// use teeve_adapt::QualityLadder;
///
/// let ladder = QualityLadder::paper_default();
/// assert_eq!(ladder.full().bitrate_bps, 8_000_000);
/// assert!(ladder.level(1).bitrate_bps < ladder.level(0).bitrate_bps);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityLadder {
    levels: Vec<QualityLevel>,
}

impl QualityLadder {
    /// Creates a ladder from strictly descending bit rates.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, bit rates are not strictly
    /// descending and positive, or utilities are not in `(0, 1]` and
    /// non-increasing.
    pub fn new(levels: Vec<QualityLevel>) -> Self {
        assert!(!levels.is_empty(), "a ladder needs at least one level");
        for pair in levels.windows(2) {
            assert!(
                pair[0].bitrate_bps > pair[1].bitrate_bps,
                "bit rates must be strictly descending"
            );
            assert!(
                pair[0].utility >= pair[1].utility,
                "utility must be non-increasing"
            );
        }
        for level in &levels {
            assert!(level.bitrate_bps > 0, "levels must have positive bit rate");
            assert!(
                level.utility > 0.0 && level.utility <= 1.0,
                "utility must be in (0, 1]"
            );
        }
        QualityLadder { levels }
    }

    /// The paper's stream economics: full quality at 8 Mbps (the middle
    /// of the quoted 5–10 Mbps band), then half-resolution (4 Mbps),
    /// quarter (2 Mbps).
    pub fn paper_default() -> Self {
        QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 8_000_000,
                utility: 1.0,
            },
            QualityLevel {
                bitrate_bps: 4_000_000,
                utility: 0.7,
            },
            QualityLevel {
                bitrate_bps: 2_000_000,
                utility: 0.45,
            },
        ])
    }

    /// Returns the number of real (non-dropped) levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Ladders are never empty; this mirrors the collection convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the full-quality level.
    pub fn full(&self) -> QualityLevel {
        self.levels[0]
    }

    /// Returns level `index` (0 = full quality).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn level(&self, index: usize) -> QualityLevel {
        self.levels[index]
    }

    /// Returns all levels, descending.
    pub fn levels(&self) -> &[QualityLevel] {
        &self.levels
    }
}

impl Default for QualityLadder {
    /// Same as [`QualityLadder::paper_default`].
    fn default() -> Self {
        QualityLadder::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_is_descending() {
        let l = QualityLadder::paper_default();
        assert_eq!(l.len(), 3);
        assert!(l.level(0).bitrate_bps > l.level(1).bitrate_bps);
        assert!(l.level(1).bitrate_bps > l.level(2).bitrate_bps);
        assert_eq!(l.full().utility, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ladder_panics() {
        let _ = QualityLadder::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn ascending_rates_panic() {
        let _ = QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 1,
                utility: 0.5,
            },
            QualityLevel {
                bitrate_bps: 2,
                utility: 0.4,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "utility")]
    fn increasing_utility_panics() {
        let _ = QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 2,
                utility: 0.4,
            },
            QualityLevel {
                bitrate_bps: 1,
                utility: 0.9,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "positive bit rate")]
    fn zero_rate_panics() {
        let _ = QualityLadder::new(vec![QualityLevel {
            bitrate_bps: 0,
            utility: 0.5,
        }]);
    }
}
