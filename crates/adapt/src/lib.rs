//! Multi-stream bandwidth adaptation for 3D tele-immersive sessions.
//!
//! The paper's dissemination model decides *which* streams cross the
//! overlay; this crate decides *at what quality* each admitted stream is
//! served when the receiving site's measured bandwidth falls short — the
//! session-layer adaptation framework of the paper's reference \[27\]
//! (Yang et al., NOSSDAV '06), rebuilt on the same FOV contribution
//! scores the subscription framework produces:
//!
//! * [`BandwidthEstimator`] — EWMA throughput estimation;
//! * [`QualityLadder`] — the discrete bit rates a stream can degrade
//!   through;
//! * [`AdaptationController`] — priority-based graceful degradation that
//!   fits the stream set into a budget;
//! * [`AdaptiveReceiver`] — the closed loop with hysteresis.
//!
//! # Examples
//!
//! ```
//! use teeve_adapt::{AdaptStream, AdaptationController, QualityLadder};
//! use teeve_types::{SiteId, StreamId};
//!
//! // Four remote streams, scored by FOV contribution.
//! let streams: Vec<AdaptStream> = (0..4)
//!     .map(|q| AdaptStream {
//!         stream: StreamId::new(SiteId::new(1), q),
//!         score: 1.0 - 0.2 * f64::from(q),
//!         ladder: QualityLadder::paper_default(),
//!     })
//!     .collect();
//!
//! // 18 Mbps cannot carry 4 × 8 Mbps: the weakest streams degrade first.
//! let plan = AdaptationController::new().plan(18_000_000, &streams);
//! assert!(plan.total_bitrate_bps() <= 18_000_000);
//! assert_eq!(plan.decision(streams[0].stream).unwrap().level, Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod driver;
mod estimator;

pub use controller::{
    per_site_grants, AdaptStream, AdaptationController, AdaptationPlan, Decision,
};
pub use driver::AdaptiveReceiver;
pub use estimator::BandwidthEstimator;
// The quality vocabulary (rung indices, levels, ladders) lives in
// `teeve-types` so dissemination plan entries and the wire protocol can
// carry it too; re-exported here for the adaptation-centric callers.
pub use teeve_types::{Quality, QualityLadder, QualityLevel};
