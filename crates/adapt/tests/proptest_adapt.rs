//! Property tests for the adaptation controller's invariants.

use proptest::prelude::*;
use teeve_adapt::{AdaptStream, AdaptationController, QualityLadder, QualityLevel};
use teeve_types::{SiteId, StreamId};

/// An arbitrary descending quality ladder of 1–4 rungs.
fn arb_ladder() -> impl Strategy<Value = QualityLadder> {
    proptest::collection::vec(1_000u64..10_000_000, 1..5).prop_map(|mut rates| {
        rates.sort_unstable_by(|a, b| b.cmp(a));
        rates.dedup();
        let n = rates.len() as f64;
        let levels = rates
            .into_iter()
            .enumerate()
            .map(|(i, bitrate_bps)| QualityLevel {
                bitrate_bps,
                utility: 1.0 - i as f64 / (n + 1.0),
            })
            .collect();
        QualityLadder::new(levels)
    })
}

/// An arbitrary stream set (1–12 streams across a few origins).
fn arb_streams() -> impl Strategy<Value = Vec<AdaptStream>> {
    proptest::collection::vec((0u32..4, 0.0f64..1.0, arb_ladder()), 1..12).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(q, (origin, score, ladder))| AdaptStream {
                stream: StreamId::new(SiteId::new(origin), q as u32),
                score,
                ladder,
            })
            .collect()
    })
}

proptest! {
    /// A plan never exceeds its budget.
    #[test]
    fn plan_fits_budget(streams in arb_streams(), budget in 0u64..100_000_000) {
        let plan = AdaptationController::new().plan(budget, &streams);
        prop_assert!(plan.total_bitrate_bps() <= budget);
    }

    /// Every input stream receives exactly one decision, in order.
    #[test]
    fn plan_covers_every_stream(streams in arb_streams(), budget in 0u64..100_000_000) {
        let plan = AdaptationController::new().plan(budget, &streams);
        prop_assert_eq!(plan.decisions().len(), streams.len());
        for (s, d) in streams.iter().zip(plan.decisions()) {
            prop_assert_eq!(s.stream, d.stream);
        }
    }

    /// Utility is monotone in budget.
    #[test]
    fn utility_is_monotone_in_budget(
        streams in arb_streams(),
        low in 0u64..50_000_000,
        extra in 0u64..50_000_000,
    ) {
        let c = AdaptationController::new();
        let u_low = c.plan(low, &streams).total_utility();
        let u_high = c.plan(low + extra, &streams).total_utility();
        prop_assert!(u_high >= u_low - 1e-12);
    }

    /// With identical ladders, a higher-scored stream is never served
    /// worse than a lower-scored one.
    #[test]
    fn priority_order_is_respected(
        scores in proptest::collection::vec(0.0f64..1.0, 2..10),
        budget in 0u64..80_000_000,
    ) {
        let streams: Vec<AdaptStream> = scores
            .iter()
            .enumerate()
            .map(|(q, &score)| AdaptStream {
                stream: StreamId::new(SiteId::new(0), q as u32),
                score,
                ladder: QualityLadder::paper_default(),
            })
            .collect();
        let plan = AdaptationController::new().plan(budget, &streams);
        for a in 0..streams.len() {
            for b in 0..streams.len() {
                if streams[a].score > streams[b].score {
                    let da = &plan.decisions()[a];
                    let db = &plan.decisions()[b];
                    // Dropped sorts after every real level.
                    let rank = |d: &teeve_adapt::Decision| d.level.map_or(usize::MAX, |l| l);
                    prop_assert!(
                        rank(da) <= rank(db),
                        "score {} at {:?} vs score {} at {:?}",
                        streams[a].score, da.level, streams[b].score, db.level
                    );
                }
            }
        }
    }

    /// Plans are deterministic.
    #[test]
    fn plans_are_deterministic(streams in arb_streams(), budget in 0u64..100_000_000) {
        let a = AdaptationController::new().plan(budget, &streams);
        let b = AdaptationController::new().plan(budget, &streams);
        prop_assert_eq!(a, b);
    }

    /// Granted bit rate per decision is one of the stream's ladder rungs
    /// or zero.
    #[test]
    fn grants_come_from_the_ladder(streams in arb_streams(), budget in 0u64..100_000_000) {
        let plan = AdaptationController::new().plan(budget, &streams);
        for (s, d) in streams.iter().zip(plan.decisions()) {
            match d.level {
                Some(i) => {
                    prop_assert_eq!(d.bitrate_bps, s.ladder.level(i).bitrate_bps);
                    prop_assert_eq!(d.utility, s.ladder.level(i).utility);
                }
                None => {
                    prop_assert_eq!(d.bitrate_bps, 0);
                    prop_assert_eq!(d.utility, 0.0);
                }
            }
        }
    }

    /// Every served decision's level is a valid index into its stream's
    /// ladder, and the shared-representation view agrees with it.
    #[test]
    fn levels_are_valid_ladder_indices(
        streams in arb_streams(),
        budget in 0u64..100_000_000,
        scores in proptest::collection::vec((0u32..4, 0.0f64..1.0), 1..12),
    ) {
        // Overlay arbitrary — one in four NaN — scores onto the stream
        // set: pathological scores must not push a level out of range
        // either.
        let scores = scores
            .into_iter()
            .map(|(nan, score)| if nan == 0 { f64::NAN } else { score });
        let streams: Vec<AdaptStream> = streams
            .into_iter()
            .zip(scores.chain(std::iter::repeat(0.5)))
            .map(|(mut s, score)| { s.score = score; s })
            .collect();
        let plan = AdaptationController::new().plan(budget, &streams);
        for (s, d) in streams.iter().zip(plan.decisions()) {
            if let Some(level) = d.level {
                prop_assert!(level < s.ladder.len(), "level {} of {} rungs", level, s.ladder.len());
                prop_assert_eq!(d.quality(), Some(teeve_types::Quality::new(level as u8)));
            } else {
                prop_assert_eq!(d.quality(), None);
            }
        }
    }

    /// `per_site_grants` conserves the decision list exactly: per origin
    /// site, the granted bit rate and stream count equal the sums over
    /// the non-dropped decisions, and nothing else appears.
    #[test]
    fn per_site_grants_conserve_the_decisions(
        streams in arb_streams(),
        budget in 0u64..100_000_000,
    ) {
        let plan = AdaptationController::new().plan(budget, &streams);
        let grants = teeve_adapt::per_site_grants(&plan);
        let mut expected: std::collections::BTreeMap<SiteId, (u64, usize)> =
            std::collections::BTreeMap::new();
        for d in plan.decisions() {
            if !d.is_dropped() {
                let entry = expected.entry(d.stream.origin()).or_insert((0, 0));
                entry.0 += d.bitrate_bps;
                entry.1 += 1;
            }
        }
        prop_assert_eq!(&grants, &expected);
        // Totals line up with the plan-level accounting too.
        let granted_rate: u64 = grants.values().map(|&(bps, _)| bps).sum();
        prop_assert_eq!(granted_rate, plan.total_bitrate_bps());
        let granted_count: usize = grants.values().map(|&(_, n)| n).sum();
        prop_assert_eq!(granted_count, plan.decisions().len() - plan.dropped_count());
    }
}
