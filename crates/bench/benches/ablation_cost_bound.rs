//! Ablation: the interactivity bound `B_cost`.
//!
//! Sweeps the latency bound to expose the trade-off the paper's Constraint
//! II creates: tighter bounds reject more requests (shallower trees only),
//! looser bounds admit deeper relaying.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::sample_costs;
use teeve_overlay::{ConstructionAlgorithm, RandomJoin};
use teeve_types::CostMs;
use teeve_workload::WorkloadConfig;

fn bench_cost_bound(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let samples = 15;
    for bound in [40u32, 50, 60, 80, 120] {
        let config = WorkloadConfig::zipf_uniform().with_cost_bound(CostMs::new(bound));
        let mut rejection = 0.0;
        let mut depth = 0usize;
        for _ in 0..samples {
            let costs = sample_costs(8, &mut rng);
            let problem = config.generate(&costs, &mut rng).expect("generate");
            let outcome = RandomJoin.construct(&problem, &mut rng);
            rejection += outcome.metrics().rejection_ratio();
            depth = depth.max(outcome.metrics().max_tree_depth);
        }
        eprintln!(
            "[ablation_cost_bound] B_cost {bound:>3} ms: mean rejection {:.4}, deepest tree {depth}",
            rejection / samples as f64
        );
    }

    let mut group = c.benchmark_group("ablation_cost_bound");
    group.sample_size(20);
    for bound in [40u32, 60, 120] {
        let mut rng = ChaCha8Rng::seed_from_u64(u64::from(bound));
        let costs = sample_costs(8, &mut rng);
        let problem = WorkloadConfig::zipf_uniform()
            .with_cost_bound(CostMs::new(bound))
            .generate(&costs, &mut rng)
            .expect("generate");
        group.bench_function(BenchmarkId::from_parameter(bound), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(6);
                std::hint::black_box(RandomJoin.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_bound);
criterion_main!(benches);
