//! Ablation: the parent-selection policy of the basic node join.
//!
//! The paper's node join "always seeks to achieve load balancing" by
//! picking the member with maximum remaining forwarding capacity. This
//! bench isolates that choice by re-running RJ with latency-greedy
//! (min-cost edge) and unbalanced (first eligible) parent selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::sample_costs;
use teeve_overlay::{ConstructionMetrics, ForestState, JoinPolicy, ProblemInstance};
use teeve_types::SiteId;
use teeve_workload::WorkloadConfig;

fn random_join_with_policy(
    problem: &ProblemInstance,
    policy: JoinPolicy,
    rng: &mut ChaCha8Rng,
) -> ConstructionMetrics {
    let mut state = ForestState::new(problem);
    let mut requests: Vec<(usize, SiteId)> = problem
        .groups()
        .iter()
        .enumerate()
        .flat_map(|(g, group)| group.subscribers().iter().map(move |&s| (g, s)))
        .collect();
    requests.shuffle(rng);
    for (g, s) in requests {
        let _ = state.try_join_with_policy(g, s, policy);
    }
    let forest = state.into_forest();
    ConstructionMetrics::compute(problem, &forest)
}

fn bench_parent_policy(c: &mut Criterion) {
    let policies = [
        ("max-rfc", JoinPolicy::MaxForwardingCapacity),
        ("min-cost", JoinPolicy::MinCostEdge),
        ("first", JoinPolicy::FirstEligible),
    ];

    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let samples = 15;
    for (label, policy) in policies {
        let mut rejection = 0.0;
        let mut stddev = 0.0;
        for _ in 0..samples {
            let costs = sample_costs(10, &mut rng);
            let problem = WorkloadConfig::random_uniform()
                .generate(&costs, &mut rng)
                .expect("generate");
            let m = random_join_with_policy(&problem, policy, &mut rng);
            rejection += m.rejection_ratio;
            stddev += m.stddev_out_degree_utilization;
        }
        eprintln!(
            "[ablation_parent_policy] {label:<8}: mean rejection {:.4}, utilization stddev {:.4}",
            rejection / samples as f64,
            stddev / samples as f64
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let costs = sample_costs(10, &mut rng);
    let problem = WorkloadConfig::random_uniform()
        .generate(&costs, &mut rng)
        .expect("generate");
    let mut group = c.benchmark_group("ablation_parent_policy");
    group.sample_size(20);
    for (label, policy) in policies {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(8);
                std::hint::black_box(random_join_with_policy(&problem, policy, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parent_policy);
criterion_main!(benches);
