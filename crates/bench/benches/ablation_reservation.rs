//! Ablation: the reservation mechanism (`m̂_i`).
//!
//! The paper's rationale: "With this reservation mechanism, we minimize
//! the probability that a whole tree cannot be constructed because the
//! source node is saturated." This bench runs RJ with and without the
//! mechanism, reporting the rejection difference and timing both variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::sample_costs;
use teeve_overlay::{ConstructionMetrics, ForestState, ProblemInstance};
use teeve_types::SiteId;
use teeve_workload::WorkloadConfig;

/// RJ implemented directly on [`ForestState`], with or without the
/// reservation mechanism.
fn random_join(
    problem: &ProblemInstance,
    with_reservation: bool,
    rng: &mut ChaCha8Rng,
) -> ConstructionMetrics {
    let mut state = if with_reservation {
        ForestState::new(problem)
    } else {
        ForestState::new_without_reservation(problem)
    };
    let mut requests: Vec<(usize, SiteId)> = problem
        .groups()
        .iter()
        .enumerate()
        .flat_map(|(g, group)| group.subscribers().iter().map(move |&s| (g, s)))
        .collect();
    requests.shuffle(rng);
    for (g, s) in requests {
        let _ = state.try_join(g, s);
    }
    let forest = state.into_forest();
    ConstructionMetrics::compute(problem, &forest)
}

fn bench_reservation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    // Quality comparison over several samples.
    let samples = 15;
    let (mut with_res, mut without_res) = (0.0, 0.0);
    for _ in 0..samples {
        let costs = sample_costs(8, &mut rng);
        let problem = WorkloadConfig::zipf_uniform()
            .generate(&costs, &mut rng)
            .expect("generate");
        with_res += random_join(&problem, true, &mut rng).rejection_ratio;
        without_res += random_join(&problem, false, &mut rng).rejection_ratio;
    }
    eprintln!(
        "[ablation_reservation] mean rejection with reservation {:.4}, without {:.4}",
        with_res / samples as f64,
        without_res / samples as f64
    );

    let costs = sample_costs(8, &mut rng);
    let problem = WorkloadConfig::zipf_uniform()
        .generate(&costs, &mut rng)
        .expect("generate");
    let mut group = c.benchmark_group("ablation_reservation");
    group.sample_size(20);
    for (label, with_reservation) in [("with", true), ("without", false)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                std::hint::black_box(random_join(&problem, with_reservation, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reservation);
criterion_main!(benches);
