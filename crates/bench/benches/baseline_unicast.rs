//! Baseline comparison: the paper's multicast overlay (RJ) against the
//! conventional all-to-all unicast scheme (Sections 1 and 5.4), plus the
//! exact optimum on small instances.
//!
//! Reported quality series (to stderr, like the other ablation benches):
//!
//! * rejection ratio of Unicast vs RJ as N grows — who wins and by how
//!   much when source out-degrees are the bottleneck;
//! * RJ's optimality gap on exhaustively solvable 3-site instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::sample_costs;
use teeve_overlay::{
    ConstructionAlgorithm, NodeCapacity, OptimalSolver, ProblemInstance, RandomJoin,
    UnicastBaseline,
};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
use teeve_workload::WorkloadConfig;

fn unicast_vs_multicast(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let samples = 15;
    eprintln!("[baseline_unicast] N  unicast_X  rj_X  unicast_src_out  rj_src_out");
    for n in [4usize, 6, 8, 10] {
        let (mut x_uni, mut x_rj) = (0.0, 0.0);
        let (mut out_uni, mut out_rj) = (0.0, 0.0);
        for _ in 0..samples {
            let costs = sample_costs(n, &mut rng);
            let problem = WorkloadConfig::zipf_uniform()
                .generate(&costs, &mut rng)
                .expect("generate");
            let uni = UnicastBaseline.construct(&problem, &mut rng);
            let rj = RandomJoin.construct(&problem, &mut rng);
            x_uni += uni.metrics().rejection_ratio;
            x_rj += rj.metrics().rejection_ratio;
            // Mean out-degree spent by each site on its *own* streams.
            let own = |o: &teeve_overlay::ConstructionOutcome| {
                (0..n as u32)
                    .map(SiteId::new)
                    .map(|s| (o.forest().out_degree(s) - o.forest().relay_degree(s)) as f64)
                    .sum::<f64>()
                    / n as f64
            };
            out_uni += own(&uni);
            out_rj += own(&rj);
        }
        let s = samples as f64;
        eprintln!(
            "[baseline_unicast] {n}  {:.4}  {:.4}  {:.2}  {:.2}",
            x_uni / s,
            x_rj / s,
            out_uni / s,
            out_rj / s
        );
    }

    // Timing: unicast is the trivial lower bound on construction cost.
    let costs = sample_costs(8, &mut rng);
    let problem = WorkloadConfig::zipf_uniform()
        .generate(&costs, &mut rng)
        .expect("generate");
    let mut group = c.benchmark_group("baseline_unicast");
    group.sample_size(20);
    for (label, alg) in [
        ("unicast", &UnicastBaseline as &dyn ConstructionAlgorithm),
        ("rj", &RandomJoin),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                std::hint::black_box(alg.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

/// A random, exhaustively solvable 3-site instance with tight capacities.
fn small_instance(rng: &mut ChaCha8Rng) -> ProblemInstance {
    let costs = CostMatrix::from_fn(3, |i, j| {
        if i == j {
            CostMs::ZERO
        } else {
            CostMs::new(5 + ((i * 3 + j) % 4) as u32 * 7)
        }
    });
    let mut b = ProblemInstance::builder(costs, CostMs::new(40))
        .capacities(
            (0..3)
                .map(|_| NodeCapacity::symmetric(Degree::new(rng.gen_range(1..4))))
                .collect(),
        )
        .streams_per_site(&[2, 2, 2]);
    for sub in 0..3u32 {
        for origin in 0..3u32 {
            if sub == origin {
                continue;
            }
            for q in 0..2 {
                if rng.gen_bool(0.6) {
                    b = b.subscribe(SiteId::new(sub), StreamId::new(SiteId::new(origin), q));
                }
            }
        }
    }
    b.build().expect("valid instance")
}

fn optimality_gap(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let samples = 40;
    let (mut opt_total, mut rj_total, mut gap_instances) = (0u32, 0u32, 0u32);
    for _ in 0..samples {
        let problem = small_instance(&mut rng);
        let opt = OptimalSolver::default()
            .solve(&problem)
            .expect("within caps")
            .metrics()
            .rejected_requests as u32;
        let rj = RandomJoin
            .construct(&problem, &mut rng)
            .metrics()
            .rejected_requests as u32;
        opt_total += opt;
        rj_total += rj;
        if rj > opt {
            gap_instances += 1;
        }
    }
    eprintln!(
        "[baseline_unicast] optimality: optimal rejected {opt_total}, RJ rejected {rj_total} \
         across {samples} instances ({gap_instances} with a gap)"
    );

    let problem = small_instance(&mut rng);
    let mut group = c.benchmark_group("optimal_solver");
    group.sample_size(20);
    group.bench_function("solve_3_sites", |b| {
        b.iter(|| std::hint::black_box(OptimalSolver::default().solve(&problem).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, unicast_vs_multicast, optimality_gap);
criterion_main!(benches);
