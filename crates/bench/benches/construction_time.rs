//! Construction-cost bench: the paper's Section 5.2 remark that RJ is
//! "computationally more [efficient]: tree-based algorithms require
//! sorting of all multicast groups, while RJ just randomly picks requests
//! to serve". Times every algorithm across session sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::sample_costs;
use teeve_overlay::{
    ConstructionAlgorithm, CorrelatedRandomJoin, LargestTreeFirst, MinimumCapacityTreeFirst,
    RandomJoin, SmallestTreeFirst,
};
use teeve_workload::WorkloadConfig;

fn bench_construction_time(c: &mut Criterion) {
    let algos: [&dyn ConstructionAlgorithm; 5] = [
        &SmallestTreeFirst,
        &LargestTreeFirst,
        &MinimumCapacityTreeFirst,
        &RandomJoin,
        &CorrelatedRandomJoin,
    ];
    for n in [5usize, 10, 20] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let costs = sample_costs(n, &mut rng);
        let problem = WorkloadConfig::zipf_uniform()
            .generate(&costs, &mut rng)
            .expect("generate");
        let mut group = c.benchmark_group(format!("construction_time_n{n}"));
        group.sample_size(20);
        for algo in algos {
            group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(7);
                    std::hint::black_box(algo.construct(&problem, &mut rng))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_construction_time);
criterion_main!(benches);
