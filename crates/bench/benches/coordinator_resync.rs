//! Coordinator resync latency versus fleet size: how long does a
//! restarted membership server take to re-adopt a live RP fleet?
//!
//! One reconnect is the full recovery round on real sockets — a fresh
//! `Attach` per RP, a `ResyncQuery`/`ResyncReply` round rebuilding the
//! link view, re-dictation of the latest revision as the ack barrier,
//! and the baseline stats probe — measured against running ring fleets
//! of 4, 16, and 64 sites. Each iteration reconnects and detaches, so
//! the same headless fleet is re-adopted over and over.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teeve_net::{ClusterConfig, Coordinator, RpNode, RpNodeHandle};
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

const FLEETS: [usize; 3] = [4, 16, 64];

/// A ring dissemination plan over `sites` sites: every site originates
/// one stream and its successor subscribes, so each RP holds both an
/// origin and a delivery entry and every resync re-dictates real tables.
fn ring_plan(sites: usize) -> DisseminationPlan {
    let costs = CostMatrix::from_fn(sites, |_, _| CostMs::new(4));
    let mut builder = ProblemInstance::builder(costs, CostMs::new(500))
        .symmetric_capacities(Degree::new(4))
        .streams_per_site(&vec![1; sites]);
    for i in 0..sites as u32 {
        builder = builder.subscribe(
            SiteId::new((i + 1) % sites as u32),
            StreamId::new(SiteId::new(i), 0),
        );
    }
    let problem = builder.build().expect("ring problem");
    let mut manager = OverlayManager::new(problem.clone());
    for i in 0..sites as u32 {
        manager
            .subscribe(
                SiteId::new((i + 1) % sites as u32),
                StreamId::new(SiteId::new(i), 0),
            )
            .expect("ring subscribe");
    }
    DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    )
}

/// Binds and spawns one RP per site.
fn launch_nodes(sites: usize) -> (Vec<RpNodeHandle>, Vec<SocketAddr>) {
    let mut nodes = Vec::with_capacity(sites);
    let mut addrs = Vec::with_capacity(sites);
    for site in SiteId::all(sites) {
        let node = RpNode::bind(site, Duration::from_millis(200)).expect("bind RP");
        addrs.push(node.local_addr());
        nodes.push(node.spawn());
    }
    (nodes, addrs)
}

fn bench_coordinator_resync(c: &mut Criterion) {
    let config = ClusterConfig {
        frames_per_stream: 1,
        payload_bytes: 64,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    };

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut group = c.benchmark_group("coordinator_resync");
    group.sample_size(10);
    for &sites in &FLEETS {
        let plan = ring_plan(sites);
        let (nodes, addrs) = launch_nodes(sites);
        // Install the plan and immediately lose the coordinator: from
        // here on the fleet runs headless between reconnects.
        Coordinator::connect(&plan, &addrs, &config)
            .expect("connect")
            .detach();

        group.bench_function(BenchmarkId::new("sites", sites), |b| {
            b.iter(|| {
                Coordinator::reconnect(&plan, &addrs, &config)
                    .expect("reconnect")
                    .detach();
            })
        });

        // The headline number, measured directly: mean full-resync
        // latency over a fixed cycle count.
        let rounds = 20u32;
        let timer = Instant::now();
        for _ in 0..rounds {
            Coordinator::reconnect(&plan, &addrs, &config)
                .expect("reconnect")
                .detach();
        }
        let mean_micros = timer.elapsed().as_micros() as f64 / f64::from(rounds);
        println!("resync over {sites} sites: {mean_micros:.0} us/reconnect");
        metrics.push((format!("resync_micros_fleet_{sites}"), mean_micros));

        // Re-adopt one last time to shut the fleet down for real.
        drop(Coordinator::reconnect(&plan, &addrs, &config).expect("final reconnect"));
        for node in nodes {
            node.stop();
            node.join();
        }
    }
    group.finish();

    let entries: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    teeve_bench::write_bench_json("coordinator_resync", &entries);
}

criterion_group!(benches, bench_coordinator_resync);
criterion_main!(benches);
