//! Figure 10 bench: RJ's load balancing at growing session sizes — quality
//! summary plus construction-time scaling from 4 to 20 sites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::{fig10_series, sample_costs};
use teeve_overlay::{ConstructionAlgorithm, RandomJoin};
use teeve_workload::WorkloadConfig;

fn bench_fig10(c: &mut Criterion) {
    for row in fig10_series(6, 2008) {
        eprintln!(
            "[fig10] N={:>2}: utilization {:.3} (stddev {:.3}), relaying {:.3}",
            row.sites,
            row.mean_out_utilization,
            row.stddev_out_utilization,
            row.mean_relay_fraction
        );
    }

    let mut group = c.benchmark_group("fig10_rj_scaling");
    group.sample_size(20);
    for n in [4usize, 8, 12, 16, 20] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let costs = sample_costs(n, &mut rng);
        let problem = WorkloadConfig::random_uniform()
            .generate(&costs, &mut rng)
            .expect("generate");
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                std::hint::black_box(RandomJoin.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
