//! Figure 11 bench: RJ vs CO-RJ — the weighted-rejection improvement and
//! the runtime cost of the victim-swapping machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::{fig11_series, sample_costs};
use teeve_overlay::{ConstructionAlgorithm, CorrelatedRandomJoin, RandomJoin};
use teeve_workload::WorkloadConfig;

fn bench_fig11(c: &mut Criterion) {
    for row in fig11_series(10, 2008) {
        eprintln!(
            "[fig11] N={:>2}: X' RJ {:.4}, CO-RJ {:.4} ({:.2}x better)",
            row.sites,
            row.rj,
            row.corj,
            row.rj / row.corj.max(1e-12)
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let costs = sample_costs(10, &mut rng);
    let problem = WorkloadConfig::zipf_heterogeneous()
        .generate(&costs, &mut rng)
        .expect("generate");

    let mut group = c.benchmark_group("fig11_swap_cost");
    group.sample_size(20);
    let algos: [&dyn ConstructionAlgorithm; 2] = [&RandomJoin, &CorrelatedRandomJoin];
    for algo in algos {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(4);
                std::hint::black_box(algo.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
