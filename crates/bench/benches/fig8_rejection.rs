//! Figure 8 bench: times the four algorithms on a paper-scale instance and
//! reports a reduced-sample rejection series (the full series is
//! `cargo run -p teeve-bench --bin fig8`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::{fig8_series, sample_costs, Fig8Panel};
use teeve_overlay::{
    ConstructionAlgorithm, LargestTreeFirst, MinimumCapacityTreeFirst, RandomJoin,
    SmallestTreeFirst,
};

fn bench_fig8(c: &mut Criterion) {
    // Quality summary (reduced samples) printed once for bench logs.
    for panel in [Fig8Panel::ZipfUniform, Fig8Panel::RandomHeterogeneous] {
        let rows = fig8_series(panel, 10, 2008);
        let last = rows.last().expect("rows");
        eprintln!(
            "[fig8 {}] N=10 rejection: STF {:.3} LTF {:.3} MCTF {:.3} RJ {:.3}",
            panel.caption(),
            last.stf,
            last.ltf,
            last.mctf,
            last.rj
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let costs = sample_costs(10, &mut rng);
    let problem = Fig8Panel::ZipfUniform
        .config()
        .generate(&costs, &mut rng)
        .expect("generate");

    let mut group = c.benchmark_group("fig8_construction");
    group.sample_size(20);
    let algos: [&dyn ConstructionAlgorithm; 4] = [
        &SmallestTreeFirst,
        &LargestTreeFirst,
        &MinimumCapacityTreeFirst,
        &RandomJoin,
    ];
    for algo in algos {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                std::hint::black_box(algo.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
