//! Figure 9 bench: Gran-LTF across the granularity spectrum — quality at
//! the endpoints and construction time as a function of `g`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_bench::{fig9_series, sample_costs};
use teeve_overlay::{ConstructionAlgorithm, GranLtf};
use teeve_workload::WorkloadConfig;

fn bench_fig9(c: &mut Criterion) {
    let points = fig9_series(8, 2008, Some(&[1, 25, 1000]));
    for p in &points {
        eprintln!(
            "[fig9] granularity {} -> rejection {:.3}",
            p.granularity, p.rejection_ratio
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let costs = sample_costs(10, &mut rng);
    let problem = WorkloadConfig::random_uniform()
        .generate(&costs, &mut rng)
        .expect("generate");
    let f = problem.group_count().max(1);

    let mut group = c.benchmark_group("fig9_granularity");
    group.sample_size(20);
    for g in [1usize, f / 4 + 1, f / 2 + 1, f] {
        group.bench_function(BenchmarkId::from_parameter(g), |b| {
            let algo = GranLtf::new(g);
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                std::hint::black_box(algo.construct(&problem, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
