//! Fleet hosting economics: how many RPs fit in one process?
//!
//! The thread-per-connection host spends at least two OS threads per RP
//! (an acceptor plus one reader per live connection), so a process tops
//! out at a few hundred RPs long before the protocol does. The reactor
//! hosts the same RPs on a fixed pool of event-loop threads. This bench
//! stands up **32 sessions x 16 sites = 512 RPs** on a 4-thread reactor
//! in this process, measures launch throughput (sessions/sec), the
//! socket-free reconfigure latency distribution under that load (p50 and
//! p99 over every session), and the threads-per-RP ratio of both hosting
//! modes — asserting the reactor stays under 0.1 threads per RP where
//! the legacy host needs at least 2.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teeve_net::{ClusterConfig, LiveCluster, Reactor};
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

/// Concurrent sessions hosted by the one reactor.
const SESSIONS: usize = 32;
/// Sites (RPs) per session.
const SITES_PER_SESSION: usize = 16;
/// Event-loop threads driving every RP in the process.
const LOOP_THREADS: usize = 4;
/// Socket-free reconfigure toggles timed per session.
const TOGGLES_PER_SESSION: usize = 3;
/// Legacy thread-per-connection sessions for the baseline ratio (kept
/// small: at >= 2 threads per RP the full 512 would be ~1k threads).
const LEGACY_SESSIONS: usize = 2;

/// Live OS threads of this process, from `/proc/self/status`.
fn os_thread_count() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .map(|v| v.trim().parse::<f64>().expect("numeric thread count"))
        .expect("Threads: line present")
}

/// One session's plan pair over a 16-site ring: every site originates a
/// stream its successor subscribes to, and site 0 owns a second stream
/// site 1 may toggle. The toggle rides the already-open 0 -> 1 link, so
/// applying it is a pure `Reconfigure`/`Ack` round with zero socket
/// churn — the latency band the p99 metric tracks.
fn session_plans(sites: usize) -> (DisseminationPlan, DisseminationPlan) {
    let costs = CostMatrix::from_fn(sites, |i, j| CostMs::new(3 + ((i + 2 * j) % 4) as u32));
    let mut streams = vec![1u32; sites];
    streams[0] = 2;
    let mut builder = ProblemInstance::builder(costs, CostMs::new(500))
        .symmetric_capacities(Degree::new(4))
        .streams_per_site(&streams)
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 1));
    for i in 0..sites as u32 {
        builder = builder.subscribe(
            SiteId::new((i + 1) % sites as u32),
            StreamId::new(SiteId::new(i), 0),
        );
    }
    let problem = builder.build().expect("ring problem");
    let mut manager = OverlayManager::new(problem.clone());
    for i in 0..sites as u32 {
        manager
            .subscribe(
                SiteId::new((i + 1) % sites as u32),
                StreamId::new(SiteId::new(i), 0),
            )
            .expect("ring subscribe");
    }
    let base = DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    manager
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 1))
        .expect("toggle subscribe");
    let alt = DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    (base, alt)
}

/// Applies `target` to the cluster as a freshly revision-stamped delta.
fn step(cluster: &mut LiveCluster, target: &DisseminationPlan) {
    let mut next = target.clone();
    next.set_revision(cluster.revision() + 1);
    let delta = PlanDelta::diff(cluster.plan(), &next);
    cluster.apply_delta(&delta).expect("delta applies live");
}

/// The `index`-th value of the sorted sample set at quantile `q`.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

fn bench_fleet_scale(c: &mut Criterion) {
    let (base, alt) = session_plans(SITES_PER_SESSION);
    let config = ClusterConfig {
        frames_per_stream: 1,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    };

    // --- Reactor fleet: 512 RPs on LOOP_THREADS event loops. ---
    let threads_baseline = os_thread_count();
    let reactor = Reactor::new(LOOP_THREADS).expect("reactor starts");
    let launching = Instant::now();
    let mut clusters: Vec<LiveCluster> = (0..SESSIONS)
        .map(|_| LiveCluster::launch_reactor(&base, &config, &reactor).expect("reactor launch"))
        .collect();
    let launch_secs = launching.elapsed().as_secs_f64();
    let sessions_per_sec = SESSIONS as f64 / launch_secs.max(f64::EPSILON);

    let rp_count = (SESSIONS * SITES_PER_SESSION) as f64;
    assert_eq!(
        reactor.telemetry().gauge("reactor.nodes.registered").get(),
        (SESSIONS * SITES_PER_SESSION) as u64,
        "every RP of every session is hosted by the one reactor"
    );
    let reactor_threads_per_rp = (os_thread_count() - threads_baseline) / rp_count;
    assert!(
        reactor_threads_per_rp < 0.1,
        "reactor hosting must amortize below 0.1 threads per RP, got {reactor_threads_per_rp}"
    );

    // Socket-free reconfigure latency with the whole fleet resident.
    let mut toggles: Vec<f64> = Vec::with_capacity(SESSIONS * TOGGLES_PER_SESSION * 2);
    for cluster in &mut clusters {
        for _ in 0..TOGGLES_PER_SESSION {
            for target in [&alt, &base] {
                let t = Instant::now();
                step(cluster, target);
                toggles.push(t.elapsed().as_micros() as f64);
            }
        }
        assert_eq!(
            cluster.connections_opened(),
            0,
            "the toggle must stay socket-free"
        );
    }
    toggles.sort_by(|a, b| a.partial_cmp(b).expect("finite micros"));
    let reconfigure_p50 = quantile(&toggles, 0.50);
    let reconfigure_p99 = quantile(&toggles, 0.99);

    // A criterion smoke of the same toggle on one resident session,
    // while the other 31 sessions' RPs stay parked on the reactor.
    let mut group = c.benchmark_group("fleet_scale");
    group.sample_size(10);
    if let Some(cluster) = clusters.first_mut() {
        group.bench_function(BenchmarkId::from_parameter("reconfigure_toggle"), |b| {
            b.iter(|| {
                step(cluster, &alt);
                step(cluster, &base);
            })
        });
    }
    group.finish();

    // Every session still delivers: one frame per stream, no lost stats.
    for cluster in &mut clusters {
        cluster.publish(1).expect("batch delivers");
    }
    for cluster in clusters {
        let report = cluster.shutdown();
        assert!(report.total_delivered() > 0, "resident session delivers");
        assert_eq!(report.missing_reports, 0, "graceful shutdown keeps stats");
    }
    reactor.shutdown();

    // --- Legacy baseline: thread-per-connection hosting ratio. ---
    let threads_before_legacy = os_thread_count();
    let legacy: Vec<LiveCluster> = (0..LEGACY_SESSIONS)
        .map(|_| LiveCluster::launch(&base, &config).expect("threaded launch"))
        .collect();
    let legacy_rps = (LEGACY_SESSIONS * SITES_PER_SESSION) as f64;
    let legacy_threads_per_rp = (os_thread_count() - threads_before_legacy) / legacy_rps;
    for cluster in legacy {
        cluster.shutdown();
    }
    assert!(
        legacy_threads_per_rp >= 2.0,
        "thread-per-connection hosting spends >= 2 threads per RP, got {legacy_threads_per_rp}"
    );

    println!(
        "fleet_scale: {rp_count} RPs / {SESSIONS} sessions on {LOOP_THREADS} loop threads; \
         {sessions_per_sec:.1} sessions/sec; reconfigure p50 {reconfigure_p50:.0} us, \
         p99 {reconfigure_p99:.0} us; threads/RP reactor {reactor_threads_per_rp:.4} \
         vs legacy {legacy_threads_per_rp:.2}"
    );
    teeve_bench::write_bench_json(
        "fleet_scale",
        &[
            ("rp_count", rp_count),
            ("session_count", SESSIONS as f64),
            ("loop_threads", LOOP_THREADS as f64),
            ("launch_sessions_per_sec", sessions_per_sec),
            ("reconfigure_p50_micros", reconfigure_p50),
            ("reconfigure_p99_micros", reconfigure_p99),
            ("reactor_threads_per_rp", reactor_threads_per_rp),
            ("legacy_threads_per_rp", legacy_threads_per_rp),
        ],
    );
}

criterion_group!(benches, bench_fleet_scale);
criterion_main!(benches);
