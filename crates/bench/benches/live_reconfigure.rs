//! Live-reconfiguration latency on real sockets: how long does it take a
//! running `LiveCluster` to apply a `PlanDelta`?
//!
//! Two flavours are measured round-trip (apply + revert per iteration so
//! the cluster returns to its starting plan): a *socket-free* reroute
//! (only forwarding tables swap, via `Reconfigure`/`Ack` over the control
//! plane) and a delta that opens and closes one TCP connection each way.
//! A frame batch is benched alongside as the data-plane baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teeve_net::{ClusterConfig, LiveCluster};
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

fn site(i: u32) -> SiteId {
    SiteId::new(i)
}

fn stream(origin: u32, q: u32) -> StreamId {
    StreamId::new(site(origin), q)
}

/// Site 0 owns two streams; sites 1 and 2 may subscribe.
fn universe() -> ProblemInstance {
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
    ProblemInstance::builder(costs, CostMs::new(50))
        .symmetric_capacities(Degree::new(6))
        .streams_per_site(&[2, 0, 0])
        .subscribe(site(1), stream(0, 0))
        .subscribe(site(1), stream(0, 1))
        .subscribe(site(2), stream(0, 0))
        .build()
        .unwrap()
}

fn plan_of(problem: &ProblemInstance, manager: &OverlayManager) -> DisseminationPlan {
    DisseminationPlan::from_forest(
        problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    )
}

/// Applies `target` to the cluster as a freshly revision-stamped delta.
fn step(cluster: &mut LiveCluster, target: &DisseminationPlan) {
    let mut next = target.clone();
    next.set_revision(cluster.revision() + 1);
    let delta = PlanDelta::diff(cluster.plan(), &next);
    cluster.apply_delta(&delta).expect("delta applies live");
}

fn bench_live_reconfigure(c: &mut Criterion) {
    let problem = universe();

    // Base plan: site 1 takes stream 0.0 over the 0 → 1 link.
    let mut manager = OverlayManager::new(problem.clone());
    manager.subscribe(site(1), stream(0, 0)).unwrap();
    let base = plan_of(&problem, &manager);

    // Socket-free target: a second stream on the same 0 → 1 pair.
    manager.subscribe(site(1), stream(0, 1)).unwrap();
    let two_streams = plan_of(&problem, &manager);

    // Link-churn target: site 2 joins, gaining its first connection.
    manager.unsubscribe(site(1), stream(0, 1)).unwrap();
    manager.subscribe(site(2), stream(0, 0)).unwrap();
    let with_site2 = plan_of(&problem, &manager);

    let config = ClusterConfig {
        frames_per_stream: 8,
        payload_bytes: 1024,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    };
    let mut cluster = LiveCluster::launch(&base, &config).expect("launch");

    let mut group = c.benchmark_group("live_reconfigure_n3");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("socket_free_reroute"), |b| {
        b.iter(|| {
            step(&mut cluster, &two_streams);
            step(&mut cluster, &base);
        })
    });
    assert_eq!(
        cluster.connections_opened(),
        0,
        "socket-free iterations must not have opened connections"
    );
    group.bench_function(BenchmarkId::from_parameter("open_close_one_link"), |b| {
        b.iter(|| {
            step(&mut cluster, &with_site2);
            step(&mut cluster, &base);
        })
    });
    assert_eq!(cluster.connections_opened(), cluster.connections_closed());
    group.bench_function(BenchmarkId::from_parameter("publish_batch_8"), |b| {
        b.iter(|| cluster.publish(8).expect("batch delivers"))
    });
    group.finish();

    let report = cluster.shutdown();
    println!(
        "live_reconfigure: final revision {}, {} frames delivered, {} connections opened/closed",
        report.final_revision,
        report.total_delivered(),
        report.connections_opened,
    );
}

criterion_group!(benches, bench_live_reconfigure);
criterion_main!(benches);
