//! Section 1 claims bench: the reduction chain takes a raw
//! `640 × 480 × 15 fps × 5 B/pixel ≈ 184 Mbps` stream into the 5–10 Mbps
//! band, in real time (one frame must process in well under the 66.6 ms
//! frame interval).
//!
//! Reported to stderr: per-stage bit rates; Criterion measures the
//! wall-clock cost of each stage on a full 640 × 480 frame.

use criterion::{criterion_group, criterion_main, Criterion};
use teeve_media::{
    raw_bitrate_bps, BackgroundSubtractor, Codec, Downsampler, PipelineStats, ReductionPipeline,
    SyntheticCapture, FRAME_FPS, FRAME_HEIGHT, FRAME_WIDTH,
};

fn bench_reduction(c: &mut Criterion) {
    let camera = SyntheticCapture::new(FRAME_WIDTH, FRAME_HEIGHT, 2008);
    let pipeline = ReductionPipeline::paper();

    // Quality series: per-stage bit rates over one second of frames.
    let mut stats = PipelineStats::new();
    for seq in 0..u64::from(FRAME_FPS) {
        stats.record(&pipeline.process(&camera.capture(0.3, seq)).bytes);
    }
    let totals = stats.totals();
    let to_mbps = |bytes: u64| bytes as f64 * 8.0 / 1e6; // totals already cover 1 s
    eprintln!(
        "[media_reduction] raw {:.1} Mbps -> foreground {:.1} -> reduced {:.1} -> compressed {:.2} \
         (ratio {:.0}x; paper: 184 Mbps -> 5-10 Mbps)",
        raw_bitrate_bps(FRAME_WIDTH, FRAME_HEIGHT, FRAME_FPS) as f64 / 1e6,
        to_mbps(totals.foreground),
        to_mbps(totals.reduced),
        to_mbps(totals.compressed),
        stats.mean_compression_ratio()
    );

    let raw = camera.capture(0.3, 7);
    let foreground = BackgroundSubtractor::default().subtract(&raw);
    let reduced = Downsampler::default().apply(&foreground);
    let compressed = Codec::default().encode(&reduced);

    let mut group = c.benchmark_group("media_reduction");
    group.sample_size(30);
    group.bench_function("capture", |b| {
        b.iter(|| std::hint::black_box(camera.capture(0.3, 7)))
    });
    group.bench_function("subtract", |b| {
        b.iter(|| std::hint::black_box(BackgroundSubtractor::default().subtract(&raw)))
    });
    group.bench_function("downsample", |b| {
        b.iter(|| std::hint::black_box(Downsampler::default().apply(&foreground)))
    });
    group.bench_function("compress", |b| {
        b.iter(|| std::hint::black_box(Codec::default().encode(&reduced)))
    });
    group.bench_function("decompress", |b| {
        b.iter(|| std::hint::black_box(Codec::default().decode(&compressed).unwrap()))
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| std::hint::black_box(pipeline.process(&raw)))
    });
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
