//! Multi-session service throughput: sessions driven per second by
//! `MembershipService::drive_all` as the registry's shard count grows.
//!
//! One bulk pass advances every hosted session one churn epoch; shards
//! reconcile in parallel worker threads, so throughput should scale with
//! the shard count until the machine's parallelism saturates (one shard
//! serializes everything — the single-session membership server's
//! degenerate case).

use std::cell::Cell;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_pubsub::Session;
use teeve_runtime::{RuntimeEvent, TraceConfig};
use teeve_service::{MembershipService, SessionHandle, SessionSpec};
use teeve_types::{CostMatrix, CostMs, Degree};

const SESSIONS: usize = 32;
const SITES: usize = 12;
const TRACE_EPOCHS: usize = 64;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn session(index: usize) -> Session {
    let costs = CostMatrix::from_fn(SITES, |i, j| {
        CostMs::new(3 + ((i * 31 + j * 17 + index * 7) % 9) as u32)
    });
    Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(2)
        .symmetric_capacity(Degree::new(10))
        .build()
}

/// Per-session churn traces, generated once and replayed cyclically.
fn traces() -> Vec<Vec<Vec<RuntimeEvent>>> {
    let config = TraceConfig {
        epochs: TRACE_EPOCHS,
        events_per_epoch: 3,
        ..TraceConfig::default()
    };
    (0..SESSIONS)
        .map(|i| config.generate(SITES, 2, &mut ChaCha8Rng::seed_from_u64(7 + i as u64)))
        .collect()
}

fn build_service(shards: usize) -> (MembershipService, Vec<SessionHandle>) {
    let service = MembershipService::with_shards(shards);
    let handles = (0..SESSIONS)
        .map(|i| {
            service
                .create_session(SessionSpec::new(session(i)))
                .expect("specs are valid")
        })
        .collect();
    (service, handles)
}

/// One measured round: queue every session's next trace epoch, then one
/// bulk `drive_all` pass. Returns sessions driven.
fn drive_round(
    service: &MembershipService,
    handles: &[SessionHandle],
    traces: &[Vec<Vec<RuntimeEvent>>],
    round: usize,
) -> usize {
    for (handle, trace) in handles.iter().zip(traces) {
        handle
            .submit_requests(trace[round % trace.len()].clone())
            .expect("session is hosted");
    }
    service.drive_all().sessions
}

fn bench_multi_session(c: &mut Criterion) {
    let traces = traces();
    println!(
        "multi_session: {SESSIONS} sessions x {SITES} sites, \
         {} worker threads available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut group = c.benchmark_group("multi_session_drive_all");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let (service, handles) = build_service(shards);
        let round = Cell::new(0usize);
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                let r = round.get();
                round.set(r + 1);
                std::hint::black_box(drive_round(&service, &handles, &traces, r))
            })
        });
    }
    group.finish();

    // The headline number, measured directly: sessions driven per second
    // at each shard count over the same workload.
    let mut single_shard = f64::NAN;
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for shards in SHARD_COUNTS {
        let (service, handles) = build_service(shards);
        let rounds = 24;
        let timer = std::time::Instant::now();
        let mut driven = 0usize;
        for round in 0..rounds {
            driven += drive_round(&service, &handles, &traces, round);
        }
        let elapsed = timer.elapsed();
        assert_eq!(driven, SESSIONS * rounds, "every session drove every round");
        let per_sec = driven as f64 / elapsed.as_secs_f64();
        if shards == 1 {
            single_shard = per_sec;
        }
        println!(
            "drive_all with {shards} shard(s): {per_sec:.0} sessions/sec \
             ({:.2}x vs 1 shard)",
            per_sec / single_shard,
        );
        metrics.push((format!("sessions_per_sec_shards_{shards}"), per_sec));
        metrics.push((
            format!("speedup_shards_{shards}_vs_1"),
            per_sec / single_shard,
        ));
    }
    let entries: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    teeve_bench::write_bench_json("multi_session", &entries);
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
