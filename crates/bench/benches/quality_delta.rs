//! Quality-only reconfiguration latency on real sockets: what does it
//! cost a running `LiveCluster` to move one subscription's quality rung?
//!
//! Three delta flavours are measured round-trip (apply + revert per
//! iteration so the cluster returns to its starting plan):
//!
//! * `quality_only` — the adaptation loop's product: forwarding tables
//!   re-stamped with new rungs, structure untouched;
//! * `socket_free_reroute` — a stream added/removed on a pair that keeps
//!   other traffic (tables swap, no sockets);
//! * `open_close_one_link` — the delta actually churns one TCP
//!   connection each way.
//!
//! The first two ride the same `Reconfigure`/`Ack` control path, so they
//! should land in the same tens-of-microseconds band, both roughly two
//! orders of magnitude below a link open/close.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use teeve_net::{ClusterConfig, LiveCluster};
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, Quality, SiteId, StreamId};

fn site(i: u32) -> SiteId {
    SiteId::new(i)
}

fn stream(origin: u32, q: u32) -> StreamId {
    StreamId::new(site(origin), q)
}

/// Site 0 owns two streams; sites 1 and 2 may subscribe.
fn universe() -> ProblemInstance {
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
    ProblemInstance::builder(costs, CostMs::new(50))
        .symmetric_capacities(Degree::new(6))
        .streams_per_site(&[2, 0, 0])
        .subscribe(site(1), stream(0, 0))
        .subscribe(site(1), stream(0, 1))
        .subscribe(site(2), stream(0, 0))
        .build()
        .unwrap()
}

fn plan_of(problem: &ProblemInstance, manager: &OverlayManager) -> DisseminationPlan {
    DisseminationPlan::from_forest(
        problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    )
}

/// Applies `target` to the cluster as a freshly revision-stamped delta.
fn step(cluster: &mut LiveCluster, target: &DisseminationPlan) {
    let mut next = target.clone();
    next.set_revision(cluster.revision() + 1);
    let delta = PlanDelta::diff(cluster.plan(), &next);
    cluster.apply_delta(&delta).expect("delta applies live");
}

fn bench_quality_delta(c: &mut Criterion) {
    let problem = universe();

    // Base plan: site 1 takes stream 0.0 over the 0 → 1 link, at full
    // quality.
    let mut manager = OverlayManager::new(problem.clone());
    manager.subscribe(site(1), stream(0, 0)).unwrap();
    let base = plan_of(&problem, &manager);

    // Quality-only target: the same structure with site 1's delivery
    // re-stamped one rung down — the adaptation loop's bread and butter.
    let mut degraded = base.clone();
    assert!(degraded.set_quality(site(1), stream(0, 0), Quality::new(1)));

    // Socket-free reroute target: a second stream on the same 0 → 1 pair.
    manager.subscribe(site(1), stream(0, 1)).unwrap();
    let two_streams = plan_of(&problem, &manager);

    // Link-churn target: site 2 joins, gaining its first connection.
    manager.unsubscribe(site(1), stream(0, 1)).unwrap();
    manager.subscribe(site(2), stream(0, 0)).unwrap();
    let with_site2 = plan_of(&problem, &manager);

    let config = ClusterConfig {
        frames_per_stream: 8,
        payload_bytes: 1024,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    };
    let mut cluster = LiveCluster::launch(&base, &config).expect("launch");

    let mut group = c.benchmark_group("quality_delta_n3");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("quality_only"), |b| {
        b.iter(|| {
            step(&mut cluster, &degraded);
            step(&mut cluster, &base);
        })
    });
    assert_eq!(
        cluster.connections_opened(),
        0,
        "quality-only iterations must not touch sockets"
    );
    group.bench_function(BenchmarkId::from_parameter("socket_free_reroute"), |b| {
        b.iter(|| {
            step(&mut cluster, &two_streams);
            step(&mut cluster, &base);
        })
    });
    assert_eq!(
        cluster.connections_opened(),
        0,
        "socket-free iterations must not have opened connections"
    );
    group.bench_function(BenchmarkId::from_parameter("open_close_one_link"), |b| {
        b.iter(|| {
            step(&mut cluster, &with_site2);
            step(&mut cluster, &base);
        })
    });
    assert_eq!(cluster.connections_opened(), cluster.connections_closed());
    group.finish();

    // The headline numbers, measured directly: mean reconfigure latency
    // per delta flavour on the live cluster.
    let rounds = 16u32;
    let mut measured: Vec<(&str, f64)> = Vec::new();
    for (label, target) in [
        ("quality_only_micros", &degraded),
        ("socket_free_reroute_micros", &two_streams),
        ("open_close_one_link_micros", &with_site2),
    ] {
        let timer = std::time::Instant::now();
        for _ in 0..rounds {
            step(&mut cluster, target);
            step(&mut cluster, &base);
        }
        let per_delta = timer.elapsed().as_micros() as f64 / f64::from(rounds * 2);
        println!("{label}: {per_delta:.1} µs per delta");
        measured.push((label, per_delta));
    }
    teeve_bench::write_bench_json("quality_delta", &measured);

    let report = cluster.shutdown();
    println!(
        "quality_delta: final revision {}, {} connections opened/closed",
        report.final_revision, report.connections_opened,
    );
}

criterion_group!(benches, bench_quality_delta);
criterion_main!(benches);
