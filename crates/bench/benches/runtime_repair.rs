//! Reconvergence-time bench for live operation: incremental overlay
//! repair (`OverlayManager::subscribe/unsubscribe`, the session runtime's
//! fast path) vs full reconstruction after every change (the paper's
//! static model applied naively to a live session), on a 64-site session
//! under a Zipf subscription workload with toggling churn.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_types::{CostMatrix, CostMs, SiteId, StreamId};
use teeve_workload::WorkloadConfig;

const SITES: usize = 64;
const CHURN_EVENTS: usize = 200;

/// A 64-site Zipf-workload instance over a synthetic metric cost matrix
/// (the embedded backbone tops out below 64 sites).
fn zipf_session() -> ProblemInstance {
    let costs = CostMatrix::from_fn(SITES, |i, j| {
        if i == j {
            CostMs::ZERO
        } else {
            CostMs::new(3 + ((i * 31 + j * 17) % 11) as u32)
        }
    });
    let mut rng = ChaCha8Rng::seed_from_u64(64);
    WorkloadConfig::zipf_uniform()
        .generate(&costs, &mut rng)
        .expect("64 sites is a valid session")
}

/// The churn trace: every request starts subscribed, then `CHURN_EVENTS`
/// random requests toggle off/on.
fn churn_trace(problem: &ProblemInstance) -> Vec<(SiteId, StreamId)> {
    let requests: Vec<(SiteId, StreamId)> = problem
        .requests()
        .map(|r| (r.subscriber, r.stream))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..CHURN_EVENTS)
        .map(|_| *requests.as_slice().choose(&mut rng).expect("non-empty"))
        .collect()
}

/// Seeds a manager with every request subscribed.
fn seeded_manager(problem: &Arc<ProblemInstance>) -> OverlayManager {
    let mut manager = OverlayManager::new(Arc::clone(problem));
    for (site, stream) in problem.requests().map(|r| (r.subscriber, r.stream)) {
        let _ = manager.subscribe(site, stream);
    }
    manager
}

/// One full churn replay via incremental repair.
fn run_incremental(seed: &OverlayManager, trace: &[(SiteId, StreamId)]) -> usize {
    let mut manager = seed.clone();
    let mut toggled_off: std::collections::BTreeSet<(SiteId, StreamId)> =
        std::collections::BTreeSet::new();
    let mut repairs = 0;
    for &(site, stream) in trace {
        if toggled_off.remove(&(site, stream)) {
            let _ = manager.subscribe(site, stream);
        } else {
            let _ = manager.unsubscribe(site, stream);
            toggled_off.insert((site, stream));
        }
        repairs += 1;
    }
    repairs
}

/// One full churn replay rebuilding the forest from scratch per event.
fn run_full_reconstruction(problem: &Arc<ProblemInstance>, trace: &[(SiteId, StreamId)]) -> usize {
    let mut active: std::collections::BTreeSet<(SiteId, StreamId)> = problem
        .requests()
        .map(|r| (r.subscriber, r.stream))
        .collect();
    let mut rebuilds = 0;
    for &(site, stream) in trace {
        if !active.remove(&(site, stream)) {
            active.insert((site, stream));
        }
        let mut manager = OverlayManager::new(Arc::clone(problem));
        for &(s, st) in &active {
            let _ = manager.subscribe(s, st);
        }
        rebuilds += 1;
    }
    rebuilds
}

fn bench_runtime_repair(c: &mut Criterion) {
    let problem = Arc::new(zipf_session());
    let trace = churn_trace(&problem);
    let seed = seeded_manager(&problem);
    println!(
        "runtime_repair: {} sites, {} requests, {} churn events",
        SITES,
        problem.total_requests(),
        trace.len()
    );

    let mut group = c.benchmark_group("runtime_repair_n64_zipf");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("incremental_repair"), |b| {
        b.iter(|| std::hint::black_box(run_incremental(&seed, &trace)))
    });
    group.bench_function(BenchmarkId::from_parameter("full_reconstruction"), |b| {
        b.iter(|| std::hint::black_box(run_full_reconstruction(&problem, &trace)))
    });
    group.finish();

    // The headline claim, measured directly: mean reconvergence per churn
    // event on each path.
    let timer = std::time::Instant::now();
    std::hint::black_box(run_incremental(&seed, &trace));
    let incremental = timer.elapsed();
    let timer = std::time::Instant::now();
    std::hint::black_box(run_full_reconstruction(&problem, &trace));
    let full = timer.elapsed();
    let incremental_micros = incremental.as_micros() as f64 / trace.len() as f64;
    let full_micros = full.as_micros() as f64 / trace.len() as f64;
    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(f64::EPSILON);
    println!(
        "reconvergence per event: incremental {incremental_micros:.1} µs \
         vs full reconstruction {full_micros:.1} µs ({speedup:.0}x)"
    );
    assert!(
        incremental < full,
        "incremental repair must beat full reconstruction ({incremental:?} vs {full:?})"
    );
    teeve_bench::write_bench_json(
        "runtime_repair",
        &[
            ("incremental_micros_per_event", incremental_micros),
            ("full_reconstruction_micros_per_event", full_micros),
            ("speedup", speedup),
            ("churn_events", trace.len() as f64),
        ],
    );
}

criterion_group!(benches, bench_runtime_repair);
criterion_main!(benches);
