//! CI gate for the bench trajectories: every headline bench must have
//! written a schema-valid `BENCH_<name>.json` to the repo root.
//!
//! Run after the bench smoke steps; exits non-zero (failing the job) if
//! any expected file is missing, unparsable, or violates the contract
//! checked by [`teeve_bench::validate_bench_json`].

use std::process::ExitCode;

/// The benches whose trajectories CI archives.
const EXPECTED: [&str; 5] = [
    "runtime_repair",
    "quality_delta",
    "multi_session",
    "coordinator_resync",
    "fleet_scale",
];

fn main() -> ExitCode {
    let mut failed = false;
    for name in EXPECTED {
        match teeve_bench::validate_bench_json(name) {
            Ok(report) => {
                println!("BENCH_{name}.json ok: {} metric(s)", report.metrics.len());
                for (key, value) in &report.metrics {
                    println!("  {key} = {value}");
                }
            }
            Err(err) => {
                eprintln!("BENCH_{name}.json FAILED: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
