//! Regenerates Figure 10: average out-degree utilization of RJ (uniform
//! nodes, random workload, 4–20 sites).
//!
//! Usage: `fig10 [--samples N] [--seed S] [--json]`

use teeve_bench::{cell, fig10_series, DEFAULT_SEED, PAPER_SAMPLES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let samples = get("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_SAMPLES);
    let seed = get("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let json = args.iter().any(|a| a == "--json");

    let rows = fig10_series(samples, seed);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "figure": "10",
                "setup": "RJ, uniform nodes, random workload",
                "samples": samples,
                "seed": seed,
                "rows": rows,
            })
        );
    } else {
        println!("Figure 10 — out-degree utilization of RJ ({samples} samples, seed {seed})");
        println!("{:>3} {:>9} {:>9} {:>9}", "N", "util", "stddev", "relaying");
        for r in rows {
            println!(
                "{:>3} {} {} {}",
                r.sites,
                cell(r.mean_out_utilization),
                cell(r.stddev_out_utilization),
                cell(r.mean_relay_fraction)
            );
        }
    }
}
