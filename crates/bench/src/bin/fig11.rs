//! Regenerates Figure 11: criticality-weighted rejection (Equation 3) of
//! RJ vs CO-RJ (Zipf workload, heterogeneous nodes).
//!
//! Usage: `fig11 [--samples N] [--seed S] [--json]`

use teeve_bench::{cell, fig11_series, DEFAULT_SEED, PAPER_SAMPLES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let samples = get("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_SAMPLES);
    let seed = get("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let json = args.iter().any(|a| a == "--json");

    let rows = fig11_series(samples, seed);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "figure": "11",
                "setup": "Zipf workload, heterogeneous nodes, X' (Eq. 3)",
                "samples": samples,
                "seed": seed,
                "rows": rows,
            })
        );
    } else {
        println!("Figure 11 — weighted rejection X' ({samples} samples, seed {seed})");
        println!("{:>3} {:>9} {:>9} {:>9}", "N", "RJ", "CO-RJ", "factor");
        for r in rows {
            println!(
                "{:>3} {} {} {:>8.2}x",
                r.sites,
                cell(r.rj),
                cell(r.corj),
                r.rj / r.corj.max(1e-12)
            );
        }
    }
}
