//! Regenerates Figure 8: average rejection ratio vs. number of sites for
//! STF, LTF, MCTF, and RJ across the four workload/capacity panels.
//!
//! Usage: `fig8 [--panel a|b|c|d] [--samples N] [--seed S] [--json]`

use teeve_bench::{cell, fig8_series, Fig8Panel, DEFAULT_SEED, PAPER_SAMPLES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let samples = get("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_SAMPLES);
    let seed = get("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let json = args.iter().any(|a| a == "--json");
    let panels: Vec<Fig8Panel> = match get("--panel") {
        Some(letter) => vec![Fig8Panel::from_letter(&letter).unwrap_or_else(|| {
            eprintln!("unknown panel '{letter}', expected a-d");
            std::process::exit(2);
        })],
        None => Fig8Panel::ALL.to_vec(),
    };

    for panel in panels {
        let rows = fig8_series(panel, samples, seed);
        if json {
            println!(
                "{}",
                serde_json::json!({
                    "figure": "8",
                    "panel": panel.caption(),
                    "samples": samples,
                    "seed": seed,
                    "rows": rows,
                })
            );
        } else {
            println!(
                "Figure 8 {} — {} samples, seed {}",
                panel.caption(),
                samples,
                seed
            );
            println!(
                "{:>3} {:>8} {:>8} {:>8} {:>8}",
                "N", "STF", "LTF", "MCTF", "RJ"
            );
            for r in rows {
                println!(
                    "{:>3} {} {} {} {}",
                    r.sites,
                    cell(r.stf),
                    cell(r.ltf),
                    cell(r.mctf),
                    cell(r.rj)
                );
            }
            println!();
        }
    }
}
