//! Regenerates Figure 9: impact of the construction granularity on the
//! rejection ratio (Gran-LTF, N = 10, uniform nodes, random workload).
//!
//! Usage: `fig9 [--samples N] [--seed S] [--json]`

use teeve_bench::{cell, fig9_series, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // Each granularity point is averaged over this many fresh workloads;
    // the default keeps the full sweep comparable in effort to fig8.
    let samples = get("--samples").and_then(|s| s.parse().ok()).unwrap_or(50);
    let seed = get("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let json = args.iter().any(|a| a == "--json");

    let points = fig9_series(samples, seed, None);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "figure": "9",
                "setup": "N=10, uniform nodes, random workload, Gran-LTF",
                "samples": samples,
                "seed": seed,
                "points": points,
            })
        );
    } else {
        println!("Figure 9 — granularity vs rejection (N=10, uniform, random workload)");
        println!("{:>6} {:>10}", "g", "rejection");
        for p in points {
            println!("{:>6} {}", p.granularity, cell(p.rejection_ratio));
        }
    }
}
