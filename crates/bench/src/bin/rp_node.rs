//! A standalone rendezvous-point process.
//!
//! Runs one [`RpNode`] until its coordinator orders it down — the
//! process form of the node every in-process `LiveCluster` spawns as a
//! thread. A coordinator in another process (or on another host) drives
//! it purely over TCP: there is no shared state to share, so the binary
//! is nothing but bind, advertise, serve.
//!
//! Usage: `rp_node <site-index> [read-timeout-ms]`
//!
//! Prints one line, `LISTEN <addr>`, to stdout once the listener is
//! bound; the parent process (e.g. the multi-process smoke test) reads it
//! to learn the node's address. Exits 0 when a `Shutdown` order arrives.

use std::io::Write;
use std::time::Duration;

use teeve_net::RpNode;
use teeve_types::SiteId;

fn main() {
    let mut args = std::env::args().skip(1);
    let site: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("usage: rp_node <site-index> [read-timeout-ms]");
        std::process::exit(2);
    });
    let timeout_ms: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000);

    let node =
        RpNode::bind(SiteId::new(site), Duration::from_millis(timeout_ms)).unwrap_or_else(|e| {
            eprintln!("rp_node: bind failed: {e}");
            std::process::exit(1);
        });
    println!("LISTEN {}", node.local_addr());
    std::io::stdout().flush().ok();
    node.run();
}
