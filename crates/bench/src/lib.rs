//! Figure-reproduction harness for the TEEVE ICDCS 2008 paper.
//!
//! Each `fig*_series` function regenerates the data series behind one
//! figure of the paper's evaluation (Section 5), using the same setup:
//! sessions of 3–10 (or 4–20) sites sampled from the backbone topology,
//! 200 workload samples per configuration, and the algorithms under test.
//!
//! The `src/bin/fig*.rs` binaries print these series as tables (or JSON
//! with `--json`); the Criterion benches under `benches/` measure the
//! construction *cost* claims and the ablations listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use teeve_overlay::{
    granularity_sweep, ConstructionAlgorithm, CorrelatedRandomJoin, LargestTreeFirst,
    MinimumCapacityTreeFirst, RandomJoin, SmallestTreeFirst,
};
use teeve_topology::backbone_north_america;
use teeve_types::CostMatrix;
use teeve_workload::WorkloadConfig;

/// Default number of workload samples per configuration (the paper uses
/// 200).
pub const PAPER_SAMPLES: usize = 200;

/// Default RNG seed for reproducible figure regeneration.
pub const DEFAULT_SEED: u64 = 2008;

/// The four panels of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig8Panel {
    /// (a) Zipf workload, heterogeneous nodes.
    ZipfHeterogeneous,
    /// (b) Zipf workload, uniform nodes.
    ZipfUniform,
    /// (c) Random workload, heterogeneous nodes.
    RandomHeterogeneous,
    /// (d) Random workload, uniform nodes.
    RandomUniform,
}

impl Fig8Panel {
    /// All four panels in paper order.
    pub const ALL: [Fig8Panel; 4] = [
        Fig8Panel::ZipfHeterogeneous,
        Fig8Panel::ZipfUniform,
        Fig8Panel::RandomHeterogeneous,
        Fig8Panel::RandomUniform,
    ];

    /// The paper's caption for this panel.
    pub fn caption(self) -> &'static str {
        match self {
            Fig8Panel::ZipfHeterogeneous => "(a) Zipf workload, heterogeneous nodes",
            Fig8Panel::ZipfUniform => "(b) Zipf workload, uniform nodes",
            Fig8Panel::RandomHeterogeneous => "(c) Random workload, heterogeneous nodes",
            Fig8Panel::RandomUniform => "(d) Random workload, uniform nodes",
        }
    }

    /// The workload configuration of this panel.
    pub fn config(self) -> WorkloadConfig {
        match self {
            Fig8Panel::ZipfHeterogeneous => WorkloadConfig::zipf_heterogeneous(),
            Fig8Panel::ZipfUniform => WorkloadConfig::zipf_uniform(),
            Fig8Panel::RandomHeterogeneous => WorkloadConfig::random_heterogeneous(),
            Fig8Panel::RandomUniform => WorkloadConfig::random_uniform(),
        }
    }

    /// Parses a panel letter (`a`–`d`).
    pub fn from_letter(letter: &str) -> Option<Self> {
        match letter {
            "a" => Some(Fig8Panel::ZipfHeterogeneous),
            "b" => Some(Fig8Panel::ZipfUniform),
            "c" => Some(Fig8Panel::RandomHeterogeneous),
            "d" => Some(Fig8Panel::RandomUniform),
            _ => None,
        }
    }
}

/// One row of a Figure 8 panel: mean rejection ratios at a session size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Number of sites `N`.
    pub sites: usize,
    /// Mean rejection ratio of STF.
    pub stf: f64,
    /// Mean rejection ratio of LTF.
    pub ltf: f64,
    /// Mean rejection ratio of MCTF.
    pub mctf: f64,
    /// Mean rejection ratio of RJ.
    pub rj: f64,
}

/// Samples an `n`-site session cost matrix from the embedded backbone.
pub fn sample_costs(n: usize, rng: &mut ChaCha8Rng) -> CostMatrix {
    backbone_north_america()
        .sample_session(n, rng)
        .expect("the NA backbone supports sessions of up to 39 sites")
        .costs
}

/// Regenerates one Figure 8 panel: mean rejection ratio vs. number of
/// sites (3–10) for STF, LTF, MCTF, and RJ.
pub fn fig8_series(panel: Fig8Panel, samples: usize, seed: u64) -> Vec<Fig8Row> {
    let config = panel.config();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (3..=10)
        .map(|n| {
            let mut totals = [0.0f64; 4];
            for _ in 0..samples {
                let costs = sample_costs(n, &mut rng);
                let problem = config.generate(&costs, &mut rng).expect("n >= 3");
                let algos: [&dyn ConstructionAlgorithm; 4] = [
                    &SmallestTreeFirst,
                    &LargestTreeFirst,
                    &MinimumCapacityTreeFirst,
                    &RandomJoin,
                ];
                for (total, algo) in totals.iter_mut().zip(algos) {
                    *total += algo
                        .construct(&problem, &mut rng)
                        .metrics()
                        .rejection_ratio();
                }
            }
            let m = samples as f64;
            Fig8Row {
                sites: n,
                stf: totals[0] / m,
                ltf: totals[1] / m,
                mctf: totals[2] / m,
                rj: totals[3] / m,
            }
        })
        .collect()
}

/// One point of the Figure 9 granularity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Granularity `g` (trees constructed at once).
    pub granularity: usize,
    /// Mean rejection ratio of Gran-LTF at that granularity.
    pub rejection_ratio: f64,
}

/// Regenerates Figure 9: impact of granularity on rejection ratio, at
/// `N = 10` with uniform nodes under random workload.
///
/// The sweep covers `granularities` (pass `None` to sweep a 20-point grid
/// from 1 to the forest size).
pub fn fig9_series(samples: usize, seed: u64, granularities: Option<&[usize]>) -> Vec<Fig9Point> {
    let config = WorkloadConfig::random_uniform();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let costs = sample_costs(10, &mut rng);

    // Determine the sweep grid from one pilot sample's forest size.
    let pilot = config.generate(&costs, &mut rng).expect("n >= 3");
    let f = pilot.group_count().max(1);
    let grid: Vec<usize> = match granularities {
        Some(gs) => gs.to_vec(),
        None => {
            let mut gs: Vec<usize> = (0..20).map(|k| 1 + k * f.saturating_sub(1) / 19).collect();
            gs.dedup();
            gs
        }
    };

    // Common random numbers: every granularity point is evaluated on the
    // SAME sampled instances, with the SAME per-instance RNG seed for the
    // request shuffles. Between-instance variance is far larger than the
    // granularity effect, so independent sampling per point would bury
    // the curve in noise.
    let instances: Vec<_> = (0..samples)
        .map(|_| {
            let costs = sample_costs(10, &mut rng);
            config.generate(&costs, &mut rng).expect("n >= 3")
        })
        .collect();

    grid.iter()
        .map(|&g| {
            let mut total = 0.0;
            for (i, problem) in instances.iter().enumerate() {
                let mut shuffle_rng =
                    ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let points = granularity_sweep(
                    problem,
                    &[g.min(problem.group_count().max(1))],
                    3,
                    &mut shuffle_rng,
                );
                total += points[0].mean_rejection_ratio;
            }
            Fig9Point {
                granularity: g,
                rejection_ratio: total / samples as f64,
            }
        })
        .collect()
}

/// One row of Figure 10: load-balancing statistics at a session size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Number of sites `N`.
    pub sites: usize,
    /// Mean out-degree utilization across nodes (paper: close to 100%).
    pub mean_out_utilization: f64,
    /// Standard deviation of the out-degree utilization (paper: < 3%).
    pub stddev_out_utilization: f64,
    /// Mean fraction of out-degree used for relaying other sites' streams
    /// (paper: ≈ 25%).
    pub mean_relay_fraction: f64,
}

/// Regenerates Figure 10: average out-degree utilization of RJ with
/// uniform nodes under random workload, for 4–20 sites.
pub fn fig10_series(samples: usize, seed: u64) -> Vec<Fig10Row> {
    let config = WorkloadConfig::random_uniform();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (4..=20)
        .step_by(2)
        .map(|n| {
            let mut util = 0.0;
            let mut std = 0.0;
            let mut relay = 0.0;
            for _ in 0..samples {
                let costs = sample_costs(n, &mut rng);
                let problem = config.generate(&costs, &mut rng).expect("n >= 3");
                let metrics = RandomJoin.construct(&problem, &mut rng).metrics().clone();
                util += metrics.mean_out_degree_utilization;
                std += metrics.stddev_out_degree_utilization;
                relay += metrics.mean_relay_fraction;
            }
            let m = samples as f64;
            Fig10Row {
                sites: n,
                mean_out_utilization: util / m,
                stddev_out_utilization: std / m,
                mean_relay_fraction: relay / m,
            }
        })
        .collect()
}

/// One row of Figure 11: criticality-weighted rejection of RJ vs CO-RJ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Number of sites `N`.
    pub sites: usize,
    /// Mean weighted rejection `X′` of plain RJ.
    pub rj: f64,
    /// Mean weighted rejection `X′` of CO-RJ.
    pub corj: f64,
}

/// Regenerates Figure 11: `X′` (Equation 3) vs. number of sites for RJ and
/// CO-RJ, with heterogeneous nodes under Zipf workload.
pub fn fig11_series(samples: usize, seed: u64) -> Vec<Fig11Row> {
    let config = WorkloadConfig::zipf_heterogeneous();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (3..=10)
        .map(|n| {
            let mut rj_total = 0.0;
            let mut corj_total = 0.0;
            for _ in 0..samples {
                let costs = sample_costs(n, &mut rng);
                let problem = config.generate(&costs, &mut rng).expect("n >= 3");
                rj_total += RandomJoin
                    .construct(&problem, &mut rng)
                    .metrics()
                    .weighted_rejection();
                corj_total += CorrelatedRandomJoin
                    .construct(&problem, &mut rng)
                    .metrics()
                    .weighted_rejection();
            }
            let m = samples as f64;
            Fig11Row {
                sites: n,
                rj: rj_total / m,
                corj: corj_total / m,
            }
        })
        .collect()
}

/// Renders a float as a fixed-width table cell.
pub fn cell(x: f64) -> String {
    format!("{x:>8.4}")
}

/// Schema version of the `BENCH_<name>.json` trajectory files.
pub const BENCH_SCHEMA: u64 = 1;

/// One machine-readable bench trajectory, written to the repo root as
/// `BENCH_<name>.json` by the headline benches and validated by the
/// `bench_check` binary in CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// The bench that produced this file (matches the `[[bench]]` name).
    pub bench: String,
    /// File format version; bump on incompatible change.
    pub schema: u64,
    /// Headline metrics: name → finite number. On the wire this is an
    /// array of `[name, value]` pairs (the map encoding of the vendored
    /// serde stand-in).
    pub metrics: std::collections::BTreeMap<String, f64>,
}

/// Where `BENCH_<name>.json` lives: the workspace root, so CI can glob
/// `BENCH_*.json` without knowing the crate layout.
pub fn bench_json_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(format!("BENCH_{name}.json"))
}

/// Writes a bench trajectory to the repo root and returns its path.
///
/// Panics on I/O or serialization failure — a bench that cannot record
/// its own results should fail loudly, not silently skip the artifact.
pub fn write_bench_json(name: &str, metrics: &[(&str, f64)]) -> std::path::PathBuf {
    let report = BenchReport {
        bench: name.to_string(),
        schema: BENCH_SCHEMA,
        metrics: metrics
            .iter()
            .map(|&(key, value)| (key.to_string(), value))
            .collect(),
    };
    let path = bench_json_path(name);
    let file =
        std::fs::File::create(&path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    serde_json::to_writer(file, &report).expect("bench report serializes");
    println!("wrote {}", path.display());
    path
}

/// Reads `BENCH_<name>.json` back and checks the schema contract: the
/// declared bench name matches, the schema version is current, and the
/// metrics object is non-empty with every value finite.
pub fn validate_bench_json(name: &str) -> Result<BenchReport, String> {
    let path = bench_json_path(name);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let report: BenchReport =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e:?}", path.display()))?;
    if report.bench != name {
        return Err(format!(
            "{}: declares bench {:?}, expected {name:?}",
            path.display(),
            report.bench
        ));
    }
    if report.schema != BENCH_SCHEMA {
        return Err(format!(
            "{}: schema {} != {BENCH_SCHEMA}",
            path.display(),
            report.schema
        ));
    }
    if report.metrics.is_empty() {
        return Err(format!("{}: empty metrics object", path.display()));
    }
    for (key, value) in &report.metrics {
        if !value.is_finite() {
            return Err(format!("{}: metric {key:?} is {value}", path.display()));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_panels_parse_from_letters() {
        assert_eq!(
            Fig8Panel::from_letter("a"),
            Some(Fig8Panel::ZipfHeterogeneous)
        );
        assert_eq!(Fig8Panel::from_letter("d"), Some(Fig8Panel::RandomUniform));
        assert_eq!(Fig8Panel::from_letter("z"), None);
    }

    #[test]
    fn fig8_series_has_expected_shape() {
        let rows = fig8_series(Fig8Panel::RandomUniform, 2, 1);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].sites, 3);
        assert_eq!(rows[7].sites, 10);
        for r in &rows {
            for v in [r.stf, r.ltf, r.mctf, r.rj] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn fig9_series_spans_granularities() {
        let points = fig9_series(1, 2, Some(&[1, 50, 150]));
        assert_eq!(points.len(), 3);
        assert!(points[0].granularity < points[2].granularity);
    }

    #[test]
    fn fig10_series_covers_4_to_20() {
        let rows = fig10_series(1, 3);
        assert_eq!(rows.first().map(|r| r.sites), Some(4));
        assert_eq!(rows.last().map(|r| r.sites), Some(20));
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.mean_out_utilization));
            assert!((0.0..=1.0).contains(&r.mean_relay_fraction));
        }
    }

    #[test]
    fn fig11_series_reports_both_algorithms() {
        let rows = fig11_series(2, 4);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.rj >= 0.0);
            assert!(r.corj >= 0.0);
        }
    }

    #[test]
    fn bench_json_roundtrips_and_validates() {
        let path = write_bench_json("lib_selftest", &[("a_micros", 1.0), ("speedup", 2.5)]);
        let report = validate_bench_json("lib_selftest").expect("fresh file validates");
        assert_eq!(report.bench, "lib_selftest");
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert_eq!(report.metrics["a_micros"], 1.0);
        assert_eq!(report.metrics["speedup"], 2.5);
        std::fs::remove_file(path).unwrap();
        assert!(validate_bench_json("lib_selftest").is_err());
    }

    #[test]
    fn bench_json_validation_rejects_contract_violations() {
        let path = bench_json_path("lib_badfile");
        std::fs::write(
            &path,
            r#"{"bench":"other","schema":1,"metrics":[["a",1.0]]}"#,
        )
        .unwrap();
        let err = validate_bench_json("lib_badfile").unwrap_err();
        assert!(err.contains("declares bench"), "{err}");
        std::fs::write(
            &path,
            r#"{"bench":"lib_badfile","schema":99,"metrics":[["a",1.0]]}"#,
        )
        .unwrap();
        let err = validate_bench_json("lib_badfile").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        std::fs::write(&path, r#"{"bench":"lib_badfile","schema":1,"metrics":[]}"#).unwrap();
        let err = validate_bench_json("lib_badfile").unwrap_err();
        assert!(err.contains("empty"), "{err}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn series_are_deterministic_per_seed() {
        let a = fig8_series(Fig8Panel::ZipfUniform, 2, 7);
        let b = fig8_series(Fig8Panel::ZipfUniform, 2, 7);
        assert_eq!(a, b);
    }
}
