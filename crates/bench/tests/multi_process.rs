//! The multi-process smoke path: a [`Coordinator`] driving `rp_node`
//! processes that share **nothing** with it but sockets.
//!
//! Each RP runs as its own OS process (the `rp_node` bin of this crate);
//! the coordinator connects by address and walks the full lifecycle —
//! launch → publish → apply_delta → publish → shutdown — entirely over
//! the wire. The delivery accounting must match an in-process
//! [`LiveCluster`] run of the identical schedule bit-for-bit, proving
//! the wrapper adds convenience, not semantics.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use teeve_net::{ClusterConfig, Coordinator, LiveCluster};
use teeve_overlay::{NodeCapacity, OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

fn site(i: u32) -> SiteId {
    SiteId::new(i)
}

fn stream(origin: u32, q: u32) -> StreamId {
    StreamId::new(site(origin), q)
}

/// The three-site universe the smoke test reconfigures: site 0 owns two
/// streams, sites 1 and 2 may subscribe, and source capacity 1 forces
/// relaying so the overlay actually has interior links.
fn universe() -> ProblemInstance {
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
    ProblemInstance::builder(costs, CostMs::new(50))
        .capacities(vec![
            NodeCapacity::symmetric(Degree::new(1)),
            NodeCapacity::symmetric(Degree::new(4)),
            NodeCapacity::symmetric(Degree::new(4)),
        ])
        .streams_per_site(&[2, 0, 0])
        .subscribe(site(1), stream(0, 0))
        .subscribe(site(1), stream(0, 1))
        .subscribe(site(2), stream(0, 0))
        .build()
        .unwrap()
}

fn plan_at(
    problem: &ProblemInstance,
    manager: &OverlayManager,
    revision: u64,
) -> DisseminationPlan {
    let mut plan = DisseminationPlan::from_forest(
        problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    plan.set_revision(revision);
    plan
}

/// Spawns one `rp_node` process and reads its advertised address.
fn spawn_rp(site_index: u32) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rp_node"))
        .arg(site_index.to_string())
        .arg("30000")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn rp_node");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .expect("LISTEN prefix")
        .parse()
        .expect("advertised address parses");
    (child, addr)
}

/// Runs the shared lifecycle schedule against any executor exposing the
/// coordinator surface, returning the delivery report.
fn drive<E>(
    executor: &mut E,
    publish: impl Fn(&mut E, u64) -> Result<(), teeve_net::ClusterError>,
    apply: impl Fn(&mut E, &PlanDelta) -> Result<teeve_net::ReconfigureReport, teeve_net::ClusterError>,
    plan_a: &DisseminationPlan,
    problem: &ProblemInstance,
) -> (PlanDelta, PlanDelta) {
    // Epoch 0: the launch plan flows.
    publish(executor, 4).expect("batch under plan A");

    // Epoch 1: site 1 picks up stream 0.1 — rides the existing 0-chain
    // where possible; site 2 drops nothing yet.
    let mut manager = OverlayManager::new(problem.clone());
    manager.subscribe(site(1), stream(0, 0)).unwrap();
    manager.subscribe(site(2), stream(0, 0)).unwrap();
    manager.subscribe(site(1), stream(0, 1)).unwrap();
    let plan_b = plan_at(problem, &manager, 1);
    let delta_ab = PlanDelta::diff(plan_a, &plan_b);
    apply(executor, &delta_ab).expect("delta A->B applies");
    publish(executor, 3).expect("batch under plan B");

    // Epoch 2: site 2 leaves stream 0.0 — its last link closes.
    manager.unsubscribe(site(2), stream(0, 0)).unwrap();
    let plan_c = plan_at(problem, &manager, 2);
    let delta_bc = PlanDelta::diff(&plan_b, &plan_c);
    apply(executor, &delta_bc).expect("delta B->C applies");
    publish(executor, 2).expect("batch under plan C");

    (delta_ab, delta_bc)
}

/// Records what the current plan's receivers are owed by a batch.
fn expect_batch(
    expected: &mut BTreeMap<(SiteId, StreamId), u64>,
    plan: &DisseminationPlan,
    frames: u64,
) {
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            *expected.entry((sp.site, stream)).or_default() += frames;
        }
    }
}

/// RP nodes in separate OS processes, a coordinator with nothing but
/// their addresses, the full lifecycle over sockets — and delivery
/// accounting identical, bit for bit, to the in-process wrapper.
#[test]
fn socket_multi_process_fleet_matches_in_process_wrapper_bit_for_bit() {
    let problem = universe();
    let mut manager = OverlayManager::new(problem.clone());
    manager.subscribe(site(1), stream(0, 0)).unwrap();
    manager.subscribe(site(2), stream(0, 0)).unwrap();
    let plan_a = plan_at(&problem, &manager, 0);
    assert!(
        plan_a.site_plans().iter().any(|sp| sp.in_degree() > 0),
        "the launch plan must disseminate something"
    );
    let config = ClusterConfig {
        frames_per_stream: 4,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    };

    // --- The real thing: three OS processes, driven purely by address.
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3u32 {
        let (child, addr) = spawn_rp(i);
        children.push(child);
        addrs.push(addr);
    }
    let mut coordinator = Coordinator::connect(&plan_a, &addrs, &config).expect("connect fleet");

    let mut expected = BTreeMap::new();
    expect_batch(&mut expected, coordinator.plan(), 4);
    let (delta_ab, delta_bc) = drive(
        &mut coordinator,
        |c, frames| c.publish(frames),
        |c, delta| c.apply_delta(delta),
        &plan_a,
        &problem,
    );
    // Re-derive the per-epoch expectations from the coordinator's view.
    let mut check = plan_a.clone();
    delta_ab.apply(&mut check).unwrap();
    expect_batch(&mut expected, &check, 3);
    delta_bc.apply(&mut check).unwrap();
    expect_batch(&mut expected, &check, 2);

    let multi_process = coordinator.shutdown();
    for mut child in children {
        let status = child.wait().expect("rp_node exits");
        assert!(status.success(), "rp_node exited with {status}");
    }

    // --- The in-process wrapper, same plan, same schedule.
    let mut cluster = LiveCluster::launch(&plan_a, &config).expect("launch wrapper");
    drive(
        &mut cluster,
        |c, frames| c.publish(frames),
        |c, delta| c.apply_delta(delta),
        &plan_a,
        &problem,
    );
    let in_process = cluster.shutdown();

    // Delivery accounting matches the schedule exactly and the wrapper
    // bit for bit. (Latencies are wall-clock and may differ; counts and
    // topology history may not.)
    assert_eq!(multi_process.delivered, expected);
    assert_eq!(multi_process.delivered, in_process.delivered);
    assert_eq!(multi_process.final_revision, in_process.final_revision);
    assert_eq!(
        multi_process.connections_opened,
        in_process.connections_opened
    );
    assert_eq!(
        multi_process.connections_closed,
        in_process.connections_closed
    );

    // The merged delivery-latency histogram of the external fleet is
    // exactly the fold of its per-RP histograms — nothing lost crossing
    // the wire's sparse bucket encoding — and each per-pair histogram
    // counts precisely the frames delivered on that pair.
    let mut folded = teeve_telemetry::LogHistogram::new();
    for (key, hist) in &multi_process.latency {
        assert_eq!(hist.count(), multi_process.delivered[key]);
        folded.merge(hist);
    }
    assert_eq!(folded, multi_process.merged_latency());
    assert_eq!(folded.count(), multi_process.total_delivered());
}

/// An `rp_node` process abandoned by its coordinator (dropped without
/// `shutdown`) is still ordered down — no orphan RP processes survive a
/// crashed control plane that managed to disconnect.
#[test]
fn socket_dropped_coordinator_orders_external_nodes_down() {
    let problem = universe();
    let mut manager = OverlayManager::new(problem.clone());
    manager.subscribe(site(1), stream(0, 0)).unwrap();
    let plan = plan_at(&problem, &manager, 0);

    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3u32 {
        let (child, addr) = spawn_rp(i);
        children.push(child);
        addrs.push(addr);
    }
    let config = ClusterConfig {
        timeout: Duration::from_secs(30),
        ..ClusterConfig::default()
    };
    let coordinator = Coordinator::connect(&plan, &addrs, &config).expect("connect fleet");
    drop(coordinator);
    for mut child in children {
        let status = child.wait().expect("rp_node exits after coordinator drop");
        assert!(status.success(), "rp_node exited with {status}");
    }
}
