//! `teeve-check`: the workspace's self-checking gate — repo-invariant
//! lint passes and an exhaustive control-plane model checker, all run in
//! CI (`cargo run --release -p teeve-check -- <lint|locks|model|all>`).
//!
//! # Why a bespoke checker
//!
//! The failure classes this repo kept hand-patching in review are
//! *repo-specific* — a `Message` variant added to the encoder but not
//! the proptest strategy, a wire count looped on before a bounds check,
//! an `unwrap()` inside an RP reader thread, an ad-hoc
//! `SystemTime::now`, a guard held across a socket write. Generic
//! tooling can't know these rules, and the build image has no registry
//! access for `syn`-sized dependencies, so [`lint`] is a token-level
//! scanner over cleaned source text: exact line numbers, zero
//! dependencies, suppression and allowlist escape hatches for the
//! places the heuristics misjudge. The `locks` pass layers a
//! lock-discipline analysis on the same scanner: it tracks `parking_lot`
//! guard live-ranges, builds a cross-file lock-ordering graph, and
//! reports order cycles, guards held across blocking calls, and
//! double-acquisitions of one lock family.
//!
//! The dictation protocol (revision-tagged `Reconfigure`/`Ack` with an
//! ack barrier, absorbing poisoning, quality-stamped forwarding tables,
//! crash/reconnect/resync) is only ever *tested* on clean
//! interleavings; [`model`] explores it exhaustively at small scope —
//! every reordering, drop, duplication, and coordinator crash the
//! bounded network allows — and proves eight invariants on every
//! reachable state, with seeded-mutation self-tests demonstrating that
//! each invariant check can actually fail:
//!
//! | invariant | meaning |
//! |---|---|
//! | `revision-monotone`   | an RP's applied revision never decreases |
//! | `ack-valid`           | no `Ack` for a revision never delivered to that RP |
//! | `poison-absorbing`    | a poisoned coordinator never dictates again |
//! | `quality-monotone`    | effective quality only degrades along forwarding paths |
//! | `acyclic-forwarding`  | no reachable mixed table forwards in a cycle |
//! | `resync-continuity`   | RPs keep forwarding their last-applied table through coordinator absence |
//! | `resync-view`         | a reconnected coordinator only dictates on a view matching every RP's real revision |
//! | `reconnect-regression`| the dictation watermark never falls across a reconnect |
//!
//! The bridge back to the real code is [`model::swap_table`] — the exact
//! table-application rule `node.rs` implements — which the
//! model-conformance proptest (`tests/conformance.rs`) runs against real
//! `DisseminationPlan`-derived `SitePlan`s evolved by random deltas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod model;
