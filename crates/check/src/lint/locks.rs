//! The lock-discipline pass: a token-level analysis of every
//! `parking_lot` guard in the workspace.
//!
//! Like the rules in [`super::rules`], this parses nothing — it walks the
//! cleaned source view (comments and literals blanked) tracking brace and
//! paren depth, and approximates each guard's live range from how the
//! acquisition is bound:
//!
//! * `let g = x.lock();` — a **named** guard, live until its enclosing
//!   block closes or an explicit `drop(g)`;
//! * `if let` / `while let` / `match` / `for` scrutinees — a **block**
//!   temporary, live through the whole block the statement opens (the
//!   real Rust temporary-lifetime rule, and a classic hidden-guard trap:
//!   `if let Some(c) = x.lock().remove(k)` holds the lock across the
//!   entire body);
//! * anything else — a **statement** temporary, live to the statement's
//!   `;`/`,` (plain `if cond {` temporaries drop at the `{`, as in Rust).
//!
//! Over the live guards it reports three rules:
//!
//! * [`RULE_LOCK_ORDER`] — a cross-file ordering graph over lock
//!   *families* (the receiver's final field/binding name: `self.table
//!   .lock()` and `rp.table.lock()` are one family); any cycle is a
//!   potential deadlock under concurrent callers;
//! * [`RULE_LOCK_BLOCKING`] — a blocking call (socket read/write/dial,
//!   `thread::join`, channel `recv`, `sleep`, a readiness `.poll(` wait
//!   or selector `.register(`/`.reregister(`/`.deregister(` call, …)
//!   issued while any guard is live;
//! * [`RULE_LOCK_DOUBLE`] — re-acquiring a family that already has a
//!   live guard (`parking_lot` locks are not reentrant).
//!
//! These are heuristics: families are names, not types, and live ranges
//! are approximated, so real designs that intentionally hold a guard
//! (e.g. a writer lock that exists to serialize socket bytes) are
//! expected to carry an allowlist entry explaining why — see
//! `crates/check/teeve-check.allow`.

use std::collections::BTreeMap;

use super::source::SourceFile;
use super::Finding;

/// Lock-order cycles across the workspace's lock-site ordering graph.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Blocking calls made while a guard is live.
pub const RULE_LOCK_BLOCKING: &str = "lock-blocking";
/// Double-acquisition of an already-held lock family.
pub const RULE_LOCK_DOUBLE: &str = "lock-double";

/// The lock rules, in the order they report.
pub const LOCK_RULES: &[&str] = &[RULE_LOCK_ORDER, RULE_LOCK_BLOCKING, RULE_LOCK_DOUBLE];

/// Guard-producing calls. `.read()`/`.write()` only count with **empty**
/// parens — that is the `parking_lot::RwLock` signature, while
/// `io::Read::read(&mut buf)` / `io::Write::write(&buf)` take arguments.
const ACQUIRE_TOKENS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Calls that can block the holding thread, with a short description for
/// the finding message.
const BLOCKING_TOKENS: &[(&str, &str)] = &[
    (".write_all(", "socket/stream write"),
    (".read_exact(", "socket/stream read"),
    (".flush()", "stream flush"),
    ("TcpStream::connect", "TCP dial"),
    (".connect(", "TCP dial"),
    (".accept()", "listener accept"),
    (".shutdown(", "socket shutdown"),
    ("thread::sleep", "sleep"),
    (".join()", "thread join"),
    (".recv()", "channel receive"),
    (".recv_timeout(", "channel receive"),
    (".wait(", "condvar wait"),
    (".wait_timeout(", "condvar wait"),
    // Readiness-poll operations: a poll wait parks the thread outright,
    // and (de)registration calls take the selector's internal lock, so
    // any of them under a live guard stalls every contender — the exact
    // trap the reactor's event loops must never fall into.
    (".poll(", "readiness poll wait"),
    (".register(", "poll registration"),
    (".reregister(", "poll registration"),
    (".deregister(", "poll deregistration"),
];

/// How a live guard eventually dies.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GuardKind {
    /// `let g = x.lock();` — dies at block close or `drop(g)`.
    Named(String),
    /// Scrutinee temporary — dies when the block it opened closes.
    Block,
    /// Statement temporary — dies at the next `;`/`,` at its paren
    /// depth (or converts to [`GuardKind::Block`] at a scrutinee `{`).
    Stmt,
}

#[derive(Debug, Clone)]
struct Guard {
    family: String,
    /// 1-based acquisition line.
    line: usize,
    /// Kill the guard when brace depth drops below this.
    dies_below: i32,
    /// Paren depth at acquisition (statement temporaries only).
    paren: i32,
    kind: GuardKind,
}

/// One `A -> B` observation: a `to`-family guard acquired while a
/// `from`-family guard was live.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrderEdge {
    from: String,
    to: String,
    path: String,
    /// 1-based line of the inner (`to`) acquisition.
    line: usize,
    /// 1-based line where the outer (`from`) guard was taken.
    from_line: usize,
}

/// Events of one source line, ordered by column.
enum Event {
    Open,
    Close,
    ParenOpen,
    ParenClose,
    /// `;` or `,` — ends statement temporaries at its paren depth.
    Boundary,
    Acquire {
        named_rest: bool,
    },
    Blocking {
        token: &'static str,
        what: &'static str,
    },
    Drop {
        name: String,
    },
}

/// The receiver's final identifier at the end of the statement text
/// accumulated so far (trailing whitespace skipped, so method chains
/// split across lines resolve), or `None` when the receiver is not a
/// plain field/binding chain.
fn family_from_stmt(stmt: &str) -> Option<String> {
    let head = stmt.trim_end();
    let ident: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let ident: String = ident.chars().rev().collect();
    if ident.is_empty() {
        return None;
    }
    if ident.chars().all(|c| c.is_ascii_digit()) {
        // Tuple-field receivers (`self.0.lock()`) would collide across
        // unrelated types; qualify them with the preceding segment.
        let prefixed: String = head[..head.len() - ident.len()]
            .trim_end_matches('.')
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let prefixed: String = prefixed.chars().rev().collect();
        if prefixed.is_empty() {
            return None;
        }
        return Some(format!("{prefixed}.{ident}"));
    }
    Some(ident)
}

/// True when `at` is preceded by a non-identifier char (so `drop(` does
/// not match `recorder_drop(`).
fn word_start(line: &str, at: usize) -> bool {
    at == 0
        || !line[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Collects the column-ordered events of one cleaned line. Token events
/// (acquire/blocking/drop) are only emitted for production code; brace,
/// paren, and boundary events always run so block structure stays
/// consistent through test regions.
fn line_events(line: &str, production: bool) -> Vec<(usize, Event)> {
    let mut events = Vec::new();
    for (at, c) in line.char_indices() {
        match c {
            '{' => events.push((at, Event::Open)),
            '}' => events.push((at, Event::Close)),
            '(' | '[' => events.push((at, Event::ParenOpen)),
            ')' | ']' => events.push((at, Event::ParenClose)),
            ';' | ',' => events.push((at, Event::Boundary)),
            _ => {}
        }
    }
    if production {
        for token in ACQUIRE_TOKENS {
            let mut start = 0;
            while let Some(pos) = line[start..].find(token) {
                let at = start + pos;
                let rest = &line[at + token.len()..];
                events.push((
                    at,
                    Event::Acquire {
                        named_rest: rest.trim_start().starts_with(';'),
                    },
                ));
                start = at + token.len();
            }
        }
        for &(token, what) in BLOCKING_TOKENS {
            let mut start = 0;
            while let Some(pos) = line[start..].find(token) {
                let at = start + pos;
                // Dot-prefixed tokens are method calls (the char before
                // the `.` is the receiver); bare tokens need a word
                // boundary so `my_thread::sleep` style lookalikes pass.
                if token.starts_with('.') || word_start(line, at) {
                    events.push((at, Event::Blocking { token, what }));
                }
                start = at + token.len();
            }
        }
        let mut start = 0;
        while let Some(pos) = line[start..].find("drop(") {
            let at = start + pos;
            if word_start(line, at) {
                let name: String = line[at + 5..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    events.push((at, Event::Drop { name }));
                }
            }
            start = at + 5;
        }
    }
    events.sort_by_key(|(at, _)| *at);
    events
}

/// True when the statement opening a block keeps its scrutinee
/// temporaries alive through the block (Rust's temporary-lifetime rule
/// for `if let`/`while let`/`match`/`for` — but *not* plain `if`).
fn scrutinee_statement(stmt: &str) -> bool {
    let head = stmt.trim_start();
    head.starts_with("if let ")
        || head.starts_with("while let ")
        || head.starts_with("match ")
        || head.starts_with("for ")
}

/// Per-file scan: produces local findings (blocking, double) and the
/// file's contribution to the global ordering graph.
fn scan_file(file: &SourceFile, edges: &mut Vec<OrderEdge>, findings: &mut Vec<Finding>) {
    let mut depth: i32 = 0;
    let mut paren: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // The statement text accumulated since the last boundary, used to
    // classify `let` bindings and scrutinee blocks.
    let mut stmt = String::new();

    for (idx, line) in file.clean_lines.iter().enumerate() {
        let production = !file.is_test_line(idx);
        // Text between events flows into the statement buffer; structural
        // chars themselves are skipped (cursor hops over them).
        let mut cursor = 0usize;
        for (at, event) in line_events(line, production) {
            if at >= cursor {
                stmt.push_str(&line[cursor..at]);
                cursor = at;
            }
            let structural = matches!(
                event,
                Event::Open | Event::Close | Event::ParenOpen | Event::ParenClose | Event::Boundary
            );
            if structural {
                cursor = at + 1;
            }
            match event {
                Event::Open => {
                    let scrutinee = scrutinee_statement(&stmt);
                    for guard in &mut guards {
                        if guard.kind == GuardKind::Stmt && paren <= guard.paren {
                            if scrutinee {
                                guard.kind = GuardKind::Block;
                                guard.dies_below = depth + 1;
                            } else {
                                // Plain-`if` condition temporaries drop
                                // before the block is entered.
                                guard.dies_below = i32::MAX;
                            }
                        }
                    }
                    guards.retain(|g| g.dies_below != i32::MAX);
                    depth += 1;
                    if paren == 0 {
                        stmt.clear();
                    }
                }
                Event::Close => {
                    depth -= 1;
                    guards.retain(|g| depth >= g.dies_below);
                    if paren == 0 {
                        stmt.clear();
                    }
                }
                Event::ParenOpen => paren += 1,
                Event::ParenClose => paren -= 1,
                Event::Boundary => {
                    guards.retain(|g| !(g.kind == GuardKind::Stmt && paren <= g.paren));
                    if paren == 0 {
                        stmt.clear();
                    }
                }
                Event::Acquire { named_rest } => {
                    let Some(family) = family_from_stmt(&stmt) else {
                        continue;
                    };
                    for held in &guards {
                        if held.family == family {
                            findings.push(Finding::new(
                                RULE_LOCK_DOUBLE,
                                &file.rel,
                                idx + 1,
                                format!(
                                    "lock family `{family}` re-acquired while the guard taken \
                                     at line {} is still live — parking_lot locks are not \
                                     reentrant, this self-deadlocks",
                                    held.line
                                ),
                            ));
                        } else {
                            edges.push(OrderEdge {
                                from: held.family.clone(),
                                to: family.clone(),
                                path: file.rel.clone(),
                                line: idx + 1,
                                from_line: held.line,
                            });
                        }
                    }
                    let kind = if named_rest {
                        let head = stmt.trim_start();
                        let name: String = head
                            .strip_prefix("let ")
                            .map(|r| r.trim_start().trim_start_matches("mut "))
                            .unwrap_or("")
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        if name.is_empty() {
                            GuardKind::Stmt
                        } else {
                            GuardKind::Named(name)
                        }
                    } else {
                        GuardKind::Stmt
                    };
                    guards.push(Guard {
                        family,
                        line: idx + 1,
                        dies_below: depth,
                        paren,
                        kind,
                    });
                }
                Event::Blocking { token, what } => {
                    for held in &guards {
                        findings.push(Finding::new(
                            RULE_LOCK_BLOCKING,
                            &file.rel,
                            idx + 1,
                            format!(
                                "`{token}` ({what}) while lock family `{}` (taken at line {}) \
                                 is held — a blocking call under a guard stalls every \
                                 contending thread",
                                held.family, held.line
                            ),
                        ));
                    }
                }
                Event::Drop { name } => {
                    guards.retain(|g| g.kind != GuardKind::Named(name.clone()));
                }
            }
        }
        if cursor < line.len() {
            stmt.push_str(&line[cursor..]);
        }
        stmt.push('\n');
    }
}

/// Lock-order cycle detection over the accumulated cross-file edges:
/// every edge whose reverse direction is reachable through the graph is
/// reported, with a witness chain back.
fn order_findings(edges: &[OrderEdge]) -> Vec<Finding> {
    // family -> [(to-family, witness edge index)]
    let mut adj: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(&e.from).or_default().push((&e.to, i));
    }
    let mut findings = Vec::new();
    let mut seen: Vec<(&str, &str, &str, usize)> = Vec::new();
    for edge in edges {
        let key = (
            edge.from.as_str(),
            edge.to.as_str(),
            edge.path.as_str(),
            edge.line,
        );
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        // BFS from `to` looking for a path back to `from`.
        let mut frontier = vec![edge.to.as_str()];
        let mut visited = vec![edge.to.as_str()];
        let mut parent: BTreeMap<&str, usize> = BTreeMap::new();
        let mut back: Option<usize> = None;
        'bfs: while let Some(at) = frontier.pop() {
            for &(next, via) in adj.get(at).map(Vec::as_slice).unwrap_or_default() {
                if next == edge.from {
                    parent.insert(next, via);
                    back = Some(via);
                    break 'bfs;
                }
                if !visited.contains(&next) {
                    visited.push(next);
                    parent.insert(next, via);
                    frontier.push(next);
                }
            }
        }
        let Some(_) = back else { continue };
        // Reconstruct the witness chain to -> ... -> from.
        let mut chain = Vec::new();
        let mut at = edge.from.as_str();
        while at != edge.to {
            let via = parent[at];
            let e = &edges[via];
            chain.push(format!(
                "`{}` -> `{}` at {}:{}",
                e.from, e.to, e.path, e.line
            ));
            at = &e.from;
        }
        chain.reverse();
        findings.push(Finding::new(
            RULE_LOCK_ORDER,
            &edge.path,
            edge.line,
            format!(
                "lock family `{}` acquired while `{}` (taken at line {}) is held, but the \
                 reverse order also occurs ({}) — lock-order cycle, potential deadlock",
                edge.to,
                edge.from,
                edge.from_line,
                chain.join(", ")
            ),
        ));
    }
    findings
}

/// Runs the three lock rules over the prepared sources, findings sorted
/// by path, line, then rule.
pub fn run_locks_rules(files: &[SourceFile]) -> Vec<Finding> {
    let mut edges = Vec::new();
    let mut findings = Vec::new();
    for file in files {
        scan_file(file, &mut edges, &mut findings);
    }
    findings.extend(order_findings(&edges));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::super::source::strip_comments_and_strings;
    use super::*;

    fn fake(rel: &str, src: &str) -> SourceFile {
        let clean = strip_comments_and_strings(src);
        SourceFile {
            rel: rel.to_owned(),
            raw_lines: src.lines().map(str::to_owned).collect(),
            clean_lines: clean.lines().map(str::to_owned).collect(),
            test_lines: vec![false; src.lines().count()],
            test_path: false,
        }
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn seeded_lock_order_inversion_is_caught() {
        // The classic two-lock inversion, split across two files exactly
        // as a real deadlock would be.
        let a = fake(
            "crates/x/src/a.rs",
            "fn f(&self) {\n    let alpha = self.alpha.lock();\n    self.beta.lock().push(1);\n}",
        );
        let b = fake(
            "crates/x/src/b.rs",
            "fn g(&self) {\n    let beta = self.beta.lock();\n    self.alpha.lock().push(1);\n}",
        );
        let findings = run_locks_rules(&[a, b]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_ORDER, RULE_LOCK_ORDER]);
        assert_eq!(findings[0].path, "crates/x/src/a.rs");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("`beta`"));
        assert!(findings[0].message.contains("crates/x/src/b.rs:3"));
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let a = fake(
            "crates/x/src/a.rs",
            "fn f(&self) {\n    let alpha = self.alpha.lock();\n    self.beta.lock().push(1);\n}",
        );
        let b = fake(
            "crates/x/src/b.rs",
            "fn g(&self) {\n    let alpha = self.alpha.lock();\n    self.beta.lock().push(1);\n}",
        );
        assert!(run_locks_rules(&[a, b]).is_empty());
    }

    #[test]
    fn three_family_cycle_is_caught() {
        let src = "fn f(&self) {\n    let a = self.a.lock();\n    self.b.lock().x();\n}\n\
                   fn g(&self) {\n    let b = self.b.lock();\n    self.c.lock().x();\n}\n\
                   fn h(&self) {\n    let c = self.c.lock();\n    self.a.lock().x();\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == RULE_LOCK_ORDER));
    }

    #[test]
    fn blocking_call_under_named_guard_is_flagged() {
        let src = "fn f(&self) {\n    let mut outbound = self.outbound.lock();\n    \
                   conn.write_all(&buf);\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("`outbound`"));
    }

    #[test]
    fn poll_wait_and_registration_under_guard_are_flagged() {
        // Seeded reactor-shaped violations: an event loop that polls (or
        // touches the selector's registration table) while holding its
        // command-queue guard stalls every thread trying to enqueue a
        // command — the wakeup path deadlocks against the sleep it is
        // supposed to interrupt.
        let polling = "fn f(&self) {\n    let cmds = self.commands.lock();\n    \
                       self.poll.poll(&mut events, timeout);\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", polling)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("readiness poll wait"));
        assert!(
            findings[0].message.contains("`cmds`") || findings[0].message.contains("`commands`")
        );

        let registering = "fn f(&self) {\n    let g = self.entries.lock();\n    \
                           registry.register(&mut stream, token, interest);\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/b.rs", registering)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert!(findings[0].message.contains("poll registration"));

        let deregistering = "fn f(&self) {\n    if let Some(c) = self.conns.lock().take() \
                             {\n        registry.deregister(&mut c.stream);\n    }\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/c.rs", deregistering)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert!(findings[0].message.contains("poll deregistration"));

        // The lint-safe idiom the reactor actually uses: drain the queue
        // in one statement temporary, then poll with no guard live.
        let drained = "fn f(&self) {\n    let drained = \
                       std::mem::take(&mut *self.commands.lock());\n    \
                       self.poll.poll(&mut events, timeout);\n}";
        assert!(run_locks_rules(&[fake("crates/x/src/d.rs", drained)]).is_empty());
    }

    #[test]
    fn drop_and_block_scope_release_guards() {
        let dropped = "fn f(&self) {\n    let g = self.m.lock();\n    drop(g);\n    \
                       conn.write_all(&buf);\n}";
        let scoped = "fn f(&self) {\n    {\n        let g = self.m.lock();\n    }\n    \
                      conn.write_all(&buf);\n}";
        assert!(run_locks_rules(&[fake("crates/x/src/a.rs", dropped)]).is_empty());
        assert!(run_locks_rules(&[fake("crates/x/src/b.rs", scoped)]).is_empty());
    }

    #[test]
    fn if_let_scrutinee_holds_the_guard_through_the_block() {
        // The hidden-guard trap: the temporary lives through the body.
        let src = "fn f(&self) {\n    if let Some(conn) = self.outbound.lock().remove(&child) \
                   {\n        conn.shutdown(Shutdown::Write);\n    }\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert!(findings[0].message.contains(".shutdown("));
    }

    #[test]
    fn plain_if_condition_temporary_dies_at_the_brace() {
        let src = "fn f(&self) {\n    if self.outbound.lock().is_empty() {\n        \
                   thread::sleep(d);\n    }\n}";
        assert!(run_locks_rules(&[fake("crates/x/src/a.rs", src)]).is_empty());
    }

    #[test]
    fn statement_temporary_dies_at_the_semicolon() {
        let src = "fn f(&self) {\n    self.outbound.lock().insert(child, conn);\n    \
                   conn.write_all(&buf);\n}";
        assert!(run_locks_rules(&[fake("crates/x/src/a.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_inside_the_same_statement_is_flagged() {
        let src = "fn f(&self) {\n    self.control.lock().as_mut().map(|c| \
                   c.write_all(&buf));\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
    }

    #[test]
    fn multi_line_chain_temporary_spans_lines() {
        let src = "fn f(&self) {\n    let v = self.sessions\n        .read()\n        \
                   .iter()\n        .map(|x| conn.write_all(x))\n        .collect();\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_BLOCKING]);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn double_acquisition_of_one_family_is_flagged() {
        let src = "fn f(&self) {\n    let a = self.table.lock();\n    \
                   let b = self.table.lock();\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        assert_eq!(rules_of(&findings), vec![RULE_LOCK_DOUBLE]);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn rwlock_acquisitions_need_empty_parens() {
        // `io::Write::write(&buf)` and `io::Read::read(&mut buf)` take
        // arguments and must not register as guards.
        let src = "fn f(&self) {\n    let g = self.map.write();\n    \
                   stream.write(&buf);\n    stream.read(&mut buf);\n}";
        let findings = run_locks_rules(&[fake("crates/x/src/a.rs", src)]);
        // The named RwLock write guard is real; the io calls create no
        // guards (no double/order findings), and neither io call is in
        // the blocking token list under this guard except read_exact/
        // write_all — so nothing fires.
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tuple_field_receivers_get_qualified_families() {
        let src = "fn f(&self) {\n    self.0.lock().record(v);\n}";
        let mut edges = Vec::new();
        let mut findings = Vec::new();
        scan_file(&fake("crates/x/src/a.rs", src), &mut edges, &mut findings);
        assert!(findings.is_empty());
        assert!(edges.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    conn.write_all(&b);\n}";
        let mut file = fake("crates/x/src/a.rs", src);
        file.test_lines = vec![true; file.raw_lines.len()];
        assert!(run_locks_rules(&[file]).is_empty());
        let in_tests_dir = SourceFile {
            test_path: true,
            ..fake("crates/x/tests/a.rs", src)
        };
        assert!(run_locks_rules(&[in_tests_dir]).is_empty());
    }

    #[test]
    fn guards_do_not_leak_across_functions() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n}\n\
                   fn g(&self) {\n    conn.write_all(&b);\n}";
        assert!(run_locks_rules(&[fake("crates/x/src/a.rs", src)]).is_empty());
    }
}
