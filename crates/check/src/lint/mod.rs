//! The workspace lint engine: repo-invariant rules over every `.rs`
//! source, with in-line suppressions and a checked-in allowlist.
//!
//! Pipeline: [`source::collect_sources`] prepares each file (comments
//! and literals blanked, test regions marked), [`rules::run_all`]
//! produces raw findings, then suppressions and the allowlist filter
//! them. What survives fails the CI gate.
//!
//! Suppressing a finding:
//!
//! * in-line — put `// teeve-check: allow(<rule>)` on the flagged line
//!   or the line directly above it;
//! * allowlist — add a line to `crates/check/teeve-check.allow`
//!   (`<rule> <path-substring> <line-snippet>`), the reviewable home for
//!   grandfathered sites and sanctioned modules.

mod locks;
mod rules;
mod source;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub use locks::{
    run_locks_rules, LOCK_RULES, RULE_LOCK_BLOCKING, RULE_LOCK_DOUBLE, RULE_LOCK_ORDER,
};
pub use rules::{
    run_all, ALL_RULES, RULE_CLOCK, RULE_DECODE_BOUNDS, RULE_NET_NO_PANIC, RULE_STD_SYNC,
    RULE_WIRE_PARITY,
};
pub use source::{collect_sources, strip_comments_and_strings, SourceFile};

/// One lint hit: a rule, a place, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: &'static str, path: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One entry of the checked-in allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule the entry silences.
    pub rule: String,
    /// Substring the finding's workspace-relative path must contain.
    pub path: String,
    /// Substring the flagged raw source line must contain.
    pub snippet: String,
}

/// Parses the allowlist format: one entry per line,
/// `<rule> <path-substring> <line-snippet...>`; `#` starts a comment.
///
/// ```
/// let entries = teeve_check::lint::parse_allowlist(
///     "# sanctioned wall-clock module\nclock crates/types/src/clock.rs SystemTime::now()\n",
/// );
/// assert_eq!(entries.len(), 1);
/// assert_eq!(entries[0].rule, "clock");
/// ```
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_owned(),
            path: path.to_owned(),
            snippet: snippet.trim().to_owned(),
        });
    }
    entries
}

/// True when an in-line `// teeve-check: allow(<rule>)` marker covers the
/// finding (same raw line or the line directly above).
fn suppressed_inline(file: &SourceFile, finding: &Finding) -> bool {
    let marker = format!("teeve-check: allow({})", finding.rule);
    let idx = finding.line - 1;
    let same = file.raw_lines.get(idx).is_some_and(|l| l.contains(&marker));
    // The line above only counts when it is a standalone comment, so a
    // trailing marker never leaks onto the next line.
    let above = idx > 0
        && file
            .raw_lines
            .get(idx - 1)
            .is_some_and(|l| l.trim_start().starts_with("//") && l.contains(&marker));
    same || above
}

/// True when the checked-in allowlist covers the finding.
fn allowlisted(entries: &[AllowEntry], file: &SourceFile, finding: &Finding) -> bool {
    entries.iter().any(|e| {
        e.rule == finding.rule
            && finding.path.contains(&e.path)
            && file
                .raw_lines
                .get(finding.line - 1)
                .is_some_and(|l| l.contains(&e.snippet))
    })
}

/// The lint pass result.
#[derive(Debug)]
pub struct LintReport {
    /// Findings that survived suppression and the allowlist — each one
    /// fails the gate.
    pub findings: Vec<Finding>,
    /// Findings silenced by an in-line marker or an allowlist entry
    /// (reported for transparency, not failures).
    pub suppressed: usize,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Filters raw findings through in-line suppressions and the allowlist,
/// producing the report both lint passes share.
fn filter_report(files: &[SourceFile], entries: &[AllowEntry], raw: Vec<Finding>) -> LintReport {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for finding in raw {
        let file = files.iter().find(|f| f.rel == finding.path);
        let silenced = file
            .is_some_and(|f| suppressed_inline(f, &finding) || allowlisted(entries, f, &finding));
        if silenced {
            suppressed += 1;
        } else {
            findings.push(finding);
        }
    }
    LintReport {
        findings,
        suppressed,
        files_scanned: files.len(),
    }
}

fn load_allowlist(root: &Path) -> Vec<AllowEntry> {
    let allow_text =
        fs::read_to_string(root.join("crates/check/teeve-check.allow")).unwrap_or_default();
    parse_allowlist(&allow_text)
}

/// Runs the full lint pass over the workspace at `root`, loading the
/// allowlist from `crates/check/teeve-check.allow` when present.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading sources.
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let files = collect_sources(root)?;
    let entries = load_allowlist(root);
    let raw = run_all(&files);
    Ok(filter_report(&files, &entries, raw))
}

/// Runs the lock-discipline pass (see [`locks`](self)) over the
/// workspace at `root`, with the same suppression and allowlist workflow
/// as [`run_lint`].
///
/// # Errors
///
/// Propagates I/O errors from walking or reading sources.
pub fn run_locks(root: &Path) -> io::Result<LintReport> {
    let files = collect_sources(root)?;
    let entries = load_allowlist(root);
    let raw = run_locks_rules(&files);
    Ok(filter_report(&files, &entries, raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(rel: &str, src: &str) -> SourceFile {
        let clean = strip_comments_and_strings(src);
        SourceFile {
            rel: rel.to_owned(),
            raw_lines: src.lines().map(str::to_owned).collect(),
            clean_lines: clean.lines().map(str::to_owned).collect(),
            test_lines: vec![false; src.lines().count()],
            test_path: false,
        }
    }

    #[test]
    fn inline_suppression_covers_same_and_previous_line() {
        let src = "// teeve-check: allow(net-no-panic)\nx.unwrap();\n\
                   y.unwrap(); // teeve-check: allow(net-no-panic)\nz.unwrap();";
        let file = fake("crates/net/src/f.rs", src);
        let findings = run_all(std::slice::from_ref(&file));
        assert_eq!(findings.len(), 3);
        let silenced: Vec<bool> = findings
            .iter()
            .map(|f| suppressed_inline(&file, f))
            .collect();
        assert_eq!(silenced, vec![true, true, false]);
    }

    #[test]
    fn allowlist_needs_rule_path_and_snippet_to_match() {
        let file = fake("crates/net/src/f.rs", "x.unwrap();");
        let finding = &run_all(std::slice::from_ref(&file))[0];
        let hit = parse_allowlist("net-no-panic crates/net/src/f.rs x.unwrap()");
        let wrong_rule = parse_allowlist("clock crates/net/src/f.rs x.unwrap()");
        let wrong_snip = parse_allowlist("net-no-panic crates/net/src/f.rs y.unwrap()");
        assert!(allowlisted(&hit, &file, finding));
        assert!(!allowlisted(&wrong_rule, &file, finding));
        assert!(!allowlisted(&wrong_snip, &file, finding));
    }

    #[test]
    fn allowlist_parser_skips_comments_and_blanks() {
        let entries = parse_allowlist("# header\n\n  # indented comment\nclock a b c\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].snippet, "b c");
    }
}
