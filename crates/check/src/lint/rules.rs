//! The repo-invariant lint rules.
//!
//! Each rule is a plain substring/token matcher over the cleaned source
//! view (comments and literals blanked by [`super::source`]); none of
//! them parse Rust. That keeps the gate dependency-free and fast, at the
//! cost of being heuristics — which is why findings can be suppressed
//! in-line or allowlisted (see the crate README).

use super::source::SourceFile;
use super::Finding;

/// No `.unwrap()` / `.expect(` in non-test `crates/net` code: the wire
/// decode, reader-thread, and coordinator paths must turn corrupt frames
/// and dead peers into typed errors, never panics, because a panicking
/// reader thread takes down an RP that other sites still forward through.
pub const RULE_NET_NO_PANIC: &str = "net-no-panic";
/// Every `Message` variant must appear in the encoder, the decoder, and
/// the wire proptest strategy, so a variant cannot be added half-way.
pub const RULE_WIRE_PARITY: &str = "wire-parity";
/// Every length-prefixed count read by the decoder must be bounds-guarded
/// (`checked_mul`, `.min(...)`, or an explicit `len()` comparison) before
/// it sizes an allocation or drives a loop.
pub const RULE_DECODE_BOUNDS: &str = "decode-bounds";
/// No `std::sync::Mutex`/`RwLock` outside `vendor/`: the workspace
/// standardizes on `parking_lot` (no lock poisoning to unwrap around).
pub const RULE_STD_SYNC: &str = "std-sync";
/// No direct `SystemTime::now` outside the sanctioned clock module
/// (`teeve_types::clock`); see the roadmap's clock-skew item.
pub const RULE_CLOCK: &str = "clock";

/// All rules, in the order they run and report.
pub const ALL_RULES: &[&str] = &[
    RULE_NET_NO_PANIC,
    RULE_WIRE_PARITY,
    RULE_DECODE_BOUNDS,
    RULE_STD_SYNC,
    RULE_CLOCK,
];

/// True when `hay` contains `needle` delimited by non-identifier chars.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !hay[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// `net-no-panic`: flags `.unwrap()`/`.expect(` on non-test lines of
/// `crates/net/src`.
pub fn net_no_panic(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !file.rel.starts_with("crates/net/src/") {
            continue;
        }
        for (idx, line) in file.clean_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for token in [".unwrap()", ".expect("] {
                if line.contains(token) {
                    findings.push(Finding::new(
                        RULE_NET_NO_PANIC,
                        &file.rel,
                        idx + 1,
                        format!(
                            "`{token}` in non-test net code; return a typed error \
                             (WireError / ClusterError / io::Error) instead"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// Extracts the variant names of `pub enum Message` from the wire module
/// by brace-depth tracking (variants sit at depth 1 of the enum body).
fn message_variants(wire: &SourceFile) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let Some(start) = wire
        .clean_lines
        .iter()
        .position(|l| l.contains("pub enum Message"))
    else {
        return variants;
    };
    let mut depth = 0i64;
    let mut opened = false;
    for (idx, line) in wire.clean_lines.iter().enumerate().skip(start) {
        if opened && depth == 1 {
            let trimmed = line.trim_start();
            if trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                let name: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                variants.push((name, idx + 1));
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    variants
}

/// Extracts the field names of `pub struct <name>` by brace-depth
/// tracking (fields sit at depth 1 of the struct body).
fn struct_fields(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let marker = format!("pub struct {name}");
    let mut fields = Vec::new();
    let Some(start) = file.clean_lines.iter().position(|l| l.contains(&marker)) else {
        return fields;
    };
    let mut depth = 0i64;
    let mut opened = false;
    for (idx, line) in file.clean_lines.iter().enumerate().skip(start) {
        if opened && depth == 1 {
            let trimmed = line.trim_start().trim_start_matches("pub ");
            if let Some(colon) = trimmed.find(':') {
                let field = trimmed[..colon].trim();
                if !field.is_empty() && field.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    fields.push((field.to_owned(), idx + 1));
                }
            }
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    fields
}

/// Returns the clean text of the body of the first `fn <name>` in `file`
/// (brace-matched), or `None` when absent.
fn fn_body(file: &SourceFile, name: &str) -> Option<String> {
    let marker = format!("fn {name}");
    let start = file.clean_lines.iter().position(|l| {
        l.find(&marker).is_some_and(|at| {
            !l[at + marker.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        })
    })?;
    let mut depth = 0i64;
    let mut opened = false;
    let mut body = String::new();
    for line in &file.clean_lines[start..] {
        body.push_str(line);
        body.push('\n');
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    Some(body)
}

/// `wire-parity`: every `Message` variant appears in `fn encode`, in
/// `fn decode`, and in the wire proptest strategy file — and the
/// `StatsReport` sparse-histogram sub-codec keeps the same three-way
/// parity for every `StreamDelivery` field, including the histogram's
/// sparse representation itself.
pub fn wire_parity(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(wire) = files.iter().find(|f| f.rel == "crates/net/src/wire.rs") else {
        return findings;
    };
    let variants = message_variants(wire);
    if variants.is_empty() {
        findings.push(Finding::new(
            RULE_WIRE_PARITY,
            &wire.rel,
            1,
            "could not locate `pub enum Message` variants".to_owned(),
        ));
        return findings;
    }
    let encode = fn_body(wire, "encode").unwrap_or_default();
    let decode = fn_body(wire, "decode").unwrap_or_default();
    let strategy = files
        .iter()
        .find(|f| f.rel == "crates/net/tests/proptest_wire.rs")
        .map(|f| f.clean_lines.join("\n"))
        .unwrap_or_default();
    for (variant, line) in variants {
        let path = format!("Message::{variant}");
        for (region, text) in [
            ("fn encode", &encode),
            ("fn decode", &decode),
            ("the wire proptest strategy", &strategy),
        ] {
            if !contains_word(text, &path) {
                findings.push(Finding::new(
                    RULE_WIRE_PARITY,
                    &wire.rel,
                    line,
                    format!("`{path}` is missing from {region}"),
                ));
            }
        }
    }

    // The StatsReport sub-codec: every StreamDelivery field must survive
    // the encoder, the decoder, and the proptest strategy, so a stats
    // field cannot be added half-way either.
    let fields = struct_fields(wire, "StreamDelivery");
    if fields.is_empty() {
        findings.push(Finding::new(
            RULE_WIRE_PARITY,
            &wire.rel,
            1,
            "could not locate `pub struct StreamDelivery` fields".to_owned(),
        ));
        return findings;
    }
    let struct_line = fields[0].1;
    for (field, line) in fields {
        for (region, text) in [
            ("fn encode", &encode),
            ("fn decode", &decode),
            ("the wire proptest strategy", &strategy),
        ] {
            if !contains_word(text, &field) {
                findings.push(Finding::new(
                    RULE_WIRE_PARITY,
                    &wire.rel,
                    line,
                    format!("`StreamDelivery::{field}` is missing from {region}"),
                ));
            }
        }
    }
    // The histogram must travel via its sparse representation on both
    // sides, and the strategy must exercise a real LogHistogram — a
    // dense or hand-rolled re-encoding would silently drift.
    for (token, region, text) in [
        ("nonzero_buckets", "fn encode", &encode),
        ("from_parts", "fn decode", &decode),
        ("BUCKETS", "fn decode", &decode),
        ("LogHistogram", "the wire proptest strategy", &strategy),
    ] {
        if !contains_word(text, token) {
            findings.push(Finding::new(
                RULE_WIRE_PARITY,
                &wire.rel,
                struct_line,
                format!("the sparse-histogram sub-codec marker `{token}` is missing from {region}"),
            ));
        }
    }
    findings
}

/// Tokens that read a length-prefixed count off the wire.
const COUNT_SOURCES: &[&str] = &["get_u32_le()", "get_u16_le()", "get_u8()", "from_le_bytes"];
/// Tokens that count as a bounds guard for such a count.
const GUARDS: &[&str] = &["checked_mul", ".min(", "len() <", "len() >=", "> BUCKETS"];
/// How many following lines the guard must appear within.
const GUARD_WINDOW: usize = 10;

/// `decode-bounds`: a `let n = ...get_uXX_le() as usize` style count in
/// `crates/net/src` must see a bounds guard within the next few lines,
/// before anything is allocated or looped on it.
pub fn decode_bounds(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !file.rel.starts_with("crates/net/src/") {
            continue;
        }
        for (idx, line) in file.clean_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            let Some(let_at) = line.find("let ") else {
                continue;
            };
            if !line.contains(" as usize") || !COUNT_SOURCES.iter().any(|t| line.contains(t)) {
                continue;
            }
            let name: String = line[let_at + 4..]
                .trim_start()
                .trim_start_matches("mut ")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let window =
                &file.clean_lines[idx..(idx + 1 + GUARD_WINDOW).min(file.clean_lines.len())];
            let guarded = window.iter().any(|l| GUARDS.iter().any(|g| l.contains(g)));
            if !guarded {
                findings.push(Finding::new(
                    RULE_DECODE_BOUNDS,
                    &file.rel,
                    idx + 1,
                    format!(
                        "wire count `{name}` is not bounds-guarded within {GUARD_WINDOW} lines \
                         (expected checked_mul / .min(..) / a len() comparison)"
                    ),
                ));
            }
        }
    }
    findings
}

/// `std-sync`: the workspace locks with `parking_lot` only (applies to
/// test code too — everything outside `vendor/`).
pub fn std_sync(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for (idx, line) in file.clean_lines.iter().enumerate() {
            let direct = line.contains("std::sync::Mutex") || line.contains("std::sync::RwLock");
            let imported = line.contains("use std::sync::")
                && (contains_word(line, "Mutex") || contains_word(line, "RwLock"));
            if direct || imported {
                findings.push(Finding::new(
                    RULE_STD_SYNC,
                    &file.rel,
                    idx + 1,
                    "std::sync::Mutex/RwLock is banned outside vendor/; use parking_lot".to_owned(),
                ));
            }
        }
    }
    findings
}

/// `clock`: `SystemTime::now` may only appear in the sanctioned clock
/// module (enforced via the checked-in allowlist, which names that
/// module — policy lives in data, not in this scanner).
pub fn clock(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for (idx, line) in file.clean_lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            if line.contains("SystemTime::now") {
                findings.push(Finding::new(
                    RULE_CLOCK,
                    &file.rel,
                    idx + 1,
                    "direct SystemTime::now; use teeve_types::clock::unix_micros() \
                     (the single sanctioned wall-clock module)"
                        .to_owned(),
                ));
            }
        }
    }
    findings
}

/// Runs every rule over the prepared sources.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(net_no_panic(files));
    findings.extend(wire_parity(files));
    findings.extend(decode_bounds(files));
    findings.extend(std_sync(files));
    findings.extend(clock(files));
    findings
}

#[cfg(test)]
mod tests {
    use super::super::source::strip_comments_and_strings;
    use super::*;

    fn fake_file(rel: &str, src: &str) -> SourceFile {
        let clean = strip_comments_and_strings(src);
        SourceFile {
            rel: rel.to_owned(),
            raw_lines: src.lines().map(str::to_owned).collect(),
            clean_lines: clean.lines().map(str::to_owned).collect(),
            test_lines: vec![false; src.lines().count()],
            test_path: rel.split('/').any(|s| s == "tests"),
        }
    }

    #[test]
    fn net_no_panic_flags_unwrap_outside_tests() {
        let files = vec![
            fake_file("crates/net/src/bad.rs", "fn f() { x.unwrap(); }"),
            fake_file("crates/net/tests/ok.rs", "fn f() { x.unwrap(); }"),
            fake_file("crates/sim/src/ok.rs", "fn f() { x.unwrap(); }"),
        ];
        let findings = net_no_panic(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/net/src/bad.rs");
    }

    #[test]
    fn net_no_panic_ignores_unwrap_or() {
        let files = vec![fake_file(
            "crates/net/src/ok.rs",
            "fn f() -> u64 { x.unwrap_or(0) }",
        )];
        assert!(net_no_panic(&files).is_empty());
    }

    /// A minimal wire module + strategy that satisfies both the variant
    /// and the StreamDelivery sub-codec checks.
    fn parity_fixture() -> (String, String) {
        let wire = "pub struct StreamDelivery {\n    pub delivered: u64,\n    \
                    pub latency: LogHistogram,\n}\n\
                    pub enum Message {\n    Hello { site: u32 },\n    Bye,\n}\n\
                    pub fn encode(m: &Message) { match m { Message::Hello{..} => (), \
                    Message::Bye => () }\n    \
                    let _ = (entry.delivered, entry.latency.nonzero_buckets()); }\n\
                    pub fn decode() { let _ = Message::Hello { site: 0 };\n    \
                    let _ = Message::Bye;\n    if nonzero > BUCKETS { }\n    \
                    StreamDelivery { delivered, latency: LogHistogram::from_parts(&p, s, lo, hi) } }\n";
        let strategy = "fn arb() { (Message::Hello { site: 1 }, Message::Bye); \
                        StreamDelivery { delivered: 1, latency: LogHistogram::new() } }";
        (wire.to_owned(), strategy.to_owned())
    }

    #[test]
    fn wire_parity_passes_the_compliant_fixture() {
        let (wire, strategy) = parity_fixture();
        let files = vec![
            fake_file("crates/net/src/wire.rs", &wire),
            fake_file("crates/net/tests/proptest_wire.rs", &strategy),
        ];
        assert_eq!(wire_parity(&files), vec![], "fixture should be clean");
    }

    #[test]
    fn wire_parity_catches_a_variant_missing_from_decode() {
        let (wire, strategy) = parity_fixture();
        let wire = wire.replace("let _ = Message::Bye;\n", "");
        let files = vec![
            fake_file("crates/net/src/wire.rs", &wire),
            fake_file("crates/net/tests/proptest_wire.rs", &strategy),
        ];
        let findings = wire_parity(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Message::Bye"));
        assert!(findings[0].message.contains("fn decode"));
    }

    #[test]
    fn wire_parity_catches_a_delivery_field_missing_from_the_strategy() {
        let (wire, strategy) = parity_fixture();
        let strategy = strategy.replace("delivered: 1,", "");
        let files = vec![
            fake_file("crates/net/src/wire.rs", &wire),
            fake_file("crates/net/tests/proptest_wire.rs", &strategy),
        ];
        let findings = wire_parity(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("`StreamDelivery::delivered` is missing from the wire proptest strategy"));
    }

    #[test]
    fn wire_parity_requires_the_sparse_histogram_markers() {
        let (wire, strategy) = parity_fixture();
        let wire = wire.replace(".nonzero_buckets()", ".dense_buckets()");
        let files = vec![
            fake_file("crates/net/src/wire.rs", &wire),
            fake_file("crates/net/tests/proptest_wire.rs", &strategy),
        ];
        let findings = wire_parity(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("nonzero_buckets"));
        assert!(findings[0].message.contains("fn encode"));
    }

    #[test]
    fn decode_bounds_flags_unguarded_counts() {
        let bad = "fn d(body: &mut Bytes) {\n    let count = body.get_u32_le() as usize;\n    \
                   let mut v = Vec::with_capacity(count);\n}";
        let good = "fn d(body: &mut Bytes) {\n    let count = body.get_u32_le() as usize;\n    \
                    if body.len() < count { return Err(WireError::Truncated); }\n    \
                    let mut v = Vec::with_capacity(count);\n}";
        assert_eq!(
            decode_bounds(&[fake_file("crates/net/src/bad.rs", bad)]).len(),
            1
        );
        assert!(decode_bounds(&[fake_file("crates/net/src/good.rs", good)]).is_empty());
    }

    #[test]
    fn std_sync_flags_imports_and_paths() {
        let files = vec![
            fake_file("crates/x/src/a.rs", "use std::sync::Mutex;"),
            fake_file("crates/x/src/b.rs", "static L: std::sync::RwLock<u8>;"),
            fake_file("crates/x/src/c.rs", "use std::sync::{Arc, mpsc};"),
        ];
        assert_eq!(std_sync(&files).len(), 2);
    }

    #[test]
    fn clock_flags_direct_calls() {
        let files = vec![fake_file(
            "crates/x/src/a.rs",
            "fn now() { let _ = std::time::SystemTime::now(); }",
        )];
        assert_eq!(clock(&files).len(), 1);
    }

    #[test]
    fn contains_word_respects_boundaries() {
        assert!(contains_word("a Message::Ack b", "Message::Ack"));
        assert!(!contains_word("a Message::Acknowledge b", "Message::Ack"));
    }
}
