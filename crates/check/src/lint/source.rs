//! Source preparation for the token-level lint rules.
//!
//! The rules in [`super::rules`] match plain substrings, so everything
//! that could fool a substring match — comments, string/char literals —
//! is blanked out first, preserving line structure exactly (same line
//! count, findings keep real line numbers). A second pass classifies
//! lines as test or non-test code, since most rules only police
//! production paths.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace `.rs` file, prepared for rule matching.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts,
    /// used in findings and allowlist matching).
    pub rel: String,
    /// The file exactly as on disk, split into lines. Suppression
    /// comments are read from here (they live in comments, which the
    /// clean view blanks).
    pub raw_lines: Vec<String>,
    /// The file with comments and string/char literals blanked to
    /// spaces, split into lines; rules match against this view.
    pub clean_lines: Vec<String>,
    /// Per-line flag: true when the line sits inside a `#[cfg(test)]`
    /// item (tracked by brace depth over the clean view).
    pub test_lines: Vec<bool>,
    /// True when the whole file is test-adjacent by location —
    /// `tests/`, `benches/` or `examples/` directories.
    pub test_path: bool,
}

impl SourceFile {
    /// True when line `idx` (0-based) is test code, either by file
    /// location or by sitting inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_path || self.test_lines.get(idx).copied().unwrap_or(false)
    }
}

/// Blanks comments (line, doc, and nested block) and string/char
/// literals (plain, byte, and raw with any `#` count) to spaces, keeping
/// every newline so line numbers survive.
///
/// ```
/// let clean = teeve_check::lint::strip_comments_and_strings(
///     "let a = \"x.unwrap()\"; // .expect(\nb.unwrap();",
/// );
/// assert!(!clean.lines().next().unwrap().contains("unwrap"));
/// assert!(clean.lines().nth(1).unwrap().contains("b.unwrap();"));
/// ```
pub fn strip_comments_and_strings(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0usize;
    // True when the previously emitted char can end an identifier, which
    // rules out `r`/`b` at that position starting a raw/byte string.
    let mut prev_ident = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '/' && next == Some('/') {
            while i < chars.len() && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        if c == '/' && next == Some('*') {
            // Rust block comments nest.
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw and raw-byte strings: r"..", r#".."#, br##".."##, ...
        if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                    }
                    out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                prev_ident = false;
                continue;
            }
            // Not a raw string opener; fall through (`r`/`b` starts an
            // ordinary identifier).
        }
        // Plain and byte strings.
        if c == '"' || (!prev_ident && c == 'b' && next == Some('"')) {
            if c == 'b' {
                out.push(' ');
                i += 1;
            }
            out.push(' '); // opening quote
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '\\' {
                    out.push(' ');
                    if let Some(&e) = chars.get(i + 1) {
                        out.push(if e == '\n' { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Char literals ('a', '\n', b'x') vs lifetimes ('a in types).
        if c == '\'' {
            let n2 = chars.get(i + 2).copied();
            let is_char = matches!(next, Some('\\')) || (next.is_some() && n2 == Some('\''));
            if is_char {
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    if c == '\\' {
                        out.push(' ');
                        if chars.get(i + 1).is_some() {
                            out.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                prev_ident = false;
                continue;
            }
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out
}

/// Marks every line belonging to a `#[cfg(test)]` item by brace-tracking
/// the item that follows the attribute in the clean view.
fn test_line_mask(clean_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; clean_lines.len()];
    let mut i = 0;
    while i < clean_lines.len() {
        if !clean_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < clean_lines.len() {
            mask[j] = true;
            for ch in clean_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            // `#[cfg(test)]` on a brace-less item (a `use`, say).
            if !opened && clean_lines[j].trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Loads one file into the prepared form; `rel` is its workspace-relative
/// path.
pub fn load_source(path: &Path, rel: String) -> io::Result<SourceFile> {
    let raw = fs::read_to_string(path)?;
    let clean = strip_comments_and_strings(&raw);
    let raw_lines: Vec<String> = raw.lines().map(str::to_owned).collect();
    let clean_lines: Vec<String> = clean.lines().map(str::to_owned).collect();
    let test_lines = test_line_mask(&clean_lines);
    let test_path = is_test_path(&rel);
    Ok(SourceFile {
        rel,
        raw_lines,
        clean_lines,
        test_lines,
        test_path,
    })
}

/// Collects every `.rs` file under `root`, excluding `vendor/` (foreign
/// code), `target/`, and dot-directories; sorted by path so runs are
/// deterministic.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            load_source(&p, rel)
        })
        .collect()
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            let top_level = dir == root;
            if name.starts_with('.') || name == "target" || (top_level && name == "vendor") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let clean = strip_comments_and_strings("a /* x.unwrap() */ b // .expect(\nc");
        assert_eq!(clean.lines().count(), 2);
        assert!(!clean.contains("unwrap"));
        assert!(!clean.contains("expect"));
        assert!(clean.contains('a') && clean.contains('b') && clean.contains('c'));
    }

    #[test]
    fn strips_nested_block_comments() {
        let clean = strip_comments_and_strings("x /* a /* b */ c.unwrap() */ y");
        assert!(!clean.contains("unwrap"));
        assert!(clean.contains('x') && clean.contains('y'));
    }

    #[test]
    fn strips_raw_strings_with_hashes() {
        let clean = strip_comments_and_strings("let s = r#\"x \".unwrap()\" y\"#; s.len()");
        assert!(!clean.contains("unwrap"));
        assert!(clean.contains("s.len()"));
    }

    #[test]
    fn preserves_lifetimes_but_blanks_chars() {
        let clean = strip_comments_and_strings("fn f<'a>(x: &'a str, c: char) { let _ = 'x'; }");
        assert!(clean.contains("<'a>"));
        assert!(clean.contains("&'a str"));
        assert!(!clean.contains("'x'"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let clean = strip_comments_and_strings(r#"let s = "a \" b.unwrap()"; t()"#);
        assert!(!clean.contains("unwrap"));
        assert!(clean.contains("t()"));
    }

    #[test]
    fn string_lines_are_preserved() {
        let src = "let s = \"line one\nline two\";\nafter();";
        let clean = strip_comments_and_strings(src);
        assert_eq!(clean.lines().count(), 3);
        assert!(clean.lines().nth(2).unwrap().contains("after();"));
    }

    #[test]
    fn cfg_test_mask_covers_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn live2() {}\n";
        let clean: Vec<String> = strip_comments_and_strings(src)
            .lines()
            .map(str::to_owned)
            .collect();
        let mask = test_line_mask(&clean);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_paths_are_recognized() {
        assert!(is_test_path("crates/net/tests/proptest_wire.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(is_test_path("crates/bench/benches/overlay.rs"));
        assert!(!is_test_path("crates/net/src/wire.rs"));
    }
}
