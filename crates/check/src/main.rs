//! CLI for the `teeve-check` gate:
//! `cargo run --release -p teeve-check -- <lint|model|all>`.
//!
//! Exit status 0 means the gate passed; 1 means lint findings survived
//! suppression/allowlisting, an invariant violation was found, a seeded
//! mutation went undetected, or the exploration was truncated; 2 means
//! usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use teeve_check::lint;
use teeve_check::model::{self, ModelReport, Mutation};

fn workspace_root() -> PathBuf {
    // crates/check/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn run_lint() -> bool {
    let root = workspace_root();
    println!("teeve-check lint: scanning {}", root.display());
    let report = match lint::run_lint(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint failed to scan sources: {e}");
            return false;
        }
    };
    println!(
        "  {} files scanned, {} finding(s), {} suppressed/allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    for finding in &report.findings {
        println!("  {finding}");
    }
    if report.findings.is_empty() {
        println!("lint: PASS");
        true
    } else {
        println!(
            "lint: FAIL — fix the sites above, add `// teeve-check: allow(<rule>)`, or \
             allowlist them in crates/check/teeve-check.allow (see crates/check/README.md)"
        );
        false
    }
}

fn print_report(label: &str, report: &ModelReport, elapsed_ms: u128) {
    println!(
        "  {label}: {} states, {} transitions, {elapsed_ms} ms{}",
        report.states,
        report.transitions,
        if report.truncated { " (TRUNCATED)" } else { "" },
    );
}

fn run_model() -> bool {
    println!("teeve-check model: exhaustive dictation-protocol check");
    let mut ok = true;
    let mut total_states = 0usize;
    let mut total_transitions = 0u64;

    println!("healthy machine across bounded scopes:");
    for cfg in model::default_sweep() {
        let start = Instant::now();
        let report = model::explore(&cfg, Mutation::None);
        print_report(&cfg.describe(), &report, start.elapsed().as_millis());
        total_states += report.states;
        total_transitions += report.transitions;
        if let Some(cex) = &report.violation {
            println!("{cex}");
            ok = false;
        }
        if report.truncated {
            println!(
                "  scope truncated at {} states — shrink it or raise max_states",
                cfg.max_states
            );
            ok = false;
        }
    }
    println!("total: {total_states} deduplicated states, {total_transitions} transitions");

    println!("seeded-mutation self-tests (each must be caught):");
    for &mutation in model::MUTATIONS {
        let cfg = model::mutation_scope(mutation);
        let start = Instant::now();
        let report = model::explore(&cfg, mutation);
        print_report(
            &format!("{mutation} ({})", cfg.describe()),
            &report,
            start.elapsed().as_millis(),
        );
        match report.violation {
            Some(cex) if cex.invariant == mutation.target_invariant() => {
                println!("  caught as expected:");
                for line in cex.to_string().lines() {
                    println!("    {line}");
                }
            }
            Some(cex) => {
                println!(
                    "  caught, but by `{}` instead of `{}`:\n{cex}",
                    cex.invariant,
                    mutation.target_invariant()
                );
                ok = false;
            }
            None => {
                println!(
                    "  NOT DETECTED — the `{}` invariant check is blind to its seeded bug",
                    mutation.target_invariant()
                );
                ok = false;
            }
        }
    }

    println!("model: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let ok = match mode.as_str() {
        "lint" => run_lint(),
        "model" => run_model(),
        "all" => {
            let lint_ok = run_lint();
            let model_ok = run_model();
            lint_ok && model_ok
        }
        _ => {
            eprintln!("usage: teeve-check <lint|model|all>");
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
