//! CLI for the `teeve-check` gate:
//! `cargo run --release -p teeve-check -- <lint|locks|model|all> [--json <path>] [--resync]`.
//!
//! Exit status 0 means the gate passed; 1 means lint/lock findings
//! survived suppression/allowlisting, an invariant violation was found,
//! a seeded mutation went undetected, or the exploration was truncated;
//! 2 means usage error.
//!
//! `--json <path>` (lint/locks/all) additionally writes the surviving
//! findings as a JSON document for CI annotation tooling. `--resync`
//! (model/all) restricts the model sweep to the coordinator-crash scopes
//! and the resync mutations — the timeboxed CI step.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use teeve_check::lint::{self, LintReport};
use teeve_check::model::{self, ModelReport, Mutation};

fn workspace_root() -> PathBuf {
    // crates/check/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn print_lint_report(label: &str, report: &LintReport) -> bool {
    println!(
        "  {} files scanned, {} finding(s), {} suppressed/allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    for finding in &report.findings {
        println!("  {finding}");
    }
    if report.findings.is_empty() {
        println!("{label}: PASS");
        true
    } else {
        println!(
            "{label}: FAIL — fix the sites above, add `// teeve-check: allow(<rule>)`, or \
             allowlist them in crates/check/teeve-check.allow (see crates/check/README.md)"
        );
        false
    }
}

fn run_lint() -> Option<LintReport> {
    let root = workspace_root();
    println!("teeve-check lint: scanning {}", root.display());
    match lint::run_lint(&root) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("lint failed to scan sources: {e}");
            None
        }
    }
}

fn run_locks() -> Option<LintReport> {
    let root = workspace_root();
    println!(
        "teeve-check locks: lock-discipline analysis of {}",
        root.display()
    );
    match lint::run_locks(&root) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("locks failed to scan sources: {e}");
            None
        }
    }
}

/// Minimal JSON string escaping (the findings contain no exotic content,
/// but backticks, quotes, and backslashes must survive).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the lint/locks reports as the CI annotation document:
/// one object per pass with its counts and surviving findings.
fn reports_to_json(reports: &[(&str, &LintReport)]) -> String {
    let mut out = String::from("{\n");
    for (i, (label, report)) in reports.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\n    \"files_scanned\": {},\n    \"suppressed\": {},\n    \
             \"findings\": [\n",
            json_escape(label),
            report.files_scanned,
            report.suppressed
        ));
        for (j, f) in report.findings.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                json_escape(f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message),
                if j + 1 < report.findings.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]\n  }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push('}');
    out.push('\n');
    out
}

fn print_report(label: &str, report: &ModelReport, elapsed_ms: u128) {
    println!(
        "  {label}: {} states, {} transitions, {elapsed_ms} ms{}",
        report.states,
        report.transitions,
        if report.truncated { " (TRUNCATED)" } else { "" },
    );
}

fn run_model(resync_only: bool) -> bool {
    if resync_only {
        println!("teeve-check model: reconnect/resync scopes only");
    } else {
        println!("teeve-check model: exhaustive dictation-protocol check");
    }
    let mut ok = true;
    let mut total_states = 0usize;
    let mut total_transitions = 0u64;

    println!("healthy machine across bounded scopes:");
    let sweep = model::default_sweep()
        .into_iter()
        .filter(|cfg| !resync_only || cfg.reconnects > 0);
    for cfg in sweep {
        let start = Instant::now();
        let report = model::explore(&cfg, Mutation::None);
        print_report(&cfg.describe(), &report, start.elapsed().as_millis());
        total_states += report.states;
        total_transitions += report.transitions;
        if let Some(cex) = &report.violation {
            println!("{cex}");
            ok = false;
        }
        if report.truncated {
            println!(
                "  scope truncated at {} states — shrink it or raise max_states",
                cfg.max_states
            );
            ok = false;
        }
    }
    println!("total: {total_states} deduplicated states, {total_transitions} transitions");

    println!("seeded-mutation self-tests (each must be caught):");
    let mutations = model::MUTATIONS
        .iter()
        .copied()
        .filter(|m| !resync_only || model::mutation_scope(*m).reconnects > 0);
    for mutation in mutations {
        let cfg = model::mutation_scope(mutation);
        let start = Instant::now();
        let report = model::explore(&cfg, mutation);
        print_report(
            &format!("{mutation} ({})", cfg.describe()),
            &report,
            start.elapsed().as_millis(),
        );
        match report.violation {
            Some(cex) if cex.invariant == mutation.target_invariant() => {
                println!("  caught as expected:");
                for line in cex.to_string().lines() {
                    println!("    {line}");
                }
            }
            Some(cex) => {
                println!(
                    "  caught, but by `{}` instead of `{}`:\n{cex}",
                    cex.invariant,
                    mutation.target_invariant()
                );
                ok = false;
            }
            None => {
                println!(
                    "  NOT DETECTED — the `{}` invariant check is blind to its seeded bug",
                    mutation.target_invariant()
                );
                ok = false;
            }
        }
    }

    println!("model: {}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn usage() -> ExitCode {
    eprintln!("usage: teeve-check <lint|locks|model|all> [--json <path>] [--resync]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        return usage();
    };
    let mut json_path: Option<PathBuf> = None;
    let mut resync_only = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--json" => match rest.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--resync" => resync_only = true,
            _ => return usage(),
        }
    }

    let mut reports: Vec<(&str, LintReport)> = Vec::new();
    let mut ok = true;
    let absorb = |label: &'static str,
                  report: Option<LintReport>,
                  reports: &mut Vec<(&str, LintReport)>,
                  ok: &mut bool| {
        match report {
            Some(report) => {
                *ok &= print_lint_report(label, &report);
                reports.push((label, report));
            }
            None => *ok = false,
        }
    };
    match mode.as_str() {
        "lint" => absorb("lint", run_lint(), &mut reports, &mut ok),
        "locks" => absorb("locks", run_locks(), &mut reports, &mut ok),
        "model" => ok = run_model(resync_only),
        "all" => {
            absorb("lint", run_lint(), &mut reports, &mut ok);
            absorb("locks", run_locks(), &mut reports, &mut ok);
            ok &= run_model(resync_only);
        }
        _ => return usage(),
    }
    if let Some(path) = json_path {
        let borrowed: Vec<(&str, &LintReport)> = reports.iter().map(|(l, r)| (*l, r)).collect();
        if let Err(e) = std::fs::write(&path, reports_to_json(&borrowed)) {
            eprintln!("failed to write JSON findings to {}: {e}", path.display());
            ok = false;
        } else {
            println!("JSON findings written to {}", path.display());
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
