//! An exhaustive, bounded model checker for the Coordinator ↔ RpNode
//! dictation protocol.
//!
//! The abstract machine mirrors the semantics of `crates/net`'s
//! `node.rs`/`coordinator.rs` (PRs 2–6) at small scope — 2–4 RPs, 2–3
//! dictated revisions, with message reordering always on and message
//! drop/duplication switchable:
//!
//! * the coordinator dictates revision `r+1` only once every RP has
//!   acknowledged revision `r` (the ack barrier, so at most two
//!   consecutive revisions are ever live);
//! * an RP applies a `Reconfigure` iff its revision is `>=` the table it
//!   runs ([`swap_table`], the exact rule `node.rs` uses — wholesale
//!   replace, never merge) and *always* acknowledges, so coordinator
//!   retries converge;
//! * an unfinished ack barrier may time out at any moment, **poisoning**
//!   the coordinator: no further dictation, ever.
//!
//! Scopes with a reconnect budget ([`ModelConfig::with_crash`]) add rung
//! 1 of the resilience ladder — modeled *before* it is built, so the
//! reconnect implementation has a verified shape to conform to:
//!
//! * the coordinator may **crash** at any moment, killing its sockets:
//!   coordinator-inbound messages in flight (`Ack`, `ResyncReply`) are
//!   lost, RP-inbound messages survive in kernel buffers, and RPs keep
//!   forwarding on their last-applied table;
//! * on **reconnect** the coordinator knows nothing: it queries every RP
//!   (`ResyncQuery`/`ResyncReply`) to rebuild its view of the fleet;
//! * once every RP has replied, the coordinator **re-dictates its
//!   current revision as a fresh ack barrier** rather than trusting the
//!   replies — a backlog `Reconfigure` delivered after a reply was sent
//!   would otherwise silently invalidate the view;
//! * the coordinator may not dictate while crashed or resyncing.
//!
//! Exploration is a breadth-first walk with exact state dedup (hashing
//! canonicalized states); every transition and every discovered state is
//! checked against the eight protocol invariants (five dictation, three
//! resync), and the first violation is reported as a shortest-path
//! counterexample trace. Each invariant has a seeded [`Mutation`] — a
//! deliberate bug in the abstract machine — whose detection proves the
//! checker can actually see that class of failure.

mod plans;

use std::collections::{HashMap, VecDeque};
use std::fmt;

pub use plans::{check_acyclic, check_quality, parent_of, rung_of, stream_origins};

/// The RP-side table application rule, shared verbatim between the
/// abstract model, the conformance proptest, and (semantically)
/// `node.rs`: a revision-tagged table replaces the current one iff its
/// revision is not older; stale tables are ignored. Returns whether the
/// table was applied. The caller acks **regardless** — re-acking a
/// stale revision is what lets coordinator retries converge.
///
/// ```
/// use teeve_check::model::swap_table;
/// let mut table = (3u64, "rev3");
/// assert!(swap_table(&mut table, 4, "rev4"));   // newer: applied
/// assert!(!swap_table(&mut table, 2, "rev2"));  // stale: ignored
/// assert!(swap_table(&mut table, 4, "rev4'")); // replay: re-applied
/// assert_eq!(table, (4, "rev4'"));
/// ```
pub fn swap_table<R: Ord, T>(current: &mut (R, T), revision: R, table: T) -> bool {
    if revision >= current.0 {
        *current = (revision, table);
        true
    } else {
        false
    }
}

/// A seeded invariant-breaking bug. [`Mutation::None`] is the faithful
/// machine; each other variant sabotages exactly one rule so the
/// corresponding invariant's self-test can prove the checker catches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The faithful abstract machine.
    None,
    /// RPs apply every `Reconfigure` unconditionally — a duplicated stale
    /// table rolls the revision back (breaks `revision-monotone`).
    RevisionRollback,
    /// RPs acknowledge one revision beyond the one delivered (breaks
    /// `ack-valid`).
    PhantomAck,
    /// The coordinator's timeout path dictates again instead of staying
    /// poisoned (breaks `poison-absorbing`).
    DictateAfterPoison,
    /// RPs re-encode frames at their planned rung, discarding the
    /// incoming tag (breaks `quality-monotone`).
    QualityUpgrade,
    /// The plan family reverses interior edges between consecutive
    /// revisions (breaks `acyclic-forwarding`).
    EdgeReversal,
    /// RPs stop forwarding the moment the coordinator connection dies,
    /// instead of serving their last-applied table through the outage
    /// (breaks `resync-continuity`).
    DisconnectWipe,
    /// The reconnected coordinator trusts its resync replies outright —
    /// no re-dictation barrier — so an in-flight pre-crash `Reconfigure`
    /// can invalidate its view after the reply was sent (breaks
    /// `resync-view`).
    ResyncSkip,
    /// The reconnected coordinator resumes from the *minimum* revision
    /// its resync replies report, rolling its dictation watermark back
    /// (breaks `reconnect-regression`).
    ReconnectRewind,
}

/// Every seeded mutation, in invariant order.
pub const MUTATIONS: &[Mutation] = &[
    Mutation::RevisionRollback,
    Mutation::PhantomAck,
    Mutation::DictateAfterPoison,
    Mutation::QualityUpgrade,
    Mutation::EdgeReversal,
    Mutation::DisconnectWipe,
    Mutation::ResyncSkip,
    Mutation::ReconnectRewind,
];

impl Mutation {
    /// The invariant this mutation is seeded to violate.
    pub fn target_invariant(self) -> &'static str {
        match self {
            Mutation::None => "(none)",
            Mutation::RevisionRollback => "revision-monotone",
            Mutation::PhantomAck => "ack-valid",
            Mutation::DictateAfterPoison => "poison-absorbing",
            Mutation::QualityUpgrade => "quality-monotone",
            Mutation::EdgeReversal => "acyclic-forwarding",
            Mutation::DisconnectWipe => "resync-continuity",
            Mutation::ResyncSkip => "resync-view",
            Mutation::ReconnectRewind => "reconnect-regression",
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One bounded exploration scope.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Fleet size (2–4 keeps exhaustive exploration tractable).
    pub rps: usize,
    /// How many revisions the coordinator dictates beyond the initial
    /// revision 0 the fleet boots with.
    pub revisions: u8,
    /// Whether the network may silently drop a message.
    pub drops: bool,
    /// Whether the network may duplicate a message.
    pub duplicates: bool,
    /// Total duplication budget per run (bounds the state space).
    pub max_dups: u8,
    /// How many times the coordinator may crash and reconnect (0 keeps
    /// the legacy crash-free machine and its exact state space).
    pub reconnects: u8,
    /// Exploration safety valve; hitting it marks the report truncated.
    pub max_states: usize,
}

impl ModelConfig {
    /// A scope with reordering only (BFS interleaves all deliveries).
    pub fn new(rps: usize, revisions: u8) -> ModelConfig {
        ModelConfig {
            rps,
            revisions,
            drops: false,
            duplicates: false,
            max_dups: 2,
            reconnects: 0,
            max_states: 2_000_000,
        }
    }

    /// Enables message drops.
    pub fn with_drops(mut self) -> ModelConfig {
        self.drops = true;
        self
    }

    /// Enables message duplication (budget [`ModelConfig::max_dups`]).
    pub fn with_duplicates(mut self) -> ModelConfig {
        self.duplicates = true;
        self
    }

    /// Enables coordinator crash/reconnect with the given budget.
    pub fn with_crash(mut self, reconnects: u8) -> ModelConfig {
        self.reconnects = reconnects;
        self
    }

    /// A one-line description for progress output.
    pub fn describe(&self) -> String {
        let mut faults = Vec::new();
        if self.drops {
            faults.push("drop");
        }
        if self.duplicates {
            faults.push("dup");
        }
        if self.reconnects > 0 {
            faults.push("crash");
        }
        if faults.is_empty() {
            faults.push("reorder-only");
        }
        format!(
            "rps={} revisions={} faults={}",
            self.rps,
            self.revisions,
            faults.join("+")
        )
    }
}

/// A control-plane message in flight. The network is a multiset: any
/// in-flight message may be delivered next (reordering is implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Msg {
    /// Coordinator -> RP: install the table of `rev`.
    Reconfigure { dst: u8, rev: u8 },
    /// RP -> coordinator: `src` runs (at least) `rev`.
    Ack { src: u8, rev: u8 },
    /// Reconnected coordinator -> RP: report your applied revision.
    ResyncQuery { dst: u8 },
    /// RP -> coordinator: `src` currently runs `rev`.
    ResyncReply { src: u8, rev: u8 },
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Reconfigure { dst, rev } => write!(f, "Reconfigure(rev {rev}) to rp{dst}"),
            Msg::Ack { src, rev } => write!(f, "Ack(rev {rev}) from rp{src}"),
            Msg::ResyncQuery { dst } => write!(f, "ResyncQuery to rp{dst}"),
            Msg::ResyncReply { src, rev } => write!(f, "ResyncReply(rev {rev}) from rp{src}"),
        }
    }
}

/// One global state of the abstract machine. `net` is kept sorted so the
/// multiset has one canonical form and dedup is exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Per-RP applied table revision (the abstract forwarding table is a
    /// pure function of this — see [`plans`]).
    rp_rev: Vec<u8>,
    /// Per-RP highest `Reconfigure` revision ever delivered (what the RP
    /// may legitimately acknowledge).
    seen_max: Vec<u8>,
    /// Coordinator: which RPs acked the currently dictated revision.
    acked: Vec<bool>,
    /// Coordinator: highest revision dictated so far.
    dictated: u8,
    /// Coordinator: a failed ack barrier poisoned it.
    poisoned: bool,
    /// Count of dictations issued while poisoned (the `poison-absorbing`
    /// invariant says this stays 0).
    post_poison_dictations: u8,
    /// Duplication budget consumed.
    dups_used: u8,
    /// Coordinator connection is down (its sockets are dead).
    crashed: bool,
    /// The reconnected coordinator is still collecting resync replies.
    resyncing: bool,
    /// Coordinator's post-resync view of each RP's revision (`None`
    /// until that RP's reply arrives; updated by later acks).
    view: Vec<Option<u8>>,
    /// Crash/reconnect budget consumed.
    reconnects_used: u8,
    /// Per-RP data plane still forwarding (the `resync-continuity`
    /// invariant says this stays all-true through coordinator absence).
    serving: Vec<bool>,
    /// High-water mark of [`State::dictated`] (the
    /// `reconnect-regression` invariant says `dictated` never falls
    /// below it).
    max_dictated: u8,
    /// Messages in flight (sorted multiset).
    net: Vec<Msg>,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        State {
            rp_rev: vec![0; cfg.rps],
            seen_max: vec![0; cfg.rps],
            // Revision 0 is the connect barrier the fleet booted through.
            acked: vec![true; cfg.rps],
            dictated: 0,
            poisoned: false,
            post_poison_dictations: 0,
            dups_used: 0,
            crashed: false,
            resyncing: false,
            view: vec![None; cfg.rps],
            reconnects_used: 0,
            serving: vec![true; cfg.rps],
            max_dictated: 0,
            net: Vec::new(),
        }
    }

    fn normalize(&mut self) {
        self.net.sort_unstable();
    }

    fn remove(&mut self, msg: Msg) {
        if let Some(pos) = self.net.iter().position(|&m| m == msg) {
            self.net.remove(pos);
        }
    }

    fn all_acked(&self) -> bool {
        self.acked.iter().all(|&a| a)
    }

    fn summary(&self) -> String {
        let net: Vec<String> = self.net.iter().map(Msg::to_string).collect();
        let crash = if self.reconnects_used > 0 || self.crashed {
            let view: Vec<String> = self
                .view
                .iter()
                .map(|v| v.map_or("?".to_owned(), |r| r.to_string()))
                .collect();
            format!(
                ", crashed {}, resyncing {}, view [{}]",
                self.crashed,
                self.resyncing,
                view.join(", ")
            )
        } else {
            String::new()
        };
        format!(
            "rp revisions {:?}, dictated {}, acked {:?}, poisoned {}{crash}, in flight [{}]",
            self.rp_rev,
            self.dictated,
            self.acked,
            self.poisoned,
            net.join(", ")
        )
    }
}

/// An invariant violation, before trace reconstruction.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which of the eight invariants broke.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

/// A violation with the shortest action trace reaching it from the
/// initial state (BFS order makes it minimal in steps).
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// What exactly went wrong.
    pub detail: String,
    /// The actions from the initial state to the violation, in order.
    pub trace: Vec<String>,
    /// A dump of the violating state.
    pub state: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant violated: {} — {}",
            self.invariant, self.detail
        )?;
        writeln!(f, "counterexample trace ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {step}", i + 1)?;
        }
        write!(f, "final state: {}", self.state)
    }
}

/// The result of exploring one [`ModelConfig`].
#[derive(Debug)]
pub struct ModelReport {
    /// Deduplicated states discovered.
    pub states: usize,
    /// Transitions taken (successor evaluations).
    pub transitions: u64,
    /// True when `max_states` stopped the walk early.
    pub truncated: bool,
    /// The first invariant violation, if any.
    pub violation: Option<Counterexample>,
}

struct Succ {
    action: String,
    state: State,
    violation: Option<Violation>,
}

fn successors(cfg: &ModelConfig, mutation: Mutation, s: &State) -> Vec<Succ> {
    let mut out = Vec::new();

    // Dictate the next revision once the previous barrier completed. The
    // DictateAfterPoison mutant treats a poisoned (abandoned) barrier as
    // license to continue — the exact bug poisoning exists to prevent.
    // A crashed or still-resyncing coordinator may not dictate at all.
    let next_rev = s.dictated + 1;
    if next_rev <= cfg.revisions && !s.crashed && !s.resyncing {
        let barrier_open = if mutation == Mutation::DictateAfterPoison {
            s.all_acked() || s.poisoned
        } else {
            s.all_acked() && !s.poisoned
        };
        if barrier_open {
            // After a reconnect the coordinator may only dictate on a
            // view that matches reality — the `resync-view` invariant.
            let view_violation = (s.reconnects_used > 0)
                .then(|| {
                    (0..cfg.rps).find_map(|i| {
                        (s.view[i] != Some(s.rp_rev[i])).then(|| Violation {
                            invariant: "resync-view",
                            detail: format!(
                                "coordinator dictated revision {next_rev} while its \
                                 post-resync view of rp{i} ({}) disagrees with the real \
                                 revision {}",
                                s.view[i].map_or("unknown".to_owned(), |v| v.to_string()),
                                s.rp_rev[i]
                            ),
                        })
                    })
                })
                .flatten();
            let mut n = s.clone();
            n.dictated = next_rev;
            n.max_dictated = n.max_dictated.max(next_rev);
            n.acked = vec![false; cfg.rps];
            for dst in 0..cfg.rps {
                n.net.push(Msg::Reconfigure {
                    dst: dst as u8,
                    rev: next_rev,
                });
            }
            if s.poisoned {
                n.post_poison_dictations += 1;
            }
            n.normalize();
            out.push(Succ {
                action: format!("Dictate revision {next_rev} (Reconfigure to every RP)"),
                state: n,
                violation: view_violation,
            });
        }
    }

    // An unfinished barrier may time out at any moment (timeouts race
    // with in-flight messages), poisoning the coordinator. No timeout
    // runs while the coordinator is down or mid-resync (the reconnect
    // path resets the barrier itself).
    if !s.poisoned && s.dictated > 0 && !s.all_acked() && !s.crashed && !s.resyncing {
        let mut n = s.clone();
        n.poisoned = true;
        out.push(Succ {
            action: "Poison (ack barrier timed out)".to_owned(),
            state: n,
            violation: None,
        });
    }

    // The coordinator connection may die at any moment (within budget).
    // Its sockets go with it: coordinator-inbound messages in flight are
    // lost; RP-inbound messages survive in the RPs' kernel buffers. The
    // DisconnectWipe mutant also stops the RP data planes — the exact
    // bug `resync-continuity` exists to catch.
    if !s.crashed && !s.poisoned && s.reconnects_used < cfg.reconnects {
        let mut n = s.clone();
        n.crashed = true;
        n.resyncing = false;
        n.reconnects_used += 1;
        n.net
            .retain(|m| matches!(m, Msg::Reconfigure { .. } | Msg::ResyncQuery { .. }));
        if mutation == Mutation::DisconnectWipe {
            n.serving = vec![false; cfg.rps];
        }
        out.push(Succ {
            action: "Crash (coordinator connection lost)".to_owned(),
            state: n,
            violation: None,
        });
    }

    // Reconnect: the coordinator remembers its dictation watermark but
    // knows nothing about the fleet — it opens a resync round, querying
    // every RP before it may dictate again.
    if s.crashed {
        let mut n = s.clone();
        n.crashed = false;
        n.resyncing = true;
        n.view = vec![None; cfg.rps];
        n.acked = vec![false; cfg.rps];
        for dst in 0..cfg.rps {
            n.net.push(Msg::ResyncQuery { dst: dst as u8 });
        }
        n.normalize();
        out.push(Succ {
            action: "Reconnect (resync queries to every RP)".to_owned(),
            state: n,
            violation: None,
        });
    }

    // Resync completes once every RP has replied. The faithful machine
    // re-dictates its current revision as a fresh ack barrier — a reply
    // only describes the RP at the moment it was sent, and a backlog
    // `Reconfigure` may land after it. The ResyncSkip mutant trusts the
    // replies outright; the ReconnectRewind mutant resumes from the
    // minimum replied revision, rolling the watermark back.
    if s.resyncing && s.view.iter().all(Option::is_some) {
        let mut n = s.clone();
        n.resyncing = false;
        match mutation {
            Mutation::ResyncSkip => {
                n.acked = vec![true; cfg.rps];
                out.push(Succ {
                    action: "Resync complete (trust replies, no re-dictation)".to_owned(),
                    state: n,
                    violation: None,
                });
            }
            Mutation::ReconnectRewind => {
                let floor = n.view.iter().map(|v| v.unwrap_or(0)).min().unwrap_or(0);
                n.dictated = floor;
                n.acked = vec![false; cfg.rps];
                for dst in 0..cfg.rps {
                    n.net.push(Msg::Reconfigure {
                        dst: dst as u8,
                        rev: floor,
                    });
                }
                n.normalize();
                out.push(Succ {
                    action: format!("Resync complete (rewind to revision {floor})"),
                    state: n,
                    violation: None,
                });
            }
            _ => {
                let rev = n.dictated;
                n.acked = vec![false; cfg.rps];
                for dst in 0..cfg.rps {
                    n.net.push(Msg::Reconfigure {
                        dst: dst as u8,
                        rev,
                    });
                }
                n.normalize();
                out.push(Succ {
                    action: format!("Resync complete (re-dictate revision {rev} as the barrier)"),
                    state: n,
                    violation: None,
                });
            }
        }
    }

    // Deliver / drop / duplicate each distinct in-flight message.
    let mut seen = Vec::new();
    for &msg in &s.net {
        if seen.contains(&msg) {
            continue;
        }
        seen.push(msg);

        match msg {
            Msg::Reconfigure { dst, rev } => {
                let d = dst as usize;
                let mut n = s.clone();
                n.remove(msg);
                n.seen_max[d] = n.seen_max[d].max(rev);
                let before = n.rp_rev[d];
                let applied = if mutation == Mutation::RevisionRollback {
                    n.rp_rev[d] = rev; // unconditional apply: the seeded bug
                    true
                } else {
                    let mut table = (n.rp_rev[d], ());
                    let applied = swap_table(&mut table, rev, ());
                    n.rp_rev[d] = table.0;
                    applied
                };
                let ack_rev = if mutation == Mutation::PhantomAck {
                    rev + 1 // acknowledge a revision never delivered
                } else {
                    rev
                };
                // The ack rides the coordinator connection — while the
                // coordinator is down there is nowhere to send it. The
                // post-resync re-dictation barrier recovers the loss.
                if !s.crashed {
                    n.net.push(Msg::Ack {
                        src: dst,
                        rev: ack_rev,
                    });
                }
                n.normalize();
                let violation = (n.rp_rev[d] < before).then(|| Violation {
                    invariant: "revision-monotone",
                    detail: format!("rp{d} applied revision {rev} over newer revision {before}"),
                });
                out.push(Succ {
                    action: format!(
                        "Deliver {msg} ({})",
                        if applied {
                            "applied"
                        } else {
                            "stale, re-acked"
                        }
                    ),
                    state: n,
                    violation,
                });
            }
            Msg::Ack { src, rev } => {
                let r = src as usize;
                let mut n = s.clone();
                n.remove(msg);
                let violation = (rev > s.dictated || rev > s.seen_max[r]).then(|| Violation {
                    invariant: "ack-valid",
                    detail: format!(
                        "coordinator received Ack(rev {rev}) from rp{r}, which was never \
                         delivered that revision (dictated {}, rp{r} saw up to {})",
                        s.dictated, s.seen_max[r]
                    ),
                });
                if rev == n.dictated {
                    n.acked[r] = true;
                }
                // An ack also refreshes the post-resync view: the RP
                // provably runs (at least) `rev` now.
                if let Some(v) = n.view[r] {
                    n.view[r] = Some(v.max(rev));
                }
                out.push(Succ {
                    action: format!("Deliver {msg}"),
                    state: n,
                    violation,
                });
            }
            Msg::ResyncQuery { dst } => {
                let d = dst as usize;
                let mut n = s.clone();
                n.remove(msg);
                // The RP answers with its applied revision; if the
                // coordinator crashed again meanwhile, the reply has
                // nowhere to go.
                if !s.crashed {
                    n.net.push(Msg::ResyncReply {
                        src: dst,
                        rev: s.rp_rev[d],
                    });
                }
                n.normalize();
                out.push(Succ {
                    action: format!("Deliver {msg}"),
                    state: n,
                    violation: None,
                });
            }
            Msg::ResyncReply { src, rev } => {
                let r = src as usize;
                let mut n = s.clone();
                n.remove(msg);
                // Replies only matter mid-resync; a straggler from an
                // aborted round is ignored.
                if s.resyncing {
                    n.view[r] = Some(n.view[r].unwrap_or(0).max(rev));
                }
                out.push(Succ {
                    action: format!("Deliver {msg}"),
                    state: n,
                    violation: None,
                });
            }
        }

        if cfg.drops {
            let mut n = s.clone();
            n.remove(msg);
            out.push(Succ {
                action: format!("Drop {msg}"),
                state: n,
                violation: None,
            });
        }
        if cfg.duplicates && s.dups_used < cfg.max_dups {
            let mut n = s.clone();
            n.net.push(msg);
            n.dups_used += 1;
            n.normalize();
            out.push(Succ {
                action: format!("Duplicate {msg}"),
                state: n,
                violation: None,
            });
        }
    }

    out
}

/// Checks the state-shape invariants (poison absorption, the two resync
/// invariants, and the two table invariants over the mixed-revision
/// forwarding graph).
fn state_violation(mutation: Mutation, s: &State) -> Option<Violation> {
    if s.post_poison_dictations > 0 {
        return Some(Violation {
            invariant: "poison-absorbing",
            detail: format!(
                "coordinator dictated {} time(s) after poisoning",
                s.post_poison_dictations
            ),
        });
    }
    if let Some(i) = s.serving.iter().position(|&sv| !sv) {
        return Some(Violation {
            invariant: "resync-continuity",
            detail: format!(
                "rp{i} stopped forwarding during coordinator absence instead of serving \
                 its last-applied table"
            ),
        });
    }
    if s.dictated < s.max_dictated {
        return Some(Violation {
            invariant: "reconnect-regression",
            detail: format!(
                "coordinator's dictation watermark regressed from {} to {} across reconnect",
                s.max_dictated, s.dictated
            ),
        });
    }
    check_acyclic(mutation, &s.rp_rev).or_else(|| check_quality(mutation, &s.rp_rev))
}

fn trace_to(parents: &[Option<(usize, String)>], leaf: usize) -> Vec<String> {
    let mut trace = Vec::new();
    let mut at = leaf;
    while let Some((parent, action)) = &parents[at] {
        trace.push(action.clone());
        at = *parent;
    }
    trace.reverse();
    trace
}

/// Exhaustively explores `cfg` under `mutation` (use [`Mutation::None`]
/// for the faithful machine), returning state/transition counts and the
/// first invariant violation as a shortest counterexample trace.
pub fn explore(cfg: &ModelConfig, mutation: Mutation) -> ModelReport {
    let init = State::initial(cfg);
    let mut report = ModelReport {
        states: 0,
        transitions: 0,
        truncated: false,
        violation: None,
    };

    if let Some(v) = state_violation(mutation, &init) {
        report.states = 1;
        report.violation = Some(Counterexample {
            invariant: v.invariant,
            detail: v.detail,
            trace: vec!["(initial state)".to_owned()],
            state: init.summary(),
        });
        return report;
    }

    let mut ids: HashMap<State, usize> = HashMap::new();
    let mut arena: Vec<State> = Vec::new();
    let mut parents: Vec<Option<(usize, String)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    ids.insert(init.clone(), 0);
    arena.push(init);
    parents.push(None);
    queue.push_back(0);

    'walk: while let Some(id) = queue.pop_front() {
        let state = arena[id].clone();
        for succ in successors(cfg, mutation, &state) {
            report.transitions += 1;
            let violation = succ
                .violation
                .or_else(|| state_violation(mutation, &succ.state));
            if let Some(v) = violation {
                let mut trace = trace_to(&parents, id);
                trace.push(succ.action);
                report.states = arena.len();
                report.violation = Some(Counterexample {
                    invariant: v.invariant,
                    detail: v.detail,
                    trace,
                    state: succ.state.summary(),
                });
                return report;
            }
            if !ids.contains_key(&succ.state) {
                let nid = arena.len();
                ids.insert(succ.state.clone(), nid);
                arena.push(succ.state);
                parents.push(Some((id, succ.action)));
                queue.push_back(nid);
                if arena.len() >= cfg.max_states {
                    report.truncated = true;
                    break 'walk;
                }
            }
        }
    }

    report.states = arena.len();
    report
}

/// The bounded scopes the CI gate sweeps with the faithful machine: all
/// fleet sizes, both revision depths, and every fault combination that
/// stays tractable at that scope.
pub fn default_sweep() -> Vec<ModelConfig> {
    vec![
        ModelConfig::new(2, 2),
        ModelConfig::new(2, 2).with_drops(),
        ModelConfig::new(2, 2).with_duplicates(),
        ModelConfig::new(2, 2).with_drops().with_duplicates(),
        ModelConfig::new(2, 3),
        ModelConfig::new(2, 3).with_drops().with_duplicates(),
        ModelConfig::new(3, 2),
        ModelConfig::new(3, 2).with_drops(),
        ModelConfig::new(3, 2).with_duplicates(),
        ModelConfig::new(3, 3),
        ModelConfig::new(3, 3).with_drops(),
        ModelConfig::new(4, 2),
        ModelConfig::new(4, 2).with_drops(),
        ModelConfig::new(4, 3),
        // Rung 1 of the resilience ladder: coordinator crash/reconnect.
        ModelConfig::new(2, 2).with_crash(1),
        ModelConfig::new(2, 2).with_crash(1).with_drops(),
        ModelConfig::new(2, 2).with_crash(1).with_duplicates(),
        ModelConfig::new(3, 2).with_crash(1),
        ModelConfig::new(2, 3).with_crash(1),
    ]
}

/// The smallest scope on which each seeded mutation's bug is reachable
/// (the self-test explores this scope and must find a violation).
pub fn mutation_scope(mutation: Mutation) -> ModelConfig {
    match mutation {
        Mutation::None => ModelConfig::new(2, 2),
        // A stale Reconfigure can only outlive its barrier as a duplicate.
        Mutation::RevisionRollback => ModelConfig::new(2, 2).with_duplicates(),
        Mutation::PhantomAck => ModelConfig::new(2, 2),
        Mutation::DictateAfterPoison => ModelConfig::new(2, 2),
        // Needs a chain deep enough for an effective rung above the
        // star's planned leaf rung.
        Mutation::QualityUpgrade => ModelConfig::new(4, 2),
        // Needs an interior (non-origin) edge pair to reverse.
        Mutation::EdgeReversal => ModelConfig::new(3, 2),
        // Caught at the crash transition itself.
        Mutation::DisconnectWipe => ModelConfig::new(2, 2).with_crash(1),
        // Needs the backlog race: a pre-crash Reconfigure delivered
        // after that RP's resync reply was sent.
        Mutation::ResyncSkip => ModelConfig::new(2, 2).with_crash(1),
        // Needs one completed barrier before the crash so the replies
        // can sit below the watermark.
        Mutation::ReconnectRewind => ModelConfig::new(2, 2).with_crash(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_table_is_the_node_apply_rule() {
        let mut table = (0u64, 'a');
        assert!(swap_table(&mut table, 1, 'b'));
        assert!(swap_table(&mut table, 1, 'c')); // same revision: replayed
        assert!(!swap_table(&mut table, 0, 'd')); // stale: ignored
        assert_eq!(table, (1, 'c'));
    }

    #[test]
    fn healthy_machine_holds_all_invariants_at_small_scope() {
        for cfg in [
            ModelConfig::new(2, 2).with_drops().with_duplicates(),
            ModelConfig::new(3, 2).with_duplicates(),
        ] {
            let report = explore(&cfg, Mutation::None);
            assert!(report.violation.is_none(), "{:?}", report.violation);
            assert!(!report.truncated);
            assert!(report.states > 100, "suspiciously few states explored");
        }
    }

    #[test]
    fn every_seeded_mutation_is_caught_with_a_trace() {
        for &mutation in MUTATIONS {
            let report = explore(&mutation_scope(mutation), mutation);
            let cex = report
                .violation
                .unwrap_or_else(|| panic!("{mutation} was not detected"));
            assert_eq!(cex.invariant, mutation.target_invariant(), "{mutation}");
            assert!(!cex.trace.is_empty(), "{mutation} trace is empty");
        }
    }

    #[test]
    fn poisoning_is_reachable_and_absorbing_in_the_healthy_machine() {
        // With drops on, some ack never arrives and poisoning triggers;
        // the healthy machine must still satisfy poison-absorption.
        let report = explore(&ModelConfig::new(2, 2).with_drops(), Mutation::None);
        assert!(report.violation.is_none());
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ModelConfig::new(3, 2).with_drops();
        let a = explore(&cfg, Mutation::None);
        let b = explore(&cfg, Mutation::None);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn crash_scopes_hold_all_invariants_and_enlarge_the_space() {
        let plain = explore(&ModelConfig::new(2, 2), Mutation::None);
        for cfg in [
            ModelConfig::new(2, 2).with_crash(1),
            ModelConfig::new(2, 2).with_crash(1).with_drops(),
            ModelConfig::new(2, 2).with_crash(1).with_duplicates(),
        ] {
            let report = explore(&cfg, Mutation::None);
            assert!(report.violation.is_none(), "{:?}", report.violation);
            assert!(!report.truncated);
            assert!(
                report.states > plain.states,
                "crash scope explored no new states ({} vs {})",
                report.states,
                plain.states
            );
        }
    }

    #[test]
    fn crash_free_scopes_keep_the_legacy_state_space() {
        // The new fields are constant when reconnects = 0, so legacy
        // scopes must dedup to exactly the same state count as a machine
        // that never heard of crashes.
        let report = explore(&ModelConfig::new(2, 2).with_drops(), Mutation::None);
        let again = explore(
            &ModelConfig::new(2, 2).with_drops().with_crash(0),
            Mutation::None,
        );
        assert_eq!(report.states, again.states);
    }

    /// Drives one action by unique prefix, asserting it exists and
    /// carries no violation.
    fn step(cfg: &ModelConfig, s: &State, prefix: &str) -> State {
        let succ = successors(cfg, Mutation::None, s)
            .into_iter()
            .find(|x| x.action.starts_with(prefix))
            .unwrap_or_else(|| panic!("no successor action starts with `{prefix}`"));
        assert!(succ.violation.is_none(), "{:?}", succ.violation);
        assert!(
            state_violation(Mutation::None, &succ.state).is_none(),
            "state violation after `{prefix}`"
        );
        succ.state
    }

    #[test]
    fn the_healthy_crash_reconnect_resync_path_reaches_the_next_dictation() {
        let cfg = ModelConfig::new(2, 2).with_crash(1);
        let mut s = State::initial(&cfg);
        for prefix in [
            "Dictate revision 1",
            "Deliver Reconfigure(rev 1) to rp0",
            "Deliver Reconfigure(rev 1) to rp1",
            "Deliver Ack(rev 1) from rp0",
            "Deliver Ack(rev 1) from rp1",
            "Crash",
        ] {
            s = step(&cfg, &s, prefix);
        }
        assert!(s.crashed);
        // A crashed coordinator neither dictates nor times out barriers.
        for succ in successors(&cfg, Mutation::None, &s) {
            assert!(
                !succ.action.starts_with("Dictate") && !succ.action.starts_with("Poison"),
                "crashed coordinator acted: {}",
                succ.action
            );
        }
        s = step(&cfg, &s, "Reconnect");
        assert!(s.resyncing);
        assert_eq!(s.view, vec![None, None]);
        for prefix in [
            "Deliver ResyncQuery to rp0",
            "Deliver ResyncQuery to rp1",
            "Deliver ResyncReply(rev 1) from rp0",
            "Deliver ResyncReply(rev 1) from rp1",
        ] {
            s = step(&cfg, &s, prefix);
        }
        assert_eq!(s.view, vec![Some(1), Some(1)]);
        s = step(&cfg, &s, "Resync complete (re-dictate revision 1");
        assert!(!s.resyncing);
        assert_eq!(s.acked, vec![false, false]);
        for prefix in [
            "Deliver Reconfigure(rev 1) to rp0",
            "Deliver Ack(rev 1) from rp0",
            "Deliver Reconfigure(rev 1) to rp1",
            "Deliver Ack(rev 1) from rp1",
        ] {
            s = step(&cfg, &s, prefix);
        }
        // The re-dictation barrier completed on a matching view — the
        // coordinator may move the protocol forward again.
        let s = step(&cfg, &s, "Dictate revision 2");
        assert_eq!(s.dictated, 2);
        assert_eq!(s.max_dictated, 2);
    }

    #[test]
    fn rps_apply_but_do_not_ack_while_the_coordinator_is_down() {
        let cfg = ModelConfig::new(2, 2).with_crash(1);
        let mut s = State::initial(&cfg);
        s = step(&cfg, &s, "Dictate revision 1");
        s = step(&cfg, &s, "Crash");
        // Both Reconfigures survived the crash (RP-inbound), acks died.
        assert_eq!(s.net.len(), 2);
        s = step(&cfg, &s, "Deliver Reconfigure(rev 1) to rp0");
        assert_eq!(s.rp_rev[0], 1, "backlog Reconfigure must still apply");
        assert!(
            !s.net.iter().any(|m| matches!(m, Msg::Ack { .. })),
            "an ack was sent into a dead connection"
        );
    }
}
