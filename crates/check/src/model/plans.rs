//! The abstract plan family the model checker dictates, plus the two
//! table-shape invariants (acyclicity, quality monotonicity) evaluated
//! over mixed-revision states.
//!
//! Tables are a pure function of `(revision, rp)` — the model never
//! stores them, only each RP's applied revision — mirroring how the real
//! coordinator derives every `SitePlan` from one `DisseminationPlan`
//! revision. The family alternates tree shapes between revisions the way
//! overlay churn does:
//!
//! * even revisions — a **chain** from the stream origin through the
//!   other RPs in ascending index order (deep tree, rungs degrade with
//!   depth like the paper's quality-stamped forwarding);
//! * odd revisions — a **star** from the origin (shallow tree).
//!
//! Chain and star edges never reverse direction between consecutive
//! revisions (star edges all leave the origin; the origin heads every
//! chain), which is exactly the property that keeps every *mixed* table
//! acyclic under the coordinator's ack barrier — the
//! [`Mutation::EdgeReversal`] seeded bug breaks it and the checker's
//! acyclicity invariant catches the resulting forwarding loop.

use super::{Mutation, Violation};

/// Stream origins for an `rps`-node fleet: stream 0 always originates at
/// rp0; fleets of three or more get a second stream from the
/// highest-index RP so forwarding runs against the index order too.
pub fn stream_origins(rps: usize) -> Vec<usize> {
    if rps >= 3 {
        vec![0, rps - 1]
    } else {
        vec![0]
    }
}

/// The chain order at `rev` for a stream rooted at `origin`: the origin
/// first, then the other RPs ascending — or descending under the seeded
/// [`Mutation::EdgeReversal`] bug on odd revisions (where the healthy
/// family uses a star, so the mutant reverses interior edges relative to
/// the preceding even-revision chain).
fn order_of(mutation: Mutation, rps: usize, origin: usize) -> Vec<usize> {
    let mut order = vec![origin];
    if mutation == Mutation::EdgeReversal {
        order.extend((0..rps).rev().filter(|&rp| rp != origin));
    } else {
        order.extend((0..rps).filter(|&rp| rp != origin));
    }
    order
}

/// `rp`'s parent in the `origin`-rooted tree of revision `rev`
/// (`None` for the origin itself).
pub fn parent_of(
    mutation: Mutation,
    rps: usize,
    rev: u8,
    origin: usize,
    rp: usize,
) -> Option<usize> {
    if rp == origin {
        return None;
    }
    let odd = rev % 2 == 1;
    if odd && mutation != Mutation::EdgeReversal {
        return Some(origin); // star
    }
    let order = if odd {
        order_of(mutation, rps, origin) // mutant: descending chain
    } else {
        order_of(Mutation::None, rps, origin) // chain
    };
    let pos = order.iter().position(|&x| x == rp)?;
    Some(order[pos - 1])
}

/// `rp`'s depth in the revision-`rev` tree (0 for the origin).
fn depth_of(mutation: Mutation, rps: usize, rev: u8, origin: usize, rp: usize) -> usize {
    let mut depth = 0;
    let mut at = rp;
    while let Some(parent) = parent_of(mutation, rps, rev, origin, at) {
        depth += 1;
        at = parent;
        if depth > rps {
            break; // defensive: a mutant family could loop
        }
    }
    depth
}

/// The planned quality rung of `rp`'s subscription at revision `rev`:
/// rungs degrade with tree depth (capped at 3), so chains plan coarse
/// leaves and stars plan fine ones — revision churn moves every
/// non-origin rung, exercising the monotonicity invariant.
pub fn rung_of(mutation: Mutation, rps: usize, rev: u8, origin: usize, rp: usize) -> u8 {
    depth_of(mutation, rps, rev, origin, rp).min(3) as u8
}

/// The forwarding edges of one stream in a mixed-revision state: RP `p`
/// forwards to `c` when **`p`'s own applied table** lists `c` as its
/// child — exactly the real node rule, where each RP acts on its local
/// `SitePlan` regardless of what revision its peers run.
fn edges(mutation: Mutation, rp_rev: &[u8], origin: usize) -> Vec<(usize, usize)> {
    let rps = rp_rev.len();
    let mut edges = Vec::new();
    for (parent, &rev) in rp_rev.iter().enumerate() {
        for child in 0..rps {
            if parent_of(mutation, rps, rev, origin, child) == Some(parent) {
                edges.push((parent, child));
            }
        }
    }
    edges
}

/// Invariant: no reachable mixed table contains a forwarding cycle (a
/// frame entering one would loop until dropped, and per-stream `End`
/// cascades would never terminate).
pub fn check_acyclic(mutation: Mutation, rp_rev: &[u8]) -> Option<Violation> {
    let rps = rp_rev.len();
    for origin in stream_origins(rps) {
        let edges = edges(mutation, rp_rev, origin);
        // Three-color DFS over <=4 nodes.
        let mut color = vec![0u8; rps]; // 0 white, 1 gray, 2 black
        fn visit(n: usize, edges: &[(usize, usize)], color: &mut [u8]) -> Option<Vec<usize>> {
            color[n] = 1;
            for &(p, c) in edges {
                if p != n {
                    continue;
                }
                match color[c] {
                    1 => return Some(vec![n, c]),
                    0 => {
                        if let Some(mut cycle) = visit(c, edges, color) {
                            cycle.insert(0, n);
                            return Some(cycle);
                        }
                    }
                    _ => {}
                }
            }
            color[n] = 2;
            None
        }
        for start in 0..rps {
            if color[start] == 0 {
                if let Some(cycle) = visit(start, &edges, &mut color) {
                    let path: Vec<String> = cycle.iter().map(|rp| format!("rp{rp}")).collect();
                    return Some(Violation {
                        invariant: "acyclic-forwarding",
                        detail: format!(
                            "stream of rp{origin}: forwarding cycle through {} with per-RP \
                             revisions {rp_rev:?}",
                            path.join(" -> ")
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Invariant: effective quality only degrades (rung index only grows)
/// along every forwarding edge of every mixed table. Mirrors the node
/// forward rule `tag.max(planned).max(child_link)`: what `p` hands to
/// `c` can never be finer than what `p` itself delivers. The seeded
/// [`Mutation::QualityUpgrade`] bug re-encodes at the child's planned
/// rung, silently upgrading stale-revision frames.
pub fn check_quality(mutation: Mutation, rp_rev: &[u8]) -> Option<Violation> {
    let rps = rp_rev.len();
    for origin in stream_origins(rps) {
        let edges = edges(mutation, rp_rev, origin);
        let eff_via = |eff_p: u8, p: usize, c: usize| -> u8 {
            let link = rung_of(mutation, rps, rp_rev[p], origin, c);
            let own = rung_of(mutation, rps, rp_rev[c], origin, c);
            if mutation == Mutation::QualityUpgrade {
                own
            } else {
                eff_p.max(link).max(own)
            }
        };
        // Relax to a fixpoint (bounded — the edge set is tiny and the
        // acyclicity invariant runs first).
        let mut eff: Vec<Option<u8>> = vec![None; rps];
        eff[origin] = Some(rung_of(mutation, rps, rp_rev[origin], origin, origin));
        for _ in 0..=rps {
            for &(p, c) in &edges {
                if let Some(e) = eff[p] {
                    let via = eff_via(e, p, c);
                    eff[c] = Some(eff[c].map_or(via, |cur| cur.max(via)));
                }
            }
        }
        for &(p, c) in &edges {
            if let Some(e) = eff[p] {
                let via = eff_via(e, p, c);
                if via < e {
                    return Some(Violation {
                        invariant: "quality-monotone",
                        detail: format!(
                            "stream of rp{origin}: edge rp{p} -> rp{c} delivers rung {via}, \
                             finer than rp{p}'s effective rung {e} (per-RP revisions \
                             {rp_rev:?})",
                        ),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_and_stars_alternate() {
        // rev 0: chain 0 -> 1 -> 2 -> 3.
        assert_eq!(parent_of(Mutation::None, 4, 0, 0, 1), Some(0));
        assert_eq!(parent_of(Mutation::None, 4, 0, 0, 2), Some(1));
        assert_eq!(parent_of(Mutation::None, 4, 0, 0, 3), Some(2));
        // rev 1: star from the origin.
        assert_eq!(parent_of(Mutation::None, 4, 1, 0, 3), Some(0));
        // Second stream rooted at rp3: chain 3 -> 0 -> 1 -> 2.
        assert_eq!(parent_of(Mutation::None, 4, 0, 3, 0), Some(3));
        assert_eq!(parent_of(Mutation::None, 4, 0, 3, 3), None);
    }

    #[test]
    fn rungs_degrade_with_depth() {
        assert_eq!(rung_of(Mutation::None, 4, 0, 0, 0), 0);
        assert_eq!(rung_of(Mutation::None, 4, 0, 0, 1), 1);
        assert_eq!(rung_of(Mutation::None, 4, 0, 0, 3), 3);
        assert_eq!(rung_of(Mutation::None, 4, 1, 0, 3), 1); // star leaf
    }

    #[test]
    fn healthy_mixed_tables_stay_acyclic_and_monotone() {
        for rps in 2..=4 {
            for a in 0..=3u8 {
                for b in 0..=3u8 {
                    let mut revs = vec![a; rps];
                    revs[rps - 1] = b;
                    assert!(check_acyclic(Mutation::None, &revs).is_none(), "{revs:?}");
                    assert!(check_quality(Mutation::None, &revs).is_none(), "{revs:?}");
                }
            }
        }
    }

    #[test]
    fn edge_reversal_builds_a_cycle_in_a_mixed_table() {
        // rp1 applied the even chain (child rp2); rp2 applied the mutant
        // odd descending chain (child rp1).
        let violation = check_acyclic(Mutation::EdgeReversal, &[2, 2, 1]);
        assert!(violation.is_some());
        assert_eq!(violation.unwrap().invariant, "acyclic-forwarding");
    }

    #[test]
    fn quality_upgrade_breaks_monotonicity_in_a_mixed_table() {
        // rp0..rp2 on the rev-2 chain (rp2 effective rung 2), rp3 still
        // on the rev-1 star (planned rung 1): the mutant delivers rung 1
        // over the rp2 -> rp3 chain edge.
        let violation = check_quality(Mutation::QualityUpgrade, &[2, 2, 2, 1]);
        assert!(violation.is_some());
        assert_eq!(violation.unwrap().invariant, "quality-monotone");
    }
}
