//! Model-conformance proptest: the model checker abstracts an RP's
//! reaction to `Reconfigure` as [`swap_table`] (apply iff not older,
//! always ack). This test runs that *same function* over real
//! `DisseminationPlan`/`SitePlan` state evolved by randomly generated
//! deltas — overlay churn, diffed and applied exactly like the
//! coordinator does — and asserts the abstract step and the real plan
//! semantics agree on every site under arbitrary delivery orders,
//! including duplicated and stale redeliveries.
//!
//! If `node.rs` ever diverges from the swap rule (say, merging tables
//! instead of replacing them), the model keeps passing but this bridge
//! breaks — which is the point: the model's soundness reduces to this
//! conformance plus the mirrored rule.

use proptest::prelude::*;
use teeve_check::model::swap_table;
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{DisseminationPlan, PlanDelta, SitePlan, StreamProfile};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

/// Builds an arbitrary problem instance from proptest-drawn parameters
/// (same construction the workspace-level invariant proptests use).
fn arbitrary_problem(
    n: usize,
    capacity: u32,
    edges: &[(u8, u8, u8)],
    cost_seed: u8,
) -> Option<ProblemInstance> {
    let streams_per_site = 3u32;
    let costs = CostMatrix::from_fn(n, |i, j| {
        CostMs::new(1 + ((i * 31 + j * 17 + cost_seed as usize) % 9) as u32)
    });
    let mut builder = ProblemInstance::builder(costs, CostMs::new(40))
        .symmetric_capacities(Degree::new(capacity))
        .streams_per_site(&vec![streams_per_site; n]);
    for &(sub, origin, q) in edges {
        let sub = SiteId::new(u32::from(sub) % n as u32);
        let origin_site = SiteId::new(u32::from(origin) % n as u32);
        if sub == origin_site {
            continue;
        }
        builder = builder.subscribe(
            sub,
            StreamId::new(origin_site, u32::from(q) % streams_per_site),
        );
    }
    builder.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random churn -> plan revisions -> deltas; the delta-evolved plan
    /// matches the freshly derived one at every revision, and abstract
    /// RPs driven by `swap_table` under arbitrary (reordered, duplicated,
    /// lossy) delivery end up bit-equal to the revision each site last
    /// applied.
    #[test]
    fn abstract_table_application_matches_real_site_plans(
        n in 3usize..6,
        capacity in 2u32..6,
        edges in proptest::collection::vec((0u8..6, 0u8..6, 0u8..3), 1..30),
        ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..30),
        deliveries in proptest::collection::vec(0usize..256, 0..60),
        cost_seed in 0u8..255,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, &edges, cost_seed) else {
            return Ok(());
        };
        let requests: Vec<_> = problem.requests().map(|r| (r.subscriber, r.stream)).collect();
        if requests.is_empty() {
            return Ok(());
        }

        // Seed the overlay, then churn it in rounds; each round becomes
        // one plan revision, reached by delta exactly as the coordinator
        // reaches it.
        let mut manager = OverlayManager::new(problem.clone());
        let mut truth = DisseminationPlan::from_forest(
            &problem, &manager.forest_snapshot(), StreamProfile::default());
        let mut revisions = vec![truth.clone()];
        // Per-site deliverable events: (revision, that revision's table).
        let mut events: Vec<(usize, u64, SitePlan)> = Vec::new();

        for chunk in ops.chunks(3) {
            for &(join, pick) in chunk {
                let (sub, stream) = requests[pick % requests.len()];
                if join {
                    let _ = manager.subscribe(sub, stream);
                } else {
                    let _ = manager.unsubscribe(sub, stream);
                }
            }
            let next = DisseminationPlan::from_forest(
                &problem, &manager.forest_snapshot(), StreamProfile::default());
            let delta = PlanDelta::diff(&truth, &next);
            let touched = delta.touched_sites();
            delta.apply(&mut truth).expect("delta diffed against truth applies to it");

            // Conformance of the delta path itself: the delta-evolved
            // plan is entry-for-entry the freshly derived plan.
            prop_assert_eq!(truth.site_plans(), next.site_plans());
            prop_assert_eq!(truth.revision(), revisions.len() as u64);

            for site in touched {
                events.push((
                    site.index(),
                    truth.revision(),
                    truth.site_plan(site).clone(),
                ));
            }
            revisions.push(truth.clone());
        }

        // Abstract fleet: each RP holds (revision, SitePlan) and applies
        // Reconfigures through the model's swap rule, in an arbitrary
        // delivery order with duplicates and drops.
        let mut fleet: Vec<(u64, SitePlan)> = (0..n)
            .map(|s| (0u64, revisions[0].site_plan(SiteId::new(s as u32)).clone()))
            .collect();
        let mut last_applied = vec![0u64; n];
        if !events.is_empty() {
            for &pick in &deliveries {
                let (site, rev, table) = &events[pick % events.len()];
                swap_table(&mut fleet[*site], *rev, table.clone());
                last_applied[*site] = last_applied[*site].max(*rev);
            }
        }

        for (site, state) in fleet.iter().enumerate() {
            let expected_rev = last_applied[site];
            let expected_table = revisions[expected_rev as usize].site_plan(SiteId::new(site as u32));
            prop_assert_eq!(state.0, expected_rev, "site {} revision", site);
            prop_assert_eq!(&state.1, expected_table, "site {} table", site);
        }
    }

    /// The model's resync rule over real plans: revisions are dictated,
    /// the coordinator disappears mid-flight (messages still land from
    /// the backlog, reordered and duplicated), and on reconnect it
    /// re-dictates its latest revision to every site — exactly the
    /// re-dictation barrier the crash scopes verify. Afterward every
    /// site must run the latest revision's real `SitePlan`, and no site
    /// may ever have regressed along the way.
    #[test]
    fn resync_redictation_converges_real_site_plans_across_a_coordinator_gap(
        n in 3usize..6,
        capacity in 2u32..6,
        edges in proptest::collection::vec((0u8..6, 0u8..6, 0u8..3), 1..30),
        ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..30),
        pre_gap in proptest::collection::vec(0usize..256, 0..40),
        backlog in proptest::collection::vec(0usize..256, 0..40),
        post_dups in proptest::collection::vec(0usize..256, 0..40),
        cost_seed in 0u8..255,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, &edges, cost_seed) else {
            return Ok(());
        };
        let requests: Vec<_> = problem.requests().map(|r| (r.subscriber, r.stream)).collect();
        if requests.is_empty() {
            return Ok(());
        }

        // Dictated history: churn in rounds, each round one revision
        // reached by delta apply (the coordinator's own path).
        let mut manager = OverlayManager::new(problem.clone());
        let mut truth = DisseminationPlan::from_forest(
            &problem, &manager.forest_snapshot(), StreamProfile::default());
        let mut revisions = vec![truth.clone()];
        let mut events: Vec<(usize, u64, SitePlan)> = Vec::new();
        for chunk in ops.chunks(3) {
            for &(join, pick) in chunk {
                let (sub, stream) = requests[pick % requests.len()];
                if join {
                    let _ = manager.subscribe(sub, stream);
                } else {
                    let _ = manager.unsubscribe(sub, stream);
                }
            }
            let next = DisseminationPlan::from_forest(
                &problem, &manager.forest_snapshot(), StreamProfile::default());
            let delta = PlanDelta::diff(&truth, &next);
            let touched = delta.touched_sites();
            delta.apply(&mut truth).expect("delta diffed against truth applies to it");
            for site in touched {
                events.push((site.index(), truth.revision(), truth.site_plan(site).clone()));
            }
            revisions.push(truth.clone());
        }
        let latest = (revisions.len() - 1) as u64;

        let mut fleet: Vec<(u64, SitePlan)> = (0..n)
            .map(|s| (0u64, revisions[0].site_plan(SiteId::new(s as u32)).clone()))
            .collect();
        let deliver = |fleet: &mut Vec<(u64, SitePlan)>, picks: &[usize]| {
            if events.is_empty() {
                return Ok(());
            }
            for &pick in picks {
                let (site, rev, table) = &events[pick % events.len()];
                let before = fleet[*site].0;
                swap_table(&mut fleet[*site], *rev, table.clone());
                prop_assert!(fleet[*site].0 >= before, "site {} regressed", site);
            }
            Ok(())
        };

        // Some deliveries land, then the coordinator crashes. The
        // backlog keeps landing through the gap (RP-inbound messages
        // survive in kernel buffers, reordered and duplicated) — RPs
        // keep applying, they just can't ack.
        deliver(&mut fleet, &pre_gap)?;
        deliver(&mut fleet, &backlog)?;

        // Reconnect: the coordinator re-dictates its latest revision to
        // every site as the resync barrier (the model's resync rule).
        for (site, state) in fleet.iter_mut().enumerate() {
            let before = state.0;
            swap_table(
                state,
                latest,
                revisions[latest as usize].site_plan(SiteId::new(site as u32)).clone(),
            );
            prop_assert!(state.0 >= before, "site {} regressed at resync", site);
        }

        // Late duplicates of stale Reconfigures must all bounce off.
        deliver(&mut fleet, &post_dups)?;

        for (site, state) in fleet.iter().enumerate() {
            let expected = revisions[latest as usize].site_plan(SiteId::new(site as u32));
            prop_assert_eq!(state.0, latest, "site {} revision after resync", site);
            prop_assert_eq!(&state.1, expected, "site {} table after resync", site);
        }
    }
}
