//! 3D camera models and the standard ring rig used at 3DTI sites.

use serde::{Deserialize, Serialize};
use teeve_types::{CameraId, SiteId, StreamId};

use crate::Vec3;

/// A 3D camera: one publisher producing one continuous 3D video stream.
///
/// A camera is described by its position in cyber-space, its optical axis
/// (the direction it looks), and the subject it captures (the participant at
/// its site). The optical axis is what determines how much the camera's
/// stream contributes to a viewer's field of view: a viewer looking at the
/// subject from direction `d` is best served by cameras whose position is on
/// the `d` side of the subject (Figure 4 of the paper).
///
/// # Examples
///
/// ```
/// use teeve_geometry::{Camera, Vec3};
/// use teeve_types::{CameraId, SiteId};
///
/// let cam = Camera::new(
///     CameraId::new(SiteId::new(0), 0),
///     Vec3::new(2.0, 0.0, 1.5),
///     Vec3::new(0.0, 0.0, 1.5), // subject at the rig center
/// );
/// // The optical axis points from the camera toward the subject.
/// assert!(cam.optical_axis().dot(Vec3::new(-1.0, 0.0, 0.0)) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    id: CameraId,
    position: Vec3,
    subject: Vec3,
}

impl Camera {
    /// Creates a camera at `position` capturing the participant at
    /// `subject`.
    ///
    /// # Panics
    ///
    /// Panics if the camera is placed exactly on its subject (the optical
    /// axis would be undefined).
    pub fn new(id: CameraId, position: Vec3, subject: Vec3) -> Self {
        assert!(
            position.distance_to(subject) > 1e-9,
            "camera must not coincide with its subject"
        );
        Camera {
            id,
            position,
            subject,
        }
    }

    /// Returns the camera identifier.
    pub fn id(&self) -> CameraId {
        self.id
    }

    /// Returns the stream this camera publishes.
    pub fn stream(&self) -> StreamId {
        self.id.stream()
    }

    /// Returns the camera position in cyber-space.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Returns the participant position this camera captures.
    pub fn subject(&self) -> Vec3 {
        self.subject
    }

    /// Returns the unit optical axis, pointing from the camera toward its
    /// subject.
    pub fn optical_axis(&self) -> Vec3 {
        (self.subject - self.position)
            .normalized()
            .expect("constructor guarantees a non-degenerate axis")
    }
}

/// The standard 3DTI capture rig: `count` cameras evenly spaced on a
/// horizontal circle around the participant, all looking inward.
///
/// This matches the paper's Figure 4, which shows eight cameras in a ring
/// with the participant in the middle.
///
/// # Examples
///
/// ```
/// use teeve_geometry::{CameraRing, Vec3};
/// use teeve_types::SiteId;
///
/// let ring = CameraRing::new(SiteId::new(0), Vec3::ZERO, 2.0, 1.5, 8);
/// assert_eq!(ring.cameras().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraRing {
    site: SiteId,
    cameras: Vec<Camera>,
}

impl CameraRing {
    /// Creates a ring of `count` cameras for `site`, centered on the
    /// participant at `center`, with the given ring `radius` (meters) and
    /// camera mounting `height` above the participant's base.
    ///
    /// Camera `k` sits at angle `2πk / count` measured from the +x axis.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `radius` is not positive.
    pub fn new(site: SiteId, center: Vec3, radius: f64, height: f64, count: u32) -> Self {
        assert!(count > 0, "a camera ring needs at least one camera");
        assert!(radius > 0.0, "ring radius must be positive");
        let cameras = (0..count)
            .map(|k| {
                let theta = 2.0 * std::f64::consts::PI * f64::from(k) / f64::from(count);
                let position =
                    center + Vec3::new(radius * theta.cos(), radius * theta.sin(), height);
                Camera::new(CameraId::new(site, k), position, center)
            })
            .collect();
        CameraRing { site, cameras }
    }

    /// Returns the site this rig belongs to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Returns the cameras in local-index order.
    pub fn cameras(&self) -> &[Camera] {
        &self.cameras
    }

    /// Returns an iterator over the streams published by this rig.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.cameras.iter().map(Camera::stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_places_cameras_at_radius() {
        let center = Vec3::new(10.0, -3.0, 0.0);
        let ring = CameraRing::new(SiteId::new(1), center, 2.0, 1.5, 8);
        for cam in ring.cameras() {
            let horizontal = Vec3::new(
                cam.position().x - center.x,
                cam.position().y - center.y,
                0.0,
            );
            assert!(
                (horizontal.norm() - 2.0).abs() < 1e-9,
                "camera {} not on the ring",
                cam.id()
            );
            assert!((cam.position().z - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn ring_cameras_all_face_the_center() {
        let center = Vec3::ZERO;
        let ring = CameraRing::new(SiteId::new(0), center, 2.0, 0.0, 6);
        for cam in ring.cameras() {
            let toward_center = (center - cam.position()).normalized().unwrap();
            assert!(cam.optical_axis().dot(toward_center) > 0.999);
        }
    }

    #[test]
    fn ring_camera_ids_are_sequential() {
        let ring = CameraRing::new(SiteId::new(2), Vec3::ZERO, 1.0, 1.0, 4);
        for (k, cam) in ring.cameras().iter().enumerate() {
            assert_eq!(cam.id(), CameraId::new(SiteId::new(2), k as u32));
            assert_eq!(cam.stream().origin(), SiteId::new(2));
        }
    }

    #[test]
    fn ring_streams_match_cameras() {
        let ring = CameraRing::new(SiteId::new(0), Vec3::ZERO, 1.0, 1.0, 5);
        let streams: Vec<_> = ring.streams().collect();
        assert_eq!(streams.len(), 5);
        for (cam, stream) in ring.cameras().iter().zip(&streams) {
            assert_eq!(cam.stream(), *stream);
        }
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn rejects_empty_ring() {
        let _ = CameraRing::new(SiteId::new(0), Vec3::ZERO, 1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn rejects_camera_on_subject() {
        let _ = Camera::new(CameraId::new(SiteId::new(0), 0), Vec3::ZERO, Vec3::ZERO);
    }

    #[test]
    fn cameras_at_distinct_angles() {
        let ring = CameraRing::new(SiteId::new(0), Vec3::ZERO, 2.0, 0.0, 8);
        let positions: Vec<_> = ring.cameras().iter().map(Camera::position).collect();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                assert!(
                    positions[i].distance_to(positions[j]) > 0.1,
                    "cameras {i} and {j} overlap"
                );
            }
        }
    }
}
