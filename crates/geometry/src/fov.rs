//! Field-of-view subscriptions: the user-facing half of the subscription
//! framework.

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// A preferred field of view in the cyber-space: the subscription a user
/// configures for one 3D display (paper Section 3.2).
///
/// A FOV is a rendering viewpoint: an eye position, a view direction, and an
/// angular aperture. Points within `aperture_deg / 2` of the view direction
/// are visible.
///
/// # Examples
///
/// ```
/// use teeve_geometry::{FieldOfView, Vec3};
///
/// let fov = FieldOfView::looking_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 60.0);
/// assert!(fov.contains(Vec3::new(0.1, 0.1, 0.0)));
/// assert!(!fov.contains(Vec3::new(0.0, 0.0, 10.0))); // behind the eye
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldOfView {
    eye: Vec3,
    direction: Vec3,
    aperture_deg: f64,
}

impl FieldOfView {
    /// Creates a FOV from an eye position, a (non-zero) view direction, and
    /// an angular aperture in degrees.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is (near-)zero or `aperture_deg` is outside
    /// `(0, 360]`.
    pub fn new(eye: Vec3, direction: Vec3, aperture_deg: f64) -> Self {
        let direction = direction
            .normalized()
            .expect("view direction must be non-zero");
        assert!(
            aperture_deg > 0.0 && aperture_deg <= 360.0,
            "aperture must be in (0, 360] degrees"
        );
        FieldOfView {
            eye,
            direction,
            aperture_deg,
        }
    }

    /// Creates a FOV at `eye` looking toward `target`.
    ///
    /// # Panics
    ///
    /// Panics if `eye == target` or the aperture is out of range.
    pub fn looking_at(eye: Vec3, target: Vec3, aperture_deg: f64) -> Self {
        FieldOfView::new(eye, target - eye, aperture_deg)
    }

    /// Returns the eye position.
    pub fn eye(&self) -> Vec3 {
        self.eye
    }

    /// Returns the unit view direction.
    pub fn direction(&self) -> Vec3 {
        self.direction
    }

    /// Returns the angular aperture in degrees.
    pub fn aperture_deg(&self) -> f64 {
        self.aperture_deg
    }

    /// Returns true if `point` falls inside the viewing cone.
    ///
    /// The eye itself is considered visible (a participant standing at the
    /// eye fills the view).
    pub fn contains(&self, point: Vec3) -> bool {
        match (point - self.eye).normalized() {
            None => true,
            Some(to_point) => {
                let half_aperture = (self.aperture_deg / 2.0).to_radians();
                self.direction.angle_to(to_point) <= half_aperture + 1e-12
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_points_in_the_cone() {
        let fov = FieldOfView::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 90.0);
        assert!(fov.contains(Vec3::new(5.0, 0.0, 0.0)), "straight ahead");
        assert!(fov.contains(Vec3::new(5.0, 4.9, 0.0)), "just inside 45°");
        assert!(!fov.contains(Vec3::new(5.0, 5.2, 0.0)), "just outside 45°");
        assert!(!fov.contains(Vec3::new(-5.0, 0.0, 0.0)), "behind");
    }

    #[test]
    fn eye_position_is_visible() {
        let fov = FieldOfView::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.0, 0.0, 1.0), 30.0);
        assert!(fov.contains(Vec3::new(1.0, 2.0, 3.0)));
    }

    #[test]
    fn looking_at_normalizes_direction() {
        let fov = FieldOfView::looking_at(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, 60.0);
        assert!((fov.direction() - Vec3::new(0.0, 0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn full_sphere_aperture_sees_everything() {
        let fov = FieldOfView::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 360.0);
        assert!(fov.contains(Vec3::new(-1.0, 0.0, 0.0)));
        assert!(fov.contains(Vec3::new(0.0, -1.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_direction() {
        let _ = FieldOfView::new(Vec3::ZERO, Vec3::ZERO, 60.0);
    }

    #[test]
    #[should_panic(expected = "aperture")]
    fn rejects_zero_aperture() {
        let _ = FieldOfView::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let fov = FieldOfView::looking_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, 45.0);
        let json = serde_json::to_string(&fov).unwrap();
        let back: FieldOfView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fov);
    }
}
