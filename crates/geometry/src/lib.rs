//! Cyber-space geometry and FOV-based stream selection for the TEEVE
//! reproduction.
//!
//! The paper's publish-subscribe model assumes a *subscription framework*
//! with two capabilities (Section 3.2): let a participant specify a
//! preferred **field of view (FOV)** in the shared 3D cyber-space, and
//! convert that FOV into the concrete subset of streams that contribute to
//! it (its Figure 4 shows an eight-camera ring where cameras 1, 2, 7, 8
//! contribute most to a FOV). The paper delegates this to ViewCast \[26\];
//! this crate is our ViewCast substitute (substitution S4 in `DESIGN.md`):
//!
//! * [`Vec3`] — minimal 3D vector math;
//! * [`Camera`] and [`CameraRing`] — 3D camera rigs around a participant;
//! * [`CyberSpace`] — the shared virtual space in which every site's
//!   participant (and camera rig) is placed;
//! * [`FieldOfView`] — a viewpoint subscription (eye, target, aperture);
//! * [`ViewSelector`] — scores every stream's contribution to a FOV and
//!   selects the top-k, yielding the subscription requests fed to the
//!   overlay construction module.
//!
//! # Examples
//!
//! ```
//! use teeve_geometry::{CyberSpace, FieldOfView, Vec3, ViewSelector};
//! use teeve_types::SiteId;
//!
//! // Three sites, eight cameras each, arranged in the default meeting circle.
//! let space = CyberSpace::meeting_circle(3, 8);
//!
//! // A display at site 0 watches the participant from site 1.
//! let fov = FieldOfView::looking_at(
//!     space.participant_position(SiteId::new(1)) + Vec3::new(0.0, 0.0, 2.5),
//!     space.participant_position(SiteId::new(1)),
//!     60.0,
//! );
//! let selector = ViewSelector::top_k(4);
//! let streams = selector.select(&space, &fov);
//! assert_eq!(streams.len(), 4);
//! // All contributing streams come from the observed site.
//! assert!(streams.iter().all(|s| s.stream.origin() == SiteId::new(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camera;
mod fov;
mod scene;
mod selection;
mod vec3;

pub use camera::{Camera, CameraRing};
pub use fov::FieldOfView;
pub use scene::CyberSpace;
pub use selection::{ScoredStream, ViewSelector};
pub use vec3::Vec3;
