//! The shared cyber-space: every site's participant and camera rig placed in
//! one virtual coordinate system.

use serde::{Deserialize, Serialize};
use teeve_types::{SiteId, StreamId};

use crate::{Camera, CameraRing, Vec3};

/// The integrated 3D virtual space ("cyber-space") into which all sites'
/// participants are rendered (paper Figure 2).
///
/// Construction places each site's participant somewhere in a common
/// coordinate system together with the site's camera ring; display FOVs are
/// then expressed in the same coordinates, which is what lets a FOV select
/// contributing streams across *all* sites.
///
/// # Examples
///
/// ```
/// use teeve_geometry::CyberSpace;
/// use teeve_types::SiteId;
///
/// let space = CyberSpace::meeting_circle(4, 8);
/// assert_eq!(space.site_count(), 4);
/// assert_eq!(space.streams().count(), 32);
/// let p0 = space.participant_position(SiteId::new(0));
/// let p1 = space.participant_position(SiteId::new(1));
/// assert!(p0.distance_to(p1) > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyberSpace {
    rigs: Vec<CameraRing>,
    participants: Vec<Vec3>,
}

impl CyberSpace {
    /// Default ring radius (meters) of each site's camera rig.
    pub const DEFAULT_RIG_RADIUS: f64 = 2.0;
    /// Default camera mounting height (meters).
    pub const DEFAULT_RIG_HEIGHT: f64 = 1.6;

    /// Arranges `sites` participants evenly on a virtual meeting circle,
    /// each captured by a ring of `cameras_per_site` cameras.
    ///
    /// The circle radius scales with the number of sites so that neighboring
    /// camera rigs never overlap. This is the canonical multi-party layout:
    /// everyone facing the middle, like the collaborative scenarios (dance,
    /// conferencing) that motivate the paper.
    ///
    /// # Panics
    ///
    /// Panics if `sites` or `cameras_per_site` is zero.
    pub fn meeting_circle(sites: usize, cameras_per_site: u32) -> Self {
        assert!(sites > 0, "cyber-space needs at least one site");
        assert!(cameras_per_site > 0, "sites need at least one camera");
        // Keep at least 4 rig-radii of arc between participants.
        let min_spacing = 4.0 * Self::DEFAULT_RIG_RADIUS;
        let circumference = min_spacing * sites as f64;
        let radius = if sites == 1 {
            0.0
        } else {
            (circumference / (2.0 * std::f64::consts::PI)).max(min_spacing)
        };
        let mut rigs = Vec::with_capacity(sites);
        let mut participants = Vec::with_capacity(sites);
        for (k, site) in SiteId::all(sites).enumerate() {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / sites as f64;
            let center = Vec3::new(radius * theta.cos(), radius * theta.sin(), 0.0);
            participants.push(center);
            rigs.push(CameraRing::new(
                site,
                center,
                Self::DEFAULT_RIG_RADIUS,
                Self::DEFAULT_RIG_HEIGHT,
                cameras_per_site,
            ));
        }
        CyberSpace { rigs, participants }
    }

    /// Builds a cyber-space from explicit participant positions, with a
    /// default ring of `cameras_per_site` cameras at each.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `cameras_per_site` is zero.
    pub fn from_positions(positions: Vec<Vec3>, cameras_per_site: u32) -> Self {
        assert!(!positions.is_empty(), "cyber-space needs at least one site");
        assert!(cameras_per_site > 0, "sites need at least one camera");
        let rigs = positions
            .iter()
            .zip(SiteId::all(positions.len()))
            .map(|(&center, site)| {
                CameraRing::new(
                    site,
                    center,
                    Self::DEFAULT_RIG_RADIUS,
                    Self::DEFAULT_RIG_HEIGHT,
                    cameras_per_site,
                )
            })
            .collect();
        CyberSpace {
            rigs,
            participants: positions,
        }
    }

    /// Returns the number of sites in the space.
    pub fn site_count(&self) -> usize {
        self.rigs.len()
    }

    /// Returns the participant position of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not part of this space.
    pub fn participant_position(&self, site: SiteId) -> Vec3 {
        self.participants[site.index()]
    }

    /// Returns the camera ring of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not part of this space.
    pub fn rig(&self, site: SiteId) -> &CameraRing {
        &self.rigs[site.index()]
    }

    /// Returns an iterator over every camera in the space.
    pub fn cameras(&self) -> impl Iterator<Item = &Camera> {
        self.rigs.iter().flat_map(|rig| rig.cameras().iter())
    }

    /// Returns an iterator over every stream published in the space.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.cameras().map(Camera::stream)
    }

    /// Returns the camera publishing `stream`, or `None` if the stream does
    /// not exist in this space.
    pub fn camera_for(&self, stream: StreamId) -> Option<&Camera> {
        let rig = self.rigs.get(stream.origin().index())?;
        rig.cameras().get(stream.local_index() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meeting_circle_separates_participants() {
        let space = CyberSpace::meeting_circle(6, 8);
        for i in 0..6 {
            for j in (i + 1)..6 {
                let pi = space.participant_position(SiteId::new(i as u32));
                let pj = space.participant_position(SiteId::new(j as u32));
                assert!(
                    pi.distance_to(pj) >= 2.0 * CyberSpace::DEFAULT_RIG_RADIUS,
                    "participants {i} and {j} are too close"
                );
            }
        }
    }

    #[test]
    fn single_site_space_sits_at_origin() {
        let space = CyberSpace::meeting_circle(1, 4);
        assert_eq!(space.participant_position(SiteId::new(0)), Vec3::ZERO);
    }

    #[test]
    fn stream_enumeration_covers_all_rigs() {
        let space = CyberSpace::meeting_circle(3, 5);
        let streams: Vec<_> = space.streams().collect();
        assert_eq!(streams.len(), 15);
        for site in SiteId::all(3) {
            assert_eq!(
                streams.iter().filter(|s| s.origin() == site).count(),
                5,
                "site {site} should publish 5 streams"
            );
        }
    }

    #[test]
    fn camera_lookup_by_stream() {
        let space = CyberSpace::meeting_circle(2, 4);
        let stream = StreamId::new(SiteId::new(1), 2);
        let cam = space.camera_for(stream).expect("camera exists");
        assert_eq!(cam.stream(), stream);
        assert!(space
            .camera_for(StreamId::new(SiteId::new(1), 99))
            .is_none());
        assert!(space.camera_for(StreamId::new(SiteId::new(9), 0)).is_none());
    }

    #[test]
    fn from_positions_respects_given_layout() {
        let positions = vec![Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)];
        let space = CyberSpace::from_positions(positions.clone(), 3);
        assert_eq!(space.site_count(), 2);
        assert_eq!(space.participant_position(SiteId::new(1)), positions[1]);
        // Rig cameras surround the given position.
        for cam in space.rig(SiteId::new(1)).cameras() {
            assert!(cam.position().distance_to(positions[1]) < 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn rejects_empty_space() {
        let _ = CyberSpace::meeting_circle(0, 8);
    }
}
