//! Contribution scoring and stream selection: the machine-facing half of
//! the subscription framework.

use serde::{Deserialize, Serialize};
use teeve_types::StreamId;

use crate::{Camera, CyberSpace, FieldOfView};

/// A stream together with its contribution score for some field of view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredStream {
    /// The contributing stream.
    pub stream: StreamId,
    /// Contribution score in `[0, 1]`; higher contributes more to the FOV.
    pub score: f64,
}

/// Selects the subset of streams contributing to a field of view.
///
/// This is the second key functionality the paper requires of the
/// subscription framework (Section 3.2): "convert the specified FOV to a
/// concrete subset of streams that are contributing to the FOV". The
/// resulting stream set constitutes the display's subscription requests.
///
/// The contribution score of a camera to a FOV combines:
///
/// 1. **Visibility** — if the camera's subject (the participant it captures)
///    is outside the viewing cone, the stream contributes nothing;
/// 2. **Angular alignment** — a viewer looking at a participant from
///    direction `d` is best served by cameras positioned on the `d` side of
///    that participant (the paper's Figure 4: the ring cameras facing the
///    FOV are the top contributors); scored as `(1 + cos θ) / 2`;
/// 3. **Proximity** — closer participants fill more of the view, so their
///    streams matter more: scored as `1 / (1 + distance / 10 m)`.
///
/// # Examples
///
/// ```
/// use teeve_geometry::{CyberSpace, FieldOfView, Vec3, ViewSelector};
///
/// let space = CyberSpace::meeting_circle(2, 8);
/// let target = space.participant_position(teeve_types::SiteId::new(1));
/// let fov = FieldOfView::looking_at(target + Vec3::new(6.0, 0.0, 1.0), target, 70.0);
/// let top = ViewSelector::top_k(4).select(&space, &fov);
/// assert_eq!(top.len(), 4);
/// assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewSelector {
    /// Keep at most this many streams (`None` = unlimited).
    max_streams: Option<usize>,
    /// Drop streams scoring below this threshold.
    min_score: f64,
}

impl ViewSelector {
    /// Distance (meters) at which proximity attenuates to one half.
    const PROXIMITY_SCALE_M: f64 = 10.0;

    /// Selects the `k` most contributing streams.
    pub fn top_k(k: usize) -> Self {
        ViewSelector {
            max_streams: Some(k),
            min_score: 0.0,
        }
    }

    /// Selects every stream scoring at least `min_score`.
    ///
    /// # Panics
    ///
    /// Panics if `min_score` is not within `[0, 1]`.
    pub fn threshold(min_score: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_score),
            "min_score must be in [0, 1]"
        );
        ViewSelector {
            max_streams: None,
            min_score,
        }
    }

    /// Restricts an existing selector to at most `k` streams.
    #[must_use]
    pub fn with_max_streams(mut self, k: usize) -> Self {
        self.max_streams = Some(k);
        self
    }

    /// Computes the contribution score of one camera to `fov`.
    ///
    /// Returns a value in `[0, 1]`; zero when the camera's subject is
    /// outside the viewing cone.
    pub fn contribution(camera: &Camera, fov: &FieldOfView) -> f64 {
        let subject = camera.subject();
        if !fov.contains(subject) {
            return 0.0;
        }
        let to_eye = fov.eye() - subject;
        let to_camera = camera.position() - subject;
        let alignment = (1.0 + to_camera.angle_to(to_eye).cos()) / 2.0;
        let proximity = 1.0 / (1.0 + subject.distance_to(fov.eye()) / Self::PROXIMITY_SCALE_M);
        alignment * proximity
    }

    /// Scores every stream in `space` against `fov` and returns the selected
    /// streams in descending score order (ties broken by stream id so the
    /// result is deterministic).
    ///
    /// Streams scoring exactly zero are never selected, even under
    /// [`ViewSelector::top_k`]: a stream whose subject is invisible cannot
    /// contribute to the view.
    pub fn select(&self, space: &CyberSpace, fov: &FieldOfView) -> Vec<ScoredStream> {
        let mut scored: Vec<ScoredStream> = space
            .cameras()
            .map(|cam| ScoredStream {
                stream: cam.stream(),
                score: Self::contribution(cam, fov),
            })
            .filter(|s| s.score > self.min_score.max(f64::MIN_POSITIVE))
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.stream.cmp(&b.stream))
        });
        if let Some(k) = self.max_streams {
            scored.truncate(k);
        }
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;
    use teeve_types::SiteId;

    /// The paper's Figure 4: eight cameras in a ring, a FOV selected from
    /// one side, and "the streams produced from camera 1, 2, 7, 8 are the
    /// four most contributing streams to the selected FOV".
    ///
    /// Our ring indexes cameras 0..8 counterclockwise from the +x axis, so
    /// the four cameras on the +x-facing arc are 0, 1, 6, 7 — the same
    /// arc-of-four as the paper's 1, 2, 8, 7 under 1-based labels.
    #[test]
    fn figure4_facing_arc_contributes_most() {
        let space = CyberSpace::meeting_circle(1, 8);
        let subject = space.participant_position(SiteId::new(0));
        // Viewer out along +x looking back at the participant.
        let fov = FieldOfView::looking_at(subject + Vec3::new(8.0, 0.0, 1.6), subject, 60.0);
        let top = ViewSelector::top_k(4).select(&space, &fov);
        let indices: std::collections::HashSet<u32> =
            top.iter().map(|s| s.stream.local_index()).collect();
        // Camera 0 faces the viewer dead-on; 1 and 7 flank it. The fourth
        // slot is a symmetric tie between cameras 2 and 6 (both at 90° off
        // axis), so accept either — what matters is that the back arc
        // (cameras 3, 4, 5) never contributes to the top four.
        for must_have in [0, 1, 7] {
            assert!(indices.contains(&must_have), "camera {must_have} missing");
        }
        for back in [3, 4, 5] {
            assert!(!indices.contains(&back), "back camera {back} selected");
        }
    }

    #[test]
    fn invisible_subjects_contribute_zero() {
        let space = CyberSpace::meeting_circle(2, 4);
        let p0 = space.participant_position(SiteId::new(0));
        // Look at participant 0 from a direction perpendicular to the
        // p0-p1 axis, with a narrow aperture that excludes participant 1
        // (looking from directly behind p0 would leave p1 inside the cone —
        // visibility is angular, not occlusion-based).
        let fov = FieldOfView::looking_at(p0 + Vec3::new(0.0, 6.0, 0.0), p0, 30.0);
        for cam in space.rig(SiteId::new(1)).cameras() {
            assert_eq!(ViewSelector::contribution(cam, &fov), 0.0);
        }
        let selected = ViewSelector::threshold(0.0).select(&space, &fov);
        assert!(
            selected.iter().all(|s| s.stream.origin() == SiteId::new(0)),
            "only the visible participant's streams are selected"
        );
    }

    #[test]
    fn closer_participants_score_higher() {
        // Two participants directly ahead, one near and one far.
        let space = CyberSpace::from_positions(
            vec![Vec3::new(10.0, 0.0, 0.0), Vec3::new(40.0, 0.0, 0.0)],
            4,
        );
        let fov = FieldOfView::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 40.0);
        let best_near = space
            .rig(SiteId::new(0))
            .cameras()
            .iter()
            .map(|c| ViewSelector::contribution(c, &fov))
            .fold(0.0, f64::max);
        let best_far = space
            .rig(SiteId::new(1))
            .cameras()
            .iter()
            .map(|c| ViewSelector::contribution(c, &fov))
            .fold(0.0, f64::max);
        assert!(
            best_near > best_far,
            "near {best_near} should beat far {best_far}"
        );
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let space = CyberSpace::meeting_circle(3, 8);
        let fov = FieldOfView::new(Vec3::new(1.0, 2.0, 1.0), Vec3::new(-1.0, -0.5, 0.0), 120.0);
        for cam in space.cameras() {
            let s = ViewSelector::contribution(cam, &fov);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn top_k_returns_descending_scores() {
        let space = CyberSpace::meeting_circle(2, 8);
        let target = space.participant_position(SiteId::new(0));
        let fov = FieldOfView::looking_at(target + Vec3::new(5.0, 5.0, 1.0), target, 90.0);
        let top = ViewSelector::top_k(6).select(&space, &fov);
        assert!(top.len() <= 6);
        assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn threshold_filters_low_scores() {
        let space = CyberSpace::meeting_circle(1, 8);
        let subject = space.participant_position(SiteId::new(0));
        let fov = FieldOfView::looking_at(subject + Vec3::new(8.0, 0.0, 1.6), subject, 60.0);
        let all = ViewSelector::threshold(0.0).select(&space, &fov);
        let strict = ViewSelector::threshold(0.3).select(&space, &fov);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|s| s.score > 0.3));
    }

    #[test]
    fn selection_is_deterministic() {
        let space = CyberSpace::meeting_circle(3, 8);
        let target = space.participant_position(SiteId::new(2));
        let fov = FieldOfView::looking_at(target + Vec3::new(4.0, -3.0, 1.0), target, 80.0);
        let a = ViewSelector::top_k(5).select(&space, &fov);
        let b = ViewSelector::top_k(5).select(&space, &fov);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_score_streams_never_selected_even_with_large_k() {
        let space = CyberSpace::meeting_circle(2, 4);
        let p0 = space.participant_position(SiteId::new(0));
        let fov = FieldOfView::looking_at(p0 + Vec3::new(0.0, 6.0, 0.0), p0, 30.0);
        let selected = ViewSelector::top_k(100).select(&space, &fov);
        assert!(selected.len() <= 4, "only site 0's streams can contribute");
    }

    #[test]
    #[should_panic(expected = "min_score")]
    fn rejects_out_of_range_threshold() {
        let _ = ViewSelector::threshold(1.5);
    }
}
