//! Minimal 3D vector math for cyber-space geometry.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A 3D vector (or point) in cyber-space coordinates, in meters.
///
/// # Examples
///
/// ```
/// use teeve_geometry::Vec3;
///
/// let a = Vec3::new(1.0, 0.0, 0.0);
/// let b = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(a.dot(b), 0.0);
/// assert!((a.angle_to(b).to_degrees() - 90.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Returns the dot product with `other`.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Returns the cross product with `other`.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Returns the Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the unit vector in this direction, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns the angle to `other` in radians, in `[0, π]`.
    ///
    /// The angle between anything and a zero vector is defined as `π`
    /// (maximally misaligned), which makes contribution scores of degenerate
    /// camera configurations bottom out instead of being NaN.
    pub fn angle_to(self, other: Vec3) -> f64 {
        match (self.normalized(), other.normalized()) {
            (Some(a), Some(b)) => a.dot(b).clamp(-1.0, 1.0).acos(),
            _ => std::f64::consts::PI,
        }
    }

    /// Returns the distance to `other` interpreted as points.
    pub fn distance_to(self, other: Vec3) -> f64 {
        (self - other).norm()
    }
}

impl Add for Vec3 {
    type Output = Vec3;

    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;

    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;

    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;

    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;

    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v + Vec3::ZERO, v);
        assert_eq!(v - v, Vec3::ZERO);
        assert_eq!(v * 1.0, v);
        assert_eq!(v / 1.0, v);
        assert_eq!(-(-v), v);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).norm(), 1.0);
        assert!((Vec3::new(1.0, 1.0, 1.0).norm() - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert_eq!(Vec3::ZERO.normalized(), None);
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(v, Vec3::new(0.0, 0.6, 0.8));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn angles_between_axes() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert!((x.angle_to(y) - FRAC_PI_2).abs() < 1e-12);
        assert!(x.angle_to(x).abs() < 1e-12);
        assert!((x.angle_to(-x) - PI).abs() < 1e-12);
    }

    #[test]
    fn angle_with_zero_vector_is_pi() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        assert_eq!(x.angle_to(Vec3::ZERO), PI);
        assert_eq!(Vec3::ZERO.angle_to(x), PI);
    }

    #[test]
    fn distance_between_points() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(4.0, 5.0, 1.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Vec3::ZERO.to_string(), "(0.000, 0.000, 0.000)");
    }
}
