//! Background subtraction (the paper's reference \[11\]): keep only pixels
//! whose depth says "person", drop the open background.
//!
//! The output is a sparse [`ForegroundFrame`]: explicit `(x, y, color,
//! depth)` samples. At a typical 15–35 % subject occupancy this is already
//! a 3–5× byte reduction before compression.

use serde::{Deserialize, Serialize};

use crate::frame::{RawFrame, Rgb, DEPTH_FAR_MM};

/// Bytes per sparse foreground sample on the wire: x (2) + y (2) +
/// color (3) + depth (2).
pub const BYTES_PER_SAMPLE: u64 = 9;

/// One retained foreground sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForegroundPixel {
    /// Column in the source frame.
    pub x: u16,
    /// Row in the source frame.
    pub y: u16,
    /// Color sample.
    pub color: Rgb,
    /// Depth in millimetres (always closer than the subtraction
    /// threshold).
    pub depth_mm: u16,
}

/// A sparse frame holding only the subject's pixels, in row-major order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForegroundFrame {
    width: u32,
    height: u32,
    pixels: Vec<ForegroundPixel>,
}

impl ForegroundFrame {
    /// Assembles a foreground frame from already-extracted samples.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero, any sample lies outside them, or
    /// the samples are not strictly row-major ordered (the codec relies on
    /// monotone positions).
    pub fn new(width: u32, height: u32, pixels: Vec<ForegroundPixel>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        let mut prev: Option<u64> = None;
        for p in &pixels {
            assert!(
                u32::from(p.x) < width && u32::from(p.y) < height,
                "sample ({}, {}) outside {width}x{height}",
                p.x,
                p.y
            );
            let linear = u64::from(p.y) * u64::from(width) + u64::from(p.x);
            if let Some(prev) = prev {
                assert!(linear > prev, "samples must be strictly row-major");
            }
            prev = Some(linear);
        }
        ForegroundFrame {
            width,
            height,
            pixels,
        }
    }

    /// Returns the source frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the source frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Returns the retained samples in row-major order.
    pub fn pixels(&self) -> &[ForegroundPixel] {
        &self.pixels
    }

    /// Returns the number of retained samples.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Returns true if nothing was retained (empty scene).
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Returns the sparse wire size in bytes ([`BYTES_PER_SAMPLE`] each).
    pub fn byte_size(&self) -> u64 {
        self.pixels.len() as u64 * BYTES_PER_SAMPLE
    }

    /// Returns the fraction of source pixels retained.
    pub fn retention(&self) -> f64 {
        self.pixels.len() as f64 / (f64::from(self.width) * f64::from(self.height))
    }

    /// Re-densifies into a [`RawFrame`] (background pixels become far
    /// black), the inverse of subtraction up to the dropped background.
    pub fn to_raw(&self) -> RawFrame {
        let mut frame = RawFrame::new(self.width, self.height);
        for p in &self.pixels {
            frame.set(u32::from(p.x), u32::from(p.y), p.color, p.depth_mm);
        }
        frame
    }
}

/// Depth-keyed background subtractor.
///
/// Keeps a pixel iff its depth is strictly closer than the configured
/// threshold — the standard range-gate used when the capture volume has a
/// known extent (a 3DTI booth).
///
/// # Examples
///
/// ```
/// use teeve_media::{BackgroundSubtractor, SyntheticCapture};
///
/// let cam = SyntheticCapture::new(64, 48, 1);
/// let raw = cam.capture(0.0, 0);
/// let fg = BackgroundSubtractor::new(4_000).subtract(&raw);
/// // Subtraction shrinks the frame and keeps only real geometry.
/// assert!(fg.byte_size() < raw.byte_size());
/// assert!((fg.retention() - raw.occupancy()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackgroundSubtractor {
    threshold_mm: u16,
}

impl BackgroundSubtractor {
    /// Creates a subtractor keeping pixels strictly closer than
    /// `threshold_mm`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero (nothing could ever be retained).
    pub fn new(threshold_mm: u16) -> Self {
        assert!(threshold_mm > 0, "threshold must be positive");
        BackgroundSubtractor { threshold_mm }
    }

    /// Returns the depth threshold in millimetres.
    pub fn threshold_mm(&self) -> u16 {
        self.threshold_mm
    }

    /// Extracts the foreground of `frame`.
    pub fn subtract(&self, frame: &RawFrame) -> ForegroundFrame {
        let mut pixels = Vec::new();
        for y in 0..frame.height() {
            for x in 0..frame.width() {
                let depth = frame.depth(x, y);
                if depth < self.threshold_mm && depth != DEPTH_FAR_MM {
                    pixels.push(ForegroundPixel {
                        x: x as u16,
                        y: y as u16,
                        color: frame.color(x, y),
                        depth_mm: depth,
                    });
                }
            }
        }
        ForegroundFrame::new(frame.width(), frame.height(), pixels)
    }
}

impl Default for BackgroundSubtractor {
    /// A 4 m range gate, matching the default synthetic booth (subject at
    /// ≈2 m).
    fn default() -> Self {
        BackgroundSubtractor::new(4_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::SyntheticCapture;

    #[test]
    fn subtraction_keeps_exactly_the_near_pixels() {
        let mut raw = RawFrame::new(4, 4);
        raw.set(0, 0, Rgb::new(1, 1, 1), 100);
        raw.set(3, 3, Rgb::new(2, 2, 2), 5_000);
        let fg = BackgroundSubtractor::new(1_000).subtract(&raw);
        assert_eq!(fg.len(), 1);
        assert_eq!(fg.pixels()[0].x, 0);
        assert_eq!(fg.pixels()[0].depth_mm, 100);
    }

    #[test]
    fn threshold_is_strict() {
        let mut raw = RawFrame::new(2, 1);
        raw.set(0, 0, Rgb::default(), 999);
        raw.set(1, 0, Rgb::default(), 1_000);
        let fg = BackgroundSubtractor::new(1_000).subtract(&raw);
        assert_eq!(fg.len(), 1);
    }

    #[test]
    fn roundtrip_through_to_raw_preserves_foreground() {
        let cam = SyntheticCapture::new(64, 48, 17);
        let raw = cam.capture(0.2, 3);
        let fg = BackgroundSubtractor::default().subtract(&raw);
        let back = fg.to_raw();
        for p in fg.pixels() {
            assert_eq!(back.color(u32::from(p.x), u32::from(p.y)), p.color);
            assert_eq!(back.depth(u32::from(p.x), u32::from(p.y)), p.depth_mm);
        }
        assert!((back.occupancy() - fg.retention()).abs() < 1e-12);
    }

    #[test]
    fn samples_are_row_major() {
        let cam = SyntheticCapture::new(32, 32, 2);
        let fg = BackgroundSubtractor::default().subtract(&cam.capture(0.0, 0));
        let linear: Vec<u64> = fg
            .pixels()
            .iter()
            .map(|p| u64::from(p.y) * 32 + u64::from(p.x))
            .collect();
        assert!(linear.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn unordered_samples_panic() {
        let p = |x, y| ForegroundPixel {
            x,
            y,
            color: Rgb::default(),
            depth_mm: 1,
        };
        let _ = ForegroundFrame::new(4, 4, vec![p(2, 0), p(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_sample_panics() {
        let p = ForegroundPixel {
            x: 9,
            y: 0,
            color: Rgb::default(),
            depth_mm: 1,
        };
        let _ = ForegroundFrame::new(4, 4, vec![p]);
    }

    #[test]
    fn empty_scene_yields_empty_frame() {
        let fg = BackgroundSubtractor::new(100).subtract(&RawFrame::new(8, 8));
        assert!(fg.is_empty());
        assert_eq!(fg.byte_size(), 0);
        assert_eq!(fg.retention(), 0.0);
    }
}
