//! Synthetic 3D capture: a deterministic, procedural stand-in for a real
//! 3D camera (substitution S2 in DESIGN.md).
//!
//! Each [`SyntheticCapture`] renders the same scene every 3DTI paper
//! photograph shows: a person in front of an open background, seen from a
//! configurable azimuth. The person is modelled as a torso ellipse plus a
//! head circle in image space, swaying horizontally over time so frames
//! differ and motion-dependent code paths (compression deltas, adaptation)
//! are exercised. Rendering is a pure function of `(parameters, azimuth,
//! seq)` — no RNG state — so captures are reproducible across platforms
//! and threads.

use crate::frame::{RawFrame, Rgb, DEPTH_FAR_MM};

/// Deterministic integer hash used for per-pixel noise (a 64-bit mix in
/// the SplitMix64 family). Pure and seedable, unlike an RNG stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Noise in `0..amplitude` for pixel `(x, y)` of frame `seq` under `seed`.
fn pixel_noise(seed: u64, x: u32, y: u32, seq: u64, amplitude: u32) -> u32 {
    if amplitude == 0 {
        return 0;
    }
    let h = mix(seed ^ (u64::from(x) << 40) ^ (u64::from(y) << 20) ^ seq);
    (h % u64::from(amplitude)) as u32
}

/// A deterministic synthetic 3D camera.
///
/// # Examples
///
/// ```
/// use teeve_media::SyntheticCapture;
///
/// let cam = SyntheticCapture::new(64, 48, 7);
/// let frame = cam.capture(0.0, 0);
/// // A person fills a believable fraction of the view.
/// assert!(frame.occupancy() > 0.05 && frame.occupancy() < 0.6);
/// // Identical inputs give identical frames.
/// assert_eq!(frame, cam.capture(0.0, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticCapture {
    width: u32,
    height: u32,
    seed: u64,
    /// Distance from camera to the subject's torso centre, millimetres.
    subject_depth_mm: u16,
    /// Depth noise amplitude, millimetres (sensor jitter).
    depth_noise_mm: u32,
    /// Torso color (clothing).
    torso_color: Rgb,
    /// Head color (skin tone).
    head_color: Rgb,
}

impl SyntheticCapture {
    /// Creates a capture source with the given frame dimensions and seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        SyntheticCapture {
            width,
            height,
            seed,
            subject_depth_mm: 2_000,
            depth_noise_mm: 12,
            torso_color: Rgb::new(40, 70, 160),
            head_color: Rgb::new(224, 172, 105),
        }
    }

    /// Sets the subject distance in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if `depth_mm` is zero or `DEPTH_FAR_MM`.
    pub fn with_subject_depth(mut self, depth_mm: u16) -> Self {
        assert!(
            depth_mm > 0 && depth_mm < DEPTH_FAR_MM,
            "subject depth must be a real sensor reading"
        );
        self.subject_depth_mm = depth_mm;
        self
    }

    /// Sets the depth sensor noise amplitude in millimetres.
    pub fn with_depth_noise(mut self, noise_mm: u32) -> Self {
        self.depth_noise_mm = noise_mm;
        self
    }

    /// Sets the torso (clothing) color, e.g. to distinguish sites.
    pub fn with_torso_color(mut self, color: Rgb) -> Self {
        self.torso_color = color;
        self
    }

    /// Returns the frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Renders frame `seq` as seen from `azimuth_rad` (0 = frontal view,
    /// ±π/2 = profile). The torso narrows towards profile views, exactly
    /// the effect that makes side cameras contribute less to a frontal
    /// field of view.
    pub fn capture(&self, azimuth_rad: f64, seq: u64) -> RawFrame {
        let w = f64::from(self.width);
        let h = f64::from(self.height);

        // Sway: the subject shifts horizontally over time.
        let sway = (seq as f64 * 0.35).sin() * 0.08;
        let cx = w * (0.5 + sway);

        // Torso: ellipse centred below the middle; its half-width narrows
        // with the view angle (frontal silhouette is widest).
        let frontal = azimuth_rad.cos().abs();
        let torso_rx = w * (0.10 + 0.12 * frontal);
        let torso_ry = h * 0.28;
        let torso_cy = h * 0.62;

        // Head: circle above the torso.
        let head_r = h * 0.10;
        let head_cy = torso_cy - torso_ry - head_r * 0.6;

        RawFrame::from_fn(self.width, self.height, |x, y| {
            let fx = f64::from(x) + 0.5;
            let fy = f64::from(y) + 0.5;

            let in_torso = {
                let dx = (fx - cx) / torso_rx;
                let dy = (fy - torso_cy) / torso_ry;
                dx * dx + dy * dy <= 1.0
            };
            let in_head = {
                let dx = fx - cx;
                let dy = fy - head_cy;
                dx * dx + dy * dy <= head_r * head_r
            };

            if in_head || in_torso {
                // Surface depth bulges towards the silhouette centre and
                // carries sensor noise.
                let bulge = ((fx - cx).abs() / torso_rx.max(1.0) * 60.0) as u16;
                let noise = pixel_noise(self.seed, x, y, seq, self.depth_noise_mm) as u16;
                let depth = self
                    .subject_depth_mm
                    .saturating_add(bulge)
                    .saturating_add(noise);
                let base = if in_head {
                    self.head_color
                } else {
                    self.torso_color
                };
                // Slight per-pixel shading so color RLE runs are realistic
                // but not degenerate.
                let shade = pixel_noise(self.seed ^ 0xC0FFEE, x, y / 4, seq, 8) as u8;
                (
                    Rgb::new(
                        base.r.saturating_add(shade),
                        base.g.saturating_add(shade),
                        base.b.saturating_add(shade),
                    ),
                    depth,
                )
            } else {
                // Open background: no depth return. Color is irrelevant to
                // the pipeline (background subtraction removes it) but
                // kept plausible.
                (Rgb::new(24, 24, 28), DEPTH_FAR_MM)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_deterministic() {
        let cam = SyntheticCapture::new(80, 60, 42);
        assert_eq!(cam.capture(0.3, 5), cam.capture(0.3, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCapture::new(80, 60, 1).capture(0.0, 0);
        let b = SyntheticCapture::new(80, 60, 2).capture(0.0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn consecutive_frames_differ_by_motion() {
        let cam = SyntheticCapture::new(80, 60, 3);
        assert_ne!(cam.capture(0.0, 0), cam.capture(0.0, 1));
    }

    #[test]
    fn frontal_view_is_wider_than_profile() {
        let cam = SyntheticCapture::new(160, 120, 9).with_depth_noise(0);
        let frontal = cam.capture(0.0, 0).occupancy();
        let profile = cam.capture(std::f64::consts::FRAC_PI_2, 0).occupancy();
        assert!(
            frontal > profile * 1.2,
            "frontal {frontal} should exceed profile {profile}"
        );
    }

    #[test]
    fn subject_occupies_plausible_fraction() {
        let occ = SyntheticCapture::new(640, 480, 11)
            .capture(0.0, 0)
            .occupancy();
        assert!((0.1..0.45).contains(&occ), "occupancy {occ}");
    }

    #[test]
    fn subject_depth_is_respected() {
        let cam = SyntheticCapture::new(64, 48, 5)
            .with_subject_depth(1_234)
            .with_depth_noise(0);
        let frame = cam.capture(0.0, 0);
        let min_depth = (0..48)
            .flat_map(|y| (0..64).map(move |x| (x, y)))
            .map(|(x, y)| frame.depth(x, y))
            .min()
            .unwrap();
        // The surface bulge adds a few millimetres even at the silhouette
        // centre; the configured depth is the floor.
        assert!((1_234..1_244).contains(&min_depth), "min depth {min_depth}");
    }

    #[test]
    fn noise_is_bounded() {
        for seq in 0..4 {
            let n = pixel_noise(99, 3, 4, seq, 10);
            assert!(n < 10);
        }
        assert_eq!(pixel_noise(99, 0, 0, 0, 0), 0);
    }
}
