//! Real-time 3D frame compression (the paper's references [13, 14, 25]).
//!
//! A compact, fully reversible entropy-light codec for sparse foreground
//! frames, built from the primitives those systems use:
//!
//! * **positions** — row-major linear indices, delta + varint coded
//!   (deltas are small on a solid silhouette);
//! * **depth** — quantized to a configurable millimetre step, then
//!   delta + zigzag + varint coded (neighbouring surface depths are
//!   close);
//! * **color** — RGB565 quantization followed by run-length coding
//!   (clothing regions run long).
//!
//! Decoding reverses every stage exactly, so the codec is lossless *on the
//! quantized values*: positions are exact, depth is within half a
//! quantization step, color within the RGB565 rounding.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::background::{ForegroundFrame, ForegroundPixel};
use crate::frame::Rgb;

/// Format version written into every compressed frame.
const FORMAT_VERSION: u8 = 1;

/// A compressed 3D frame. (Wire data already — serialize the raw bytes,
/// not a serde wrapper.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedFrame {
    bytes: Bytes,
}

impl CompressedFrame {
    /// Returns the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns the compressed size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Consumes the frame, returning its encoded bytes.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }
}

/// Error produced while decoding a [`CompressedFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the declared content.
    Truncated,
    /// The header version byte is unknown.
    UnknownVersion {
        /// The version byte found.
        version: u8,
    },
    /// A decoded position fell outside the frame.
    PositionOutOfBounds {
        /// The offending linear index.
        linear: u64,
        /// Number of pixels in the frame.
        pixels: u64,
    },
    /// Bytes remained after the declared content.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A varint ran past its maximum width.
    MalformedVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed frame truncated"),
            CodecError::UnknownVersion { version } => {
                write!(f, "unknown format version {version}")
            }
            CodecError::PositionOutOfBounds { linear, pixels } => {
                write!(f, "position {linear} outside frame of {pixels} pixels")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after frame content")
            }
            CodecError::MalformedVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Writes `value` as a LEB128 varint.
fn put_varint(dst: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            dst.put_u8(byte);
            return;
        }
        dst.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
fn get_varint(src: &mut Bytes) -> Result<u64, CodecError> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        if src.is_empty() {
            return Err(CodecError::Truncated);
        }
        let byte = src.get_u8();
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(CodecError::MalformedVarint)
}

/// Maps a signed delta to an unsigned zigzag code.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The real-time 3D frame codec.
///
/// # Examples
///
/// ```
/// use teeve_media::{BackgroundSubtractor, Codec, SyntheticCapture};
///
/// let raw = SyntheticCapture::new(64, 48, 1).capture(0.0, 0);
/// let fg = BackgroundSubtractor::default().subtract(&raw);
/// let codec = Codec::new(4);
/// let compressed = codec.encode(&fg);
/// assert!(compressed.byte_size() < fg.byte_size());
///
/// let decoded = codec.decode(&compressed)?;
/// assert_eq!(decoded.len(), fg.len());
/// # Ok::<(), teeve_media::CodecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Codec {
    depth_quant_mm: u16,
}

impl Codec {
    /// Creates a codec quantizing depth to `depth_quant_mm` steps
    /// (1 = lossless depth).
    ///
    /// # Panics
    ///
    /// Panics if the step is zero.
    pub fn new(depth_quant_mm: u16) -> Self {
        assert!(
            depth_quant_mm > 0,
            "depth quantization step must be nonzero"
        );
        Codec { depth_quant_mm }
    }

    /// Returns the depth quantization step in millimetres.
    pub fn depth_quant_mm(&self) -> u16 {
        self.depth_quant_mm
    }

    /// Encodes `frame`.
    pub fn encode(&self, frame: &ForegroundFrame) -> CompressedFrame {
        let mut dst = BytesMut::with_capacity(frame.len() * 4 + 32);
        dst.put_u8(FORMAT_VERSION);
        put_varint(&mut dst, u64::from(frame.width()));
        put_varint(&mut dst, u64::from(frame.height()));
        put_varint(&mut dst, frame.len() as u64);
        put_varint(&mut dst, u64::from(self.depth_quant_mm));

        // Positions: strictly increasing linear indices, delta coded with
        // an implicit previous of -1 (so every delta is >= 1 and we code
        // delta - 1).
        let width = u64::from(frame.width());
        let mut prev_linear: i64 = -1;
        for p in frame.pixels() {
            let linear = (u64::from(p.y) * width + u64::from(p.x)) as i64;
            put_varint(&mut dst, (linear - prev_linear - 1) as u64);
            prev_linear = linear;
        }

        // Depth: quantize (round to nearest step), then delta + zigzag.
        let q = i64::from(self.depth_quant_mm);
        let mut prev_depth = 0i64;
        for p in frame.pixels() {
            let quantized = (i64::from(p.depth_mm) + q / 2) / q;
            put_varint(&mut dst, zigzag(quantized - prev_depth));
            prev_depth = quantized;
        }

        // Color: RGB565 + run-length.
        let mut i = 0;
        let pixels = frame.pixels();
        while i < pixels.len() {
            let word = pixels[i].color.to_rgb565();
            let mut run = 1u64;
            while i + (run as usize) < pixels.len()
                && pixels[i + run as usize].color.to_rgb565() == word
            {
                run += 1;
            }
            put_varint(&mut dst, run);
            put_varint(&mut dst, u64::from(word));
            i += run as usize;
        }

        CompressedFrame {
            bytes: dst.freeze(),
        }
    }

    /// Decodes `frame` back into a sparse foreground frame.
    ///
    /// The result carries the *quantized* depth and RGB565-rounded color;
    /// re-encoding it reproduces the same bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation, unknown version, out-of-bounds
    /// positions, malformed varints, or trailing bytes.
    pub fn decode(&self, frame: &CompressedFrame) -> Result<ForegroundFrame, CodecError> {
        let mut src = frame.bytes.clone();
        if src.is_empty() {
            return Err(CodecError::Truncated);
        }
        let version = src.get_u8();
        if version != FORMAT_VERSION {
            return Err(CodecError::UnknownVersion { version });
        }
        let width = get_varint(&mut src)? as u32;
        let height = get_varint(&mut src)? as u32;
        let count = get_varint(&mut src)? as usize;
        let quant = get_varint(&mut src)? as i64;
        if width == 0 || height == 0 || quant == 0 {
            return Err(CodecError::Truncated);
        }
        let pixel_total = u64::from(width) * u64::from(height);

        let mut positions = Vec::with_capacity(count);
        let mut prev_linear: i64 = -1;
        for _ in 0..count {
            let delta = get_varint(&mut src)? as i64;
            let linear = prev_linear + 1 + delta;
            if linear as u64 >= pixel_total {
                return Err(CodecError::PositionOutOfBounds {
                    linear: linear as u64,
                    pixels: pixel_total,
                });
            }
            positions.push(linear as u64);
            prev_linear = linear;
        }

        let mut depths = Vec::with_capacity(count);
        let mut prev_depth = 0i64;
        for _ in 0..count {
            let quantized = prev_depth + unzigzag(get_varint(&mut src)?);
            let mm = (quantized * quant).clamp(0, i64::from(u16::MAX)) as u16;
            depths.push(mm);
            prev_depth = quantized;
        }

        let mut colors = Vec::with_capacity(count);
        while colors.len() < count {
            let run = get_varint(&mut src)? as usize;
            let word = get_varint(&mut src)? as u16;
            if run == 0 || colors.len() + run > count {
                return Err(CodecError::Truncated);
            }
            colors.extend(std::iter::repeat_n(Rgb::from_rgb565(word), run));
        }
        if !src.is_empty() {
            return Err(CodecError::TrailingBytes {
                remaining: src.len(),
            });
        }

        let pixels = positions
            .iter()
            .zip(&depths)
            .zip(&colors)
            .map(|((&linear, &depth_mm), &color)| ForegroundPixel {
                x: (linear % u64::from(width)) as u16,
                y: (linear / u64::from(width)) as u16,
                color,
                depth_mm,
            })
            .collect();
        Ok(ForegroundFrame::new(width, height, pixels))
    }
}

impl Default for Codec {
    /// A 4 mm depth step — invisible at the paper's rendering scale.
    fn default() -> Self {
        Codec::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundSubtractor;
    use crate::capture::SyntheticCapture;

    fn sample_frame() -> ForegroundFrame {
        let raw = SyntheticCapture::new(96, 72, 5).capture(0.1, 7);
        BackgroundSubtractor::default().subtract(&raw)
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn positions_survive_exactly() {
        let fg = sample_frame();
        let codec = Codec::default();
        let decoded = codec.decode(&codec.encode(&fg)).unwrap();
        let pos = |f: &ForegroundFrame| -> Vec<(u16, u16)> {
            f.pixels().iter().map(|p| (p.x, p.y)).collect()
        };
        assert_eq!(pos(&decoded), pos(&fg));
    }

    #[test]
    fn depth_error_is_within_half_a_step() {
        let fg = sample_frame();
        for step in [1u16, 2, 4, 16] {
            let codec = Codec::new(step);
            let decoded = codec.decode(&codec.encode(&fg)).unwrap();
            for (a, b) in fg.pixels().iter().zip(decoded.pixels()) {
                let err = i32::from(a.depth_mm).abs_diff(i32::from(b.depth_mm));
                assert!(err <= u32::from(step) / 2 + 1, "step {step}, error {err}");
            }
        }
    }

    #[test]
    fn unit_step_depth_is_lossless() {
        let fg = sample_frame();
        let codec = Codec::new(1);
        let decoded = codec.decode(&codec.encode(&fg)).unwrap();
        for (a, b) in fg.pixels().iter().zip(decoded.pixels()) {
            assert_eq!(a.depth_mm, b.depth_mm);
        }
    }

    #[test]
    fn reencoding_decoded_frame_is_identical() {
        let codec = Codec::default();
        let first = codec.encode(&sample_frame());
        let second = codec.encode(&codec.decode(&first).unwrap());
        assert_eq!(first, second);
    }

    #[test]
    fn compression_beats_sparse_representation() {
        let fg = sample_frame();
        let compressed = Codec::default().encode(&fg);
        assert!(
            compressed.byte_size() * 2 < fg.byte_size(),
            "compressed {} vs sparse {}",
            compressed.byte_size(),
            fg.byte_size()
        );
    }

    #[test]
    fn empty_frame_roundtrips() {
        let fg = ForegroundFrame::new(8, 8, Vec::new());
        let codec = Codec::default();
        let decoded = codec.decode(&codec.encode(&fg)).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.width(), 8);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let fg = sample_frame();
        let codec = Codec::default();
        let full = codec.encode(&fg);
        let cut = CompressedFrame {
            bytes: full.into_bytes().slice(0..10),
        };
        assert!(codec.decode(&cut).is_err());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_u8(99);
        let frame = CompressedFrame {
            bytes: bytes.freeze(),
        };
        assert_eq!(
            Codec::default().decode(&frame),
            Err(CodecError::UnknownVersion { version: 99 })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let codec = Codec::default();
        let mut bytes = BytesMut::from(codec.encode(&sample_frame()).as_bytes());
        bytes.put_u8(0);
        let frame = CompressedFrame {
            bytes: bytes.freeze(),
        };
        assert!(matches!(
            codec.decode(&frame),
            Err(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn empty_input_is_rejected() {
        let frame = CompressedFrame {
            bytes: Bytes::new(),
        };
        assert_eq!(Codec::default().decode(&frame), Err(CodecError::Truncated));
    }
}
