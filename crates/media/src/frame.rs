//! Raw 3D video frames: per-pixel color and depth.
//!
//! The paper's arithmetic (Section 1) treats one raw frame as
//! `width × height` pixels of 5 bytes each — 3 bytes of color plus 2 bytes
//! of depth — so a 640 × 480 stream at 15 fps consumes
//! `640 × 480 × 15 × 5 B ≈ 180 Mbps` before reduction. [`RawFrame`]
//! reproduces exactly that layout.

use serde::{Deserialize, Serialize};

/// Default capture width in pixels (the paper's 640).
pub const FRAME_WIDTH: u32 = 640;
/// Default capture height in pixels (the paper's 480).
pub const FRAME_HEIGHT: u32 = 480;
/// Default capture rate in frames per second (the paper's 15).
pub const FRAME_FPS: u32 = 15;
/// Bytes per raw pixel: 3 color + 2 depth (the paper's "5B/pixel").
pub const BYTES_PER_PIXEL: u64 = 5;

/// Depth value marking "no geometry here" (an open background beyond the
/// sensor range). Chosen as the maximum representable millimetre depth so
/// background is always *farther* than any real surface.
pub const DEPTH_FAR_MM: u16 = u16::MAX;

/// A 24-bit RGB color sample.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a color from its three channels.
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Quantizes to RGB565 (5-6-5 bits), the representation used by the
    /// real-time codec.
    pub fn to_rgb565(self) -> u16 {
        (u16::from(self.r >> 3) << 11) | (u16::from(self.g >> 2) << 5) | u16::from(self.b >> 3)
    }

    /// Expands an RGB565 word back to 24-bit color (upper bits replicated
    /// into the lost low bits, the standard reconstruction).
    pub fn from_rgb565(word: u16) -> Self {
        let r5 = ((word >> 11) & 0x1F) as u8;
        let g6 = ((word >> 5) & 0x3F) as u8;
        let b5 = (word & 0x1F) as u8;
        Rgb {
            r: (r5 << 3) | (r5 >> 2),
            g: (g6 << 2) | (g6 >> 4),
            b: (b5 << 3) | (b5 >> 2),
        }
    }
}

/// One raw captured 3D frame: dense color and depth planes.
///
/// # Examples
///
/// ```
/// use teeve_media::{RawFrame, Rgb};
///
/// let mut frame = RawFrame::new(4, 2);
/// frame.set(1, 0, Rgb::new(200, 10, 10), 1500);
/// assert_eq!(frame.depth(1, 0), 1500);
/// assert_eq!(frame.byte_size(), 4 * 2 * 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawFrame {
    width: u32,
    height: u32,
    colors: Vec<Rgb>,
    /// Depth in millimetres; [`DEPTH_FAR_MM`] marks open background.
    depths: Vec<u16>,
}

impl RawFrame {
    /// Creates an empty frame: black color, far depth everywhere.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        let pixels = (width * height) as usize;
        RawFrame {
            width,
            height,
            colors: vec![Rgb::default(); pixels],
            depths: vec![DEPTH_FAR_MM; pixels],
        }
    }

    /// Creates a frame by evaluating `f(x, y) -> (color, depth_mm)` at
    /// every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> (Rgb, u16)) -> Self {
        let mut frame = RawFrame::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let (color, depth) = f(x, y);
                frame.set(x, y, color, depth);
            }
        }
        frame
    }

    /// Returns the frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Returns the number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.colors.len()
    }

    fn index(&self, x: u32, y: u32) -> usize {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        (y * self.width + x) as usize
    }

    /// Returns the color at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn color(&self, x: u32, y: u32) -> Rgb {
        self.colors[self.index(x, y)]
    }

    /// Returns the depth at `(x, y)` in millimetres.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn depth(&self, x: u32, y: u32) -> u16 {
        self.depths[self.index(x, y)]
    }

    /// Sets color and depth at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: u32, y: u32, color: Rgb, depth_mm: u16) {
        let i = self.index(x, y);
        self.colors[i] = color;
        self.depths[i] = depth_mm;
    }

    /// Returns the raw wire size in bytes at the paper's 5 B/pixel.
    pub fn byte_size(&self) -> u64 {
        self.pixel_count() as u64 * BYTES_PER_PIXEL
    }

    /// Returns the fraction of pixels carrying real geometry (depth closer
    /// than [`DEPTH_FAR_MM`]).
    pub fn occupancy(&self) -> f64 {
        if self.depths.is_empty() {
            return 0.0;
        }
        let hits = self.depths.iter().filter(|&&d| d != DEPTH_FAR_MM).count();
        hits as f64 / self.depths.len() as f64
    }
}

/// Returns the raw bit rate of a stream in bits per second:
/// `width × height × fps × 5 B × 8`.
///
/// # Examples
///
/// ```
/// use teeve_media::raw_bitrate_bps;
///
/// // The paper's ≈180 Mbps figure.
/// let bps = raw_bitrate_bps(640, 480, 15);
/// assert_eq!(bps, 184_320_000);
/// ```
pub fn raw_bitrate_bps(width: u32, height: u32, fps: u32) -> u64 {
    u64::from(width) * u64::from(height) * u64::from(fps) * BYTES_PER_PIXEL * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_raw_rate_is_about_180_mbps() {
        let bps = raw_bitrate_bps(FRAME_WIDTH, FRAME_HEIGHT, FRAME_FPS);
        assert!((180_000_000..190_000_000).contains(&bps));
    }

    #[test]
    fn new_frame_is_far_everywhere() {
        let f = RawFrame::new(8, 8);
        assert_eq!(f.occupancy(), 0.0);
        assert_eq!(f.depth(7, 7), DEPTH_FAR_MM);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut f = RawFrame::new(3, 3);
        f.set(2, 1, Rgb::new(1, 2, 3), 777);
        assert_eq!(f.color(2, 1), Rgb::new(1, 2, 3));
        assert_eq!(f.depth(2, 1), 777);
        assert!(f.occupancy() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let f = RawFrame::new(2, 2);
        let _ = f.depth(2, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = RawFrame::new(0, 4);
    }

    #[test]
    fn from_fn_visits_every_pixel() {
        let f = RawFrame::from_fn(4, 3, |x, y| (Rgb::new(x as u8, y as u8, 0), (x + y) as u16));
        assert_eq!(f.depth(3, 2), 5);
        assert_eq!(f.color(0, 2), Rgb::new(0, 2, 0));
    }

    #[test]
    fn byte_size_is_five_bytes_per_pixel() {
        assert_eq!(RawFrame::new(10, 10).byte_size(), 500);
    }

    #[test]
    fn rgb565_roundtrip_is_close() {
        for color in [
            Rgb::new(0, 0, 0),
            Rgb::new(255, 255, 255),
            Rgb::new(200, 100, 50),
            Rgb::new(17, 93, 211),
        ] {
            let back = Rgb::from_rgb565(color.to_rgb565());
            assert!(i16::from(back.r).abs_diff(i16::from(color.r)) <= 7);
            assert!(i16::from(back.g).abs_diff(i16::from(color.g)) <= 3);
            assert!(i16::from(back.b).abs_diff(i16::from(color.b)) <= 7);
        }
    }

    #[test]
    fn rgb565_is_idempotent_on_quantized_colors() {
        let quantized = Rgb::from_rgb565(Rgb::new(123, 45, 67).to_rgb565());
        assert_eq!(Rgb::from_rgb565(quantized.to_rgb565()), quantized);
    }

    #[test]
    fn occupancy_counts_fraction() {
        let mut f = RawFrame::new(2, 2);
        f.set(0, 0, Rgb::default(), 100);
        f.set(1, 1, Rgb::default(), 100);
        assert_eq!(f.occupancy(), 0.5);
    }
}
