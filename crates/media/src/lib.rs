//! Synthetic 3D video pipeline for tele-immersive streams.
//!
//! The paper's bandwidth story (Section 1) starts from a raw 3D stream of
//! `640 × 480 × 15 fps × 5 B/pixel ≈ 180 Mbps` and relies on a chain of
//! reduction techniques — background subtraction \[11\], resolution
//! reduction, and real-time 3D compression \[13, 14, 25\] — to reach the
//! 5–10 Mbps per stream its evaluation assumes. This crate implements that
//! chain end to end on synthetic captures (substitution S2 in DESIGN.md:
//! no camera hardware, same code paths):
//!
//! * [`SyntheticCapture`] — deterministic procedural 3D camera;
//! * [`RawFrame`] — dense color + depth at the paper's 5 B/pixel;
//! * [`BackgroundSubtractor`] — depth range gate to a sparse
//!   [`ForegroundFrame`];
//! * [`Downsampler`] — block-averaging resolution reduction;
//! * [`Codec`] — reversible delta/varint/RLE compressor;
//! * [`ReductionPipeline`] — the full chain with per-stage byte
//!   accounting ([`PipelineStats`]).
//!
//! # Examples
//!
//! ```
//! use teeve_media::{PipelineStats, ReductionPipeline, SyntheticCapture};
//!
//! let camera = SyntheticCapture::new(640, 480, 42);
//! let pipeline = ReductionPipeline::paper();
//! let mut stats = PipelineStats::new();
//! for seq in 0..10 {
//!     let frame = camera.capture(0.0, seq);
//!     stats.record(&pipeline.process(&frame).bytes);
//! }
//! // 184 Mbps raw compresses into the paper's single-digit Mbps band.
//! assert!(stats.bitrate_mbps(15) < 12.0);
//! assert!(stats.mean_compression_ratio() > 15.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
mod capture;
mod compress;
mod frame;
mod pipeline;
mod resolution;

pub use background::{BackgroundSubtractor, ForegroundFrame, ForegroundPixel, BYTES_PER_SAMPLE};
pub use capture::SyntheticCapture;
pub use compress::{Codec, CodecError, CompressedFrame};
pub use frame::{
    raw_bitrate_bps, RawFrame, Rgb, BYTES_PER_PIXEL, DEPTH_FAR_MM, FRAME_FPS, FRAME_HEIGHT,
    FRAME_WIDTH,
};
pub use pipeline::{PipelineStats, ProcessedFrame, ReductionPipeline, StageBytes};
pub use resolution::Downsampler;
