//! The full reduction chain of the paper's Section 1: background
//! subtraction → resolution reduction → real-time compression, with
//! per-stage byte accounting.
//!
//! [`ReductionPipeline::paper`] is tuned so a raw 640 × 480 × 15 fps
//! stream (≈184 Mbps) lands in the paper's quoted 5–10 Mbps band.

use serde::{Deserialize, Serialize};

use crate::background::BackgroundSubtractor;
use crate::compress::{Codec, CompressedFrame};
use crate::frame::RawFrame;
use crate::resolution::Downsampler;

/// Per-stage byte counts of one processed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageBytes {
    /// Dense input size (5 B/pixel).
    pub raw: u64,
    /// After background subtraction (9 B/sample sparse form).
    pub foreground: u64,
    /// After resolution reduction (same sparse form).
    pub reduced: u64,
    /// Final compressed size.
    pub compressed: u64,
}

impl StageBytes {
    /// Returns the end-to-end compression ratio `raw / compressed`
    /// (infinite for an empty compressed frame is avoided by flooring the
    /// denominator at 1 byte).
    pub fn compression_ratio(&self) -> f64 {
        self.raw as f64 / self.compressed.max(1) as f64
    }
}

/// One frame's pipeline output: the compressed frame plus its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedFrame {
    /// The compressed frame, ready for the wire.
    pub compressed: CompressedFrame,
    /// Per-stage byte counts.
    pub bytes: StageBytes,
}

/// The three-stage reduction pipeline.
///
/// # Examples
///
/// ```
/// use teeve_media::{raw_bitrate_bps, ReductionPipeline, SyntheticCapture};
///
/// let cam = SyntheticCapture::new(640, 480, 1);
/// let pipeline = ReductionPipeline::paper();
/// let mut stats = teeve_media::PipelineStats::default();
/// for seq in 0..5 {
///     stats.record(&pipeline.process(&cam.capture(0.0, seq)).bytes);
/// }
/// // The paper's claim: ~184 Mbps raw shrinks to a handful of Mbps.
/// assert_eq!(raw_bitrate_bps(640, 480, 15), 184_320_000);
/// assert!(stats.bitrate_mbps(15) < 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionPipeline {
    subtractor: BackgroundSubtractor,
    downsampler: Option<Downsampler>,
    codec: Codec,
}

impl ReductionPipeline {
    /// Creates a pipeline from explicit stages (`downsampler = None`
    /// skips resolution reduction).
    pub fn new(
        subtractor: BackgroundSubtractor,
        downsampler: Option<Downsampler>,
        codec: Codec,
    ) -> Self {
        ReductionPipeline {
            subtractor,
            downsampler,
            codec,
        }
    }

    /// The paper's configuration: 4 m range gate, 2× resolution
    /// reduction, 4 mm depth quantization.
    pub fn paper() -> Self {
        ReductionPipeline {
            subtractor: BackgroundSubtractor::default(),
            downsampler: Some(Downsampler::default()),
            codec: Codec::default(),
        }
    }

    /// Returns the background subtraction stage.
    pub fn subtractor(&self) -> BackgroundSubtractor {
        self.subtractor
    }

    /// Returns the resolution reduction stage, if enabled.
    pub fn downsampler(&self) -> Option<Downsampler> {
        self.downsampler
    }

    /// Returns the compression stage.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Runs all stages on one raw frame.
    pub fn process(&self, frame: &RawFrame) -> ProcessedFrame {
        let foreground = self.subtractor.subtract(frame);
        let foreground_bytes = foreground.byte_size();
        let reduced = match self.downsampler {
            Some(d) => d.apply(&foreground),
            None => foreground,
        };
        let reduced_bytes = reduced.byte_size();
        let compressed = self.codec.encode(&reduced);
        let bytes = StageBytes {
            raw: frame.byte_size(),
            foreground: foreground_bytes,
            reduced: reduced_bytes,
            compressed: compressed.byte_size(),
        };
        ProcessedFrame { compressed, bytes }
    }
}

impl Default for ReductionPipeline {
    /// Same as [`ReductionPipeline::paper`].
    fn default() -> Self {
        ReductionPipeline::paper()
    }
}

/// Running statistics over a sequence of processed frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    frames: u64,
    totals: StageBytes,
}

impl PipelineStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        PipelineStats::default()
    }

    /// Records one frame's stage bytes.
    pub fn record(&mut self, bytes: &StageBytes) {
        self.frames += 1;
        self.totals.raw += bytes.raw;
        self.totals.foreground += bytes.foreground;
        self.totals.reduced += bytes.reduced;
        self.totals.compressed += bytes.compressed;
    }

    /// Returns the number of recorded frames.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Returns the accumulated per-stage byte totals.
    pub fn totals(&self) -> StageBytes {
        self.totals
    }

    /// Returns the mean compressed bytes per frame (0 with no frames).
    pub fn mean_compressed_bytes(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.totals.compressed as f64 / self.frames as f64
    }

    /// Returns the mean end-to-end compression ratio (0 with no frames).
    pub fn mean_compression_ratio(&self) -> f64 {
        if self.totals.compressed == 0 {
            return 0.0;
        }
        self.totals.raw as f64 / self.totals.compressed as f64
    }

    /// Returns the stream's compressed bit rate at `fps`, in bits per
    /// second.
    pub fn bitrate_bps(&self, fps: u32) -> f64 {
        self.mean_compressed_bytes() * 8.0 * f64::from(fps)
    }

    /// Returns the stream's compressed bit rate at `fps`, in Mbps.
    pub fn bitrate_mbps(&self, fps: u32) -> f64 {
        self.bitrate_bps(fps) / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::SyntheticCapture;
    use crate::frame::{raw_bitrate_bps, FRAME_FPS, FRAME_HEIGHT, FRAME_WIDTH};

    fn run_pipeline(pipeline: &ReductionPipeline, frames: u64) -> PipelineStats {
        let cam = SyntheticCapture::new(FRAME_WIDTH, FRAME_HEIGHT, 2008);
        let mut stats = PipelineStats::new();
        for seq in 0..frames {
            stats.record(&pipeline.process(&cam.capture(0.4, seq)).bytes);
        }
        stats
    }

    #[test]
    fn stages_shrink_monotonically() {
        let cam = SyntheticCapture::new(320, 240, 3);
        let out = ReductionPipeline::paper().process(&cam.capture(0.0, 0));
        let b = out.bytes;
        assert!(b.raw > b.foreground, "subtraction must reduce bytes");
        assert!(b.foreground > b.reduced, "downsampling must reduce bytes");
        assert!(b.reduced > b.compressed, "compression must reduce bytes");
    }

    #[test]
    fn paper_pipeline_hits_the_5_to_10_mbps_band() {
        let stats = run_pipeline(&ReductionPipeline::paper(), 15);
        let mbps = stats.bitrate_mbps(FRAME_FPS);
        // The paper quotes 5–10 Mbps after the full reduction chain; allow
        // the synthetic scene some slack on the low side.
        assert!((1.0..=12.0).contains(&mbps), "bitrate {mbps} Mbps");
        // And the end-to-end reduction is large.
        assert!(stats.mean_compression_ratio() > 15.0);
    }

    #[test]
    fn raw_rate_matches_paper_arithmetic() {
        let stats = run_pipeline(&ReductionPipeline::paper(), 3);
        let raw_bps = stats.totals().raw as f64 / 3.0 * 8.0 * f64::from(FRAME_FPS);
        assert_eq!(
            raw_bps as u64,
            raw_bitrate_bps(FRAME_WIDTH, FRAME_HEIGHT, FRAME_FPS)
        );
    }

    #[test]
    fn skipping_downsampling_costs_bits() {
        let with = run_pipeline(&ReductionPipeline::paper(), 5);
        let without = run_pipeline(
            &ReductionPipeline::new(BackgroundSubtractor::default(), None, Codec::default()),
            5,
        );
        assert!(without.bitrate_bps(FRAME_FPS) > with.bitrate_bps(FRAME_FPS) * 1.5);
    }

    #[test]
    fn compressed_output_decodes() {
        let cam = SyntheticCapture::new(160, 120, 7);
        let pipeline = ReductionPipeline::paper();
        let out = pipeline.process(&cam.capture(0.0, 2));
        let decoded = pipeline.codec().decode(&out.compressed).unwrap();
        assert!(!decoded.is_empty());
        assert_eq!(decoded.width(), 80); // 160 / downsample factor 2
    }

    #[test]
    fn stats_start_empty() {
        let stats = PipelineStats::new();
        assert_eq!(stats.frames(), 0);
        assert_eq!(stats.mean_compressed_bytes(), 0.0);
        assert_eq!(stats.mean_compression_ratio(), 0.0);
        assert_eq!(stats.bitrate_mbps(15), 0.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = PipelineStats::new();
        stats.record(&StageBytes {
            raw: 100,
            foreground: 50,
            reduced: 20,
            compressed: 10,
        });
        stats.record(&StageBytes {
            raw: 100,
            foreground: 60,
            reduced: 30,
            compressed: 30,
        });
        assert_eq!(stats.frames(), 2);
        assert_eq!(stats.mean_compressed_bytes(), 20.0);
        assert_eq!(stats.mean_compression_ratio(), 5.0);
        assert_eq!(stats.bitrate_bps(1), 160.0);
    }
}
