//! Resolution reduction: the second stage of the paper's reduction chain
//! (Section 1 lists it between background subtraction and compression).
//!
//! [`Downsampler`] merges `factor × factor` pixel blocks into single
//! samples, averaging color and depth. On a sparse [`ForegroundFrame`]
//! only occupied blocks survive, so the sample count shrinks by roughly
//! `factor²`.

use std::collections::BTreeMap;
use std::num::NonZeroU32;

use serde::{Deserialize, Serialize};

use crate::background::{ForegroundFrame, ForegroundPixel};
use crate::frame::Rgb;

/// Block-averaging resolution reducer.
///
/// # Examples
///
/// ```
/// use teeve_media::{BackgroundSubtractor, Downsampler, SyntheticCapture};
///
/// let raw = SyntheticCapture::new(64, 48, 1).capture(0.0, 0);
/// let fg = BackgroundSubtractor::default().subtract(&raw);
/// let half = Downsampler::new(2).apply(&fg);
/// assert_eq!(half.width(), 32);
/// // A solid subject shrinks by about the block area.
/// assert!(half.len() <= fg.len() / 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Downsampler {
    factor: NonZeroU32,
}

impl Downsampler {
    /// Creates a reducer merging `factor × factor` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn new(factor: u32) -> Self {
        Downsampler {
            factor: NonZeroU32::new(factor).expect("downsampling factor must be nonzero"),
        }
    }

    /// Returns the block edge length.
    pub fn factor(&self) -> u32 {
        self.factor.get()
    }

    /// Reduces `frame` to a `ceil(w/factor) × ceil(h/factor)` grid,
    /// averaging the samples of each occupied block.
    pub fn apply(&self, frame: &ForegroundFrame) -> ForegroundFrame {
        let f = self.factor.get();
        if f == 1 {
            return frame.clone();
        }
        let out_w = frame.width().div_ceil(f);
        let out_h = frame.height().div_ceil(f);

        // Accumulate sums per occupied block; BTreeMap keyed (row, col)
        // yields the row-major order ForegroundFrame requires.
        #[derive(Default)]
        struct Acc {
            r: u64,
            g: u64,
            b: u64,
            depth: u64,
            count: u64,
        }
        let mut blocks: BTreeMap<(u16, u16), Acc> = BTreeMap::new();
        for p in frame.pixels() {
            let key = (p.y / f as u16, p.x / f as u16);
            let acc = blocks.entry(key).or_default();
            acc.r += u64::from(p.color.r);
            acc.g += u64::from(p.color.g);
            acc.b += u64::from(p.color.b);
            acc.depth += u64::from(p.depth_mm);
            acc.count += 1;
        }

        let pixels = blocks
            .into_iter()
            .map(|((by, bx), acc)| ForegroundPixel {
                x: bx,
                y: by,
                color: Rgb::new(
                    (acc.r / acc.count) as u8,
                    (acc.g / acc.count) as u8,
                    (acc.b / acc.count) as u8,
                ),
                depth_mm: (acc.depth / acc.count) as u16,
            })
            .collect();
        ForegroundFrame::new(out_w, out_h, pixels)
    }
}

impl Default for Downsampler {
    /// Factor 2: the paper's streams halve each dimension.
    fn default() -> Self {
        Downsampler::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundSubtractor;
    use crate::capture::SyntheticCapture;
    use crate::frame::RawFrame;

    fn px(x: u16, y: u16, v: u8, depth: u16) -> ForegroundPixel {
        ForegroundPixel {
            x,
            y,
            color: Rgb::new(v, v, v),
            depth_mm: depth,
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let fg = ForegroundFrame::new(4, 4, vec![px(1, 1, 10, 100)]);
        assert_eq!(Downsampler::new(1).apply(&fg), fg);
    }

    #[test]
    fn block_averages_color_and_depth() {
        let fg = ForegroundFrame::new(4, 4, vec![px(0, 0, 10, 100), px(1, 0, 30, 300)]);
        let out = Downsampler::new(2).apply(&fg);
        assert_eq!(out.width(), 2);
        assert_eq!(out.height(), 2);
        assert_eq!(out.len(), 1);
        let p = out.pixels()[0];
        assert_eq!((p.x, p.y), (0, 0));
        assert_eq!(p.color, Rgb::new(20, 20, 20));
        assert_eq!(p.depth_mm, 200);
    }

    #[test]
    fn distinct_blocks_stay_distinct() {
        let fg = ForegroundFrame::new(4, 4, vec![px(0, 0, 1, 50), px(3, 3, 9, 70)]);
        let out = Downsampler::new(2).apply(&fg);
        assert_eq!(out.len(), 2);
        assert_eq!((out.pixels()[0].x, out.pixels()[0].y), (0, 0));
        assert_eq!((out.pixels()[1].x, out.pixels()[1].y), (1, 1));
    }

    #[test]
    fn output_is_row_major_and_in_bounds() {
        let raw = SyntheticCapture::new(50, 38, 4).capture(0.1, 2);
        let fg = BackgroundSubtractor::default().subtract(&raw);
        for f in [2, 3, 4, 7] {
            // ForegroundFrame::new panics on disorder or out-of-bounds, so
            // construction succeeding is the assertion.
            let out = Downsampler::new(f).apply(&fg);
            assert_eq!(out.width(), 50u32.div_ceil(f));
            assert_eq!(out.height(), 38u32.div_ceil(f));
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn sample_count_shrinks_about_quadratically() {
        let raw = SyntheticCapture::new(128, 96, 8).capture(0.0, 0);
        let fg = BackgroundSubtractor::default().subtract(&raw);
        let out = Downsampler::new(4).apply(&fg);
        let ratio = fg.len() as f64 / out.len() as f64;
        // A solid silhouette loses ≈16× of its samples; the boundary adds
        // some slack.
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn empty_frame_stays_empty() {
        let fg = BackgroundSubtractor::new(100).subtract(&RawFrame::new(8, 8));
        assert!(Downsampler::new(2).apply(&fg).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_factor_panics() {
        let _ = Downsampler::new(0);
    }
}
