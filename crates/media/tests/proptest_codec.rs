//! Property tests for the media pipeline: codec reversibility, stage
//! monotonicity, and subtraction/densification consistency.

use proptest::collection::btree_set;
use proptest::prelude::*;
use teeve_media::{
    BackgroundSubtractor, Codec, Downsampler, ForegroundFrame, ForegroundPixel, RawFrame, Rgb,
    DEPTH_FAR_MM,
};

const W: u32 = 40;
const H: u32 = 30;

/// An arbitrary sparse foreground frame on a 40×30 grid: a set of linear
/// positions (sorted for free by `BTreeSet`) with random color and depth.
fn arb_foreground() -> impl Strategy<Value = ForegroundFrame> {
    (
        btree_set(0..(W * H), 0..200usize),
        proptest::collection::vec((any::<(u8, u8, u8)>(), 0u16..10_000), 200),
    )
        .prop_map(|(positions, attrs)| {
            let pixels = positions
                .into_iter()
                .zip(attrs)
                .map(|(linear, ((r, g, b), depth_mm))| ForegroundPixel {
                    x: (linear % W) as u16,
                    y: (linear / W) as u16,
                    color: Rgb::new(r, g, b),
                    depth_mm,
                })
                .collect();
            ForegroundFrame::new(W, H, pixels)
        })
}

/// An arbitrary dense raw frame with a controllable mix of near geometry
/// and far background.
fn arb_raw() -> impl Strategy<Value = RawFrame> {
    proptest::collection::vec(
        (any::<bool>(), 0u16..5_000, any::<(u8, u8, u8)>()),
        (W * H) as usize,
    )
    .prop_map(|cells| {
        let mut frame = RawFrame::new(W, H);
        for (i, (near, depth, (r, g, b))) in cells.into_iter().enumerate() {
            let (x, y) = (i as u32 % W, i as u32 / W);
            if near {
                frame.set(x, y, Rgb::new(r, g, b), depth);
            }
        }
        frame
    })
}

proptest! {
    /// Decoding recovers every position exactly, in order.
    #[test]
    fn codec_preserves_positions(frame in arb_foreground(), step in 1u16..32) {
        let codec = Codec::new(step);
        let decoded = codec.decode(&codec.encode(&frame)).unwrap();
        let pos = |f: &ForegroundFrame| f.pixels().iter().map(|p| (p.x, p.y)).collect::<Vec<_>>();
        prop_assert_eq!(pos(&decoded), pos(&frame));
    }

    /// Depth error is bounded by half the quantization step.
    #[test]
    fn codec_depth_error_is_bounded(frame in arb_foreground(), step in 1u16..32) {
        let codec = Codec::new(step);
        let decoded = codec.decode(&codec.encode(&frame)).unwrap();
        for (a, b) in frame.pixels().iter().zip(decoded.pixels()) {
            let err = u32::from(a.depth_mm).abs_diff(u32::from(b.depth_mm));
            prop_assert!(err <= u32::from(step) / 2 + 1);
        }
    }

    /// Encode ∘ decode is a projection: re-encoding the decoded frame
    /// reproduces the same bytes.
    #[test]
    fn codec_is_idempotent_after_one_pass(frame in arb_foreground(), step in 1u16..32) {
        let codec = Codec::new(step);
        let once = codec.encode(&frame);
        let twice = codec.encode(&codec.decode(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// Color survives within RGB565 rounding.
    #[test]
    fn codec_color_error_is_bounded(frame in arb_foreground()) {
        let codec = Codec::new(1);
        let decoded = codec.decode(&codec.encode(&frame)).unwrap();
        for (a, b) in frame.pixels().iter().zip(decoded.pixels()) {
            prop_assert!(u16::from(a.color.r).abs_diff(u16::from(b.color.r)) <= 7);
            prop_assert!(u16::from(a.color.g).abs_diff(u16::from(b.color.g)) <= 3);
            prop_assert!(u16::from(a.color.b).abs_diff(u16::from(b.color.b)) <= 7);
        }
    }

    /// Subtraction keeps exactly the strictly-near pixels, and
    /// densifying back preserves them all.
    #[test]
    fn subtraction_roundtrips_through_to_raw(raw in arb_raw(), threshold in 1u16..5_000) {
        let sub = BackgroundSubtractor::new(threshold);
        let fg = sub.subtract(&raw);
        // Count check against a direct scan.
        let mut expected = 0usize;
        for y in 0..H {
            for x in 0..W {
                let d = raw.depth(x, y);
                if d < threshold && d != DEPTH_FAR_MM {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(fg.len(), expected);
        // Densify and re-subtract: identical sample list.
        let again = sub.subtract(&fg.to_raw());
        prop_assert_eq!(again.pixels(), fg.pixels());
    }

    /// Downsampling never grows the sample count and stays in bounds
    /// (`ForegroundFrame::new` panics otherwise, failing the test).
    #[test]
    fn downsampling_shrinks(frame in arb_foreground(), factor in 1u32..8) {
        let out = Downsampler::new(factor).apply(&frame);
        prop_assert!(out.len() <= frame.len());
        prop_assert_eq!(out.width(), W.div_ceil(factor));
        prop_assert_eq!(out.is_empty(), frame.is_empty());
    }

    /// The compressed form never exceeds the sparse form by more than the
    /// fixed header (tiny frames) and beats it on real frames.
    #[test]
    fn compression_is_bounded(frame in arb_foreground()) {
        let compressed = Codec::new(4).encode(&frame);
        // 9 B/sample sparse vs varint-coded: worst case (random colors,
        // every run length 1) stays within ~10 B/sample + header.
        prop_assert!(compressed.byte_size() <= frame.byte_size() + frame.len() as u64 + 32);
    }
}
