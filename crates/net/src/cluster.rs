//! A localhost cluster of live TCP rendezvous points executing a
//! dissemination plan.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use teeve_pubsub::{DisseminationPlan, SitePlan};
use teeve_types::{SiteId, StreamId};

use crate::wire::{decode, encode, Message};

/// Configuration of a live cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Frames each origin publishes per stream.
    pub frames_per_stream: u64,
    /// Synthetic payload size per frame in bytes (kept small in tests; a
    /// real compressed 3DTI frame is ≈66 kB).
    pub payload_bytes: usize,
    /// Optional pacing between frames at the origin (`None` = publish as
    /// fast as the sockets accept, for fast tests).
    pub frame_interval: Option<Duration>,
    /// Abort the run if deliveries have not completed within this time.
    pub timeout: Duration,
}

impl Default for ClusterConfig {
    /// 10 frames per stream, 1 kB payloads, unpaced, 30 s timeout.
    fn default() -> Self {
        ClusterConfig {
            frames_per_stream: 10,
            payload_bytes: 1024,
            frame_interval: None,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Delivery statistics of one live run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterReport {
    /// Frames delivered per (site, stream).
    pub delivered: BTreeMap<(SiteId, StreamId), u64>,
    /// Sum of observed end-to-end latencies per (site, stream), in
    /// microseconds (wall clock).
    pub latency_sum_micros: BTreeMap<(SiteId, StreamId), u64>,
    /// Worst observed end-to-end latency in microseconds (wall clock).
    pub max_latency_micros: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ClusterReport {
    /// Returns total frames delivered across all sites.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Returns the mean end-to-end latency of one (site, stream) pair in
    /// microseconds, or `None` if nothing was delivered to it.
    pub fn mean_latency_micros(&self, site: SiteId, stream: StreamId) -> Option<u64> {
        let frames = *self.delivered.get(&(site, stream))?;
        if frames == 0 {
            return None;
        }
        Some(self.latency_sum_micros.get(&(site, stream)).copied()? / frames)
    }
}

/// Error produced by a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket setup or transfer failed.
    Io(io::Error),
    /// Deliveries did not complete before the configured timeout.
    Timeout {
        /// Frames delivered so far.
        delivered: u64,
        /// Frames expected in total.
        expected: u64,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Timeout {
                delivered,
                expected,
            } => write!(f, "timed out with {delivered}/{expected} frames delivered"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Timeout { .. } => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Shared delivery counters.
#[derive(Debug, Default)]
struct Stats {
    delivered: Mutex<BTreeMap<(SiteId, StreamId), u64>>,
    latency_sums: Mutex<BTreeMap<(SiteId, StreamId), u64>>,
    total: AtomicUsize,
    max_latency_micros: AtomicUsize,
}

impl Stats {
    fn record(&self, site: SiteId, stream: StreamId, latency_micros: u64) {
        *self.delivered.lock().entry((site, stream)).or_default() += 1;
        *self.latency_sums.lock().entry((site, stream)).or_default() += latency_micros;
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_latency_micros
            .fetch_max(latency_micros as usize, Ordering::Relaxed);
    }
}

/// One outbound (parent → child) connection plus the number of streams this
/// RP still has to finish over it.
struct OutLink {
    conn: TcpStream,
    /// Streams routed over this connection whose `End` marker has not been
    /// forwarded yet; the connection is write-shut when it reaches zero.
    remaining: usize,
}

/// The per-site state shared by an RP's reader and sender threads.
///
/// Termination is **per stream**, not per connection: each stream's
/// multicast tree is acyclic, so its `End` marker cascades from the origin
/// to every subscriber without circular waits. The site-level connection
/// graph (the union of all trees) may contain cycles — a per-connection
/// `Bye` handshake deadlocks on such cycles, which is exactly the hang this
/// design replaces.
struct RpShared {
    site: SiteId,
    plan: SitePlan,
    outbound: Mutex<BTreeMap<SiteId, OutLink>>,
    stats: Arc<Stats>,
    epoch: Instant,
}

impl RpShared {
    /// Forwards one frame to this RP's planned children for `stream`.
    fn forward(&self, stream: StreamId, seq: u64, captured_micros: u64, payload: &Bytes) {
        let children = match self.plan.entry(stream) {
            Some(entry) => entry.children.clone(),
            None => return,
        };
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(
            &Message::Frame {
                stream,
                seq,
                captured_micros,
                payload: payload.clone(),
            },
            &mut buf,
        );
        let mut outbound = self.outbound.lock();
        for child in children {
            if let Some(link) = outbound.get_mut(&child) {
                // A failed forward drops that downstream subtree; the run
                // then surfaces it as missing deliveries.
                let _ = link.conn.write_all(&buf);
            }
        }
    }

    /// Marks `stream` finished at this RP: forwards its `End` marker to the
    /// stream's children and write-shuts any connection whose last stream
    /// this was. Called by the origin sender after publishing the final
    /// frame, and by readers when an upstream `End` arrives.
    fn end_stream(&self, stream: StreamId) {
        let children = match self.plan.entry(stream) {
            Some(entry) => entry.children.clone(),
            None => return,
        };
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(&Message::End { stream }, &mut buf);
        let mut outbound = self.outbound.lock();
        for child in children {
            if let Some(link) = outbound.get_mut(&child) {
                let _ = link.conn.write_all(&buf);
                link.remaining = link.remaining.saturating_sub(1);
                if link.remaining == 0 {
                    let _ = link.conn.shutdown(std::net::Shutdown::Write);
                    outbound.remove(&child);
                }
            }
        }
    }
}

/// Runs `plan` on a cluster of real TCP rendezvous points bound to
/// 127.0.0.1, publishing `config.frames_per_stream` synthetic frames per
/// overlay-transiting stream, and returns the delivery report.
///
/// Every RP is a set of real threads: one reader per inbound overlay link
/// (decoding the wire protocol and forwarding frames per its forwarding
/// table) and one sender for locally originated streams. Termination
/// cascades: when an RP's upstreams finish, it sends `Bye` downstream.
///
/// # Errors
///
/// Returns an error on socket failures or if deliveries do not complete
/// within `config.timeout`.
pub fn run_cluster(
    plan: &DisseminationPlan,
    config: &ClusterConfig,
) -> Result<ClusterReport, ClusterError> {
    let n = plan.site_count();
    let epoch = Instant::now();
    let stats = Arc::new(Stats::default());

    // Distinct inbound parents and outbound children per site.
    let mut parents: Vec<BTreeSet<SiteId>> = vec![BTreeSet::new(); n];
    let mut children: Vec<BTreeSet<SiteId>> = vec![BTreeSet::new(); n];
    for (parent, child, _) in plan.edges() {
        parents[child.index()].insert(parent);
        children[parent.index()].insert(child);
    }

    // Expected deliveries: every planned (site, stream) pair gets all
    // frames of that stream.
    let expected: u64 = (0..n)
        .map(|i| plan.site_plans()[i].in_degree() as u64 * config.frames_per_stream)
        .sum();

    // Phase A: bind all listeners.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }

    // Streams each parent must finish per outbound connection: the link
    // parent → child is write-shut after the last of these ends.
    let mut streams_to_child: Vec<BTreeMap<SiteId, usize>> = vec![BTreeMap::new(); n];
    for (parent, child, _) in plan.edges() {
        *streams_to_child[parent.index()].entry(child).or_default() += 1;
    }

    // Per-site shared state.
    let shared: Vec<Arc<RpShared>> = (0..n)
        .map(|i| {
            let site = SiteId::new(i as u32);
            Arc::new(RpShared {
                site,
                plan: plan.site_plan(site).clone(),
                outbound: Mutex::new(BTreeMap::new()),
                stats: Arc::clone(&stats),
                epoch,
            })
        })
        .collect();

    let mut handles = Vec::new();

    // Phase B: accept threads (one per site), spawning a reader per
    // inbound link. Readers carry a read timeout so a lost upstream can
    // never wedge the process past the configured deadline.
    for (i, listener) in listeners.into_iter().enumerate() {
        let expected_inbound = parents[i].len();
        let rp = Arc::clone(&shared[i]);
        let read_timeout = config.timeout;
        handles.push(thread::spawn(move || {
            let mut readers = Vec::new();
            for _ in 0..expected_inbound {
                let Ok((conn, _)) = listener.accept() else {
                    break;
                };
                conn.set_read_timeout(Some(read_timeout)).ok();
                let rp = Arc::clone(&rp);
                readers.push(thread::spawn(move || reader_loop(conn, &rp)));
            }
            for r in readers {
                let _ = r.join();
            }
        }));
    }

    // Phase C: establish outbound connections (parent -> child).
    for i in 0..n {
        let mut outbound = shared[i].outbound.lock();
        for &child in &children[i] {
            let conn = TcpStream::connect(addrs[child.index()])?;
            conn.set_nodelay(true).ok();
            conn.set_write_timeout(Some(config.timeout)).ok();
            let mut buf = BytesMut::new();
            encode(
                &Message::Hello {
                    site: SiteId::new(i as u32),
                },
                &mut buf,
            );
            let mut conn = conn;
            conn.write_all(&buf)?;
            outbound.insert(
                child,
                OutLink {
                    conn,
                    remaining: streams_to_child[i][&child],
                },
            );
        }
    }

    // Phase D: origin senders.
    for site_shared in &shared {
        let rp = Arc::clone(site_shared);
        let origin_streams: Vec<StreamId> = rp
            .plan
            .entries
            .iter()
            .filter(|e| e.is_origin() && !e.children.is_empty())
            .map(|e| e.stream)
            .collect();
        if origin_streams.is_empty() {
            continue;
        }
        let cfg = config.clone();
        handles.push(thread::spawn(move || {
            let payload = Bytes::from(vec![0x3D; cfg.payload_bytes]);
            for seq in 0..cfg.frames_per_stream {
                for &stream in &origin_streams {
                    let captured = rp.epoch.elapsed().as_micros() as u64;
                    rp.forward(stream, seq, captured, &payload);
                }
                if let Some(interval) = cfg.frame_interval {
                    thread::sleep(interval);
                }
            }
            for &stream in &origin_streams {
                rp.end_stream(stream);
            }
        }));
    }

    // Phase E: wait for completion.
    let deadline = Instant::now() + config.timeout;
    loop {
        let delivered = stats.total.load(Ordering::Relaxed) as u64;
        if delivered >= expected {
            break;
        }
        if Instant::now() > deadline {
            return Err(ClusterError::Timeout {
                delivered,
                expected,
            });
        }
        thread::sleep(Duration::from_millis(2));
    }
    for h in handles {
        let _ = h.join();
    }

    let delivered = stats.delivered.lock().clone();
    let latency_sum_micros = stats.latency_sums.lock().clone();
    Ok(ClusterReport {
        delivered,
        latency_sum_micros,
        max_latency_micros: stats.max_latency_micros.load(Ordering::Relaxed) as u64,
        elapsed: epoch.elapsed(),
    })
}

/// Reads one inbound link until `Bye`/EOF, recording and forwarding frames
/// and cascading per-stream `End` markers.
fn reader_loop(mut conn: TcpStream, rp: &RpShared) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match decode(&mut buf) {
            Ok(Some(Message::Frame {
                stream,
                seq,
                captured_micros,
                payload,
            })) => {
                let now = rp.epoch.elapsed().as_micros() as u64;
                rp.stats
                    .record(rp.site, stream, now.saturating_sub(captured_micros));
                rp.forward(stream, seq, captured_micros, &payload);
                continue;
            }
            Ok(Some(Message::End { stream })) => {
                rp.end_stream(stream);
                continue;
            }
            Ok(Some(Message::Hello { .. })) => continue,
            Ok(Some(Message::Bye)) | Err(_) => break,
            Ok(None) => {}
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => buf.extend_from_slice(&chunk[..read]),
            // Includes the configured read timeout: a silent upstream ends
            // the link rather than wedging the run.
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::{ConstructionAlgorithm, NodeCapacity, ProblemInstance, RandomJoin};
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            frames_per_stream: 5,
            payload_bytes: 256,
            frame_interval: None,
            timeout: Duration::from_secs(20),
        }
    }

    fn relay_plan() -> DisseminationPlan {
        // Source capacity 1 forces 0 -> 1 -> 2 relaying.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(1)),
                NodeCapacity::symmetric(Degree::new(4)),
                NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default())
    }

    #[test]
    fn relay_chain_delivers_every_frame() {
        let plan = relay_plan();
        let report = run_cluster(&plan, &quick_config()).expect("cluster completes");
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 5);
        assert_eq!(report.delivered[&(site(2), stream(0, 0))], 5);
        assert_eq!(report.total_delivered(), 10);
    }

    #[test]
    fn multi_stream_fanout_delivers_everything() {
        // 4 sites, 2 streams each, everyone subscribes to everything.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(2));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[2, 2, 2, 2]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    b = b.subscribe(site(sub), stream(origin, q));
                }
            }
        }
        let problem = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());

        let config = quick_config();
        let report = run_cluster(&plan, &config).expect("cluster completes");
        // 4 sites x 6 remote streams x 5 frames.
        assert_eq!(report.total_delivered(), 4 * 6 * 5);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    assert_eq!(
                        report.delivered[&(site(sub), stream(origin, q))],
                        5,
                        "site {sub} missing frames of s{origin}.{q}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 1])
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        let report = run_cluster(&plan, &quick_config()).expect("nothing to deliver");
        assert_eq!(report.total_delivered(), 0);
    }

    #[test]
    fn paced_run_measures_latency() {
        let plan = relay_plan();
        let config = ClusterConfig {
            frames_per_stream: 3,
            payload_bytes: 128,
            frame_interval: Some(Duration::from_millis(5)),
            timeout: Duration::from_secs(20),
        };
        let report = run_cluster(&plan, &config).expect("cluster completes");
        assert_eq!(report.total_delivered(), 6);
        // Localhost latency is nonzero but far below a second.
        assert!(report.max_latency_micros > 0);
        assert!(report.max_latency_micros < 1_000_000);
        // Per-pair means are consistent with the global maximum.
        for &(site, stream) in report.delivered.keys() {
            let mean = report
                .mean_latency_micros(site, stream)
                .expect("delivered pair has a mean");
            assert!(mean <= report.max_latency_micros);
        }
    }

    #[test]
    fn mean_latency_of_unknown_pair_is_none() {
        let report = ClusterReport::default();
        assert_eq!(report.mean_latency_micros(site(0), stream(1, 0)), None);
    }
}
