//! The in-process convenience wrapper around the process-separable RP
//! node API: one [`LiveCluster`] = N spawned [`RpNode`] threads + one
//! [`Coordinator`], all on 127.0.0.1.
//!
//! The coordinator holds **no shared memory** into the RPs it drives —
//! every interaction is a [`wire`](crate::wire) message, exactly as it
//! would be across processes or hosts; this wrapper only saves callers
//! the bind/spawn/connect choreography (and joins the node threads at
//! shutdown). [`run_cluster`] is the one-shot form: launch, publish,
//! shut down.

use teeve_pubsub::{DisseminationPlan, PlanDelta};
use teeve_types::SiteId;

use crate::coordinator::{
    ClusterConfig, ClusterError, ClusterReport, Coordinator, ReconfigureReport,
};
use crate::node::{RpNode, RpNodeHandle};
use crate::reactor::{Reactor, ReactorNodeHandle};

/// A long-lived cluster of rendezvous points on 127.0.0.1 whose plan can
/// be changed while it runs.
///
/// Lifecycle:
///
/// 1. [`launch`](Self::launch) binds and spawns one [`RpNode`] per site
///    of the plan, then connects a [`Coordinator`] to their addresses —
///    installing forwarding tables and ordering the initial links open,
///    all over TCP;
/// 2. [`publish`](Self::publish) / [`apply_delta`](Self::apply_delta) /
///    [`shutdown`](Self::shutdown) delegate to the coordinator, so the
///    wrapper's behavior is *identical* to driving a fleet of external
///    RP processes (the multi-process smoke test holds it to that,
///    bit-for-bit on delivery accounting).
///
/// A failed reconfiguration poisons the underlying coordinator: further
/// `publish`/`apply_delta` calls return [`ClusterError::Poisoned`]
/// instead of operating on an unknown plan state; shut the cluster down.
pub struct LiveCluster {
    // Field order is drop order: dropping the coordinator first orders
    // every RP down over the wire, then the fleet stops its node threads
    // locally (belt and braces for nodes whose control channel died).
    coordinator: Coordinator,
    fleet: NodeFleet,
}

/// One RP of a [`LiveCluster`]'s fleet, in either hosting mode. Both
/// variants speak the identical wire protocol; the cluster only needs
/// stop/join from them.
enum FleetMember {
    /// Thread-per-connection node ([`LiveCluster::launch`]).
    Thread(RpNodeHandle),
    /// Reactor-hosted node ([`LiveCluster::launch_reactor`]).
    Reactor(ReactorNodeHandle),
}

impl FleetMember {
    fn stop(&self) {
        match self {
            FleetMember::Thread(node) => node.stop(),
            FleetMember::Reactor(node) => node.stop(),
        }
    }

    fn join(self) {
        match self {
            FleetMember::Thread(node) => node.join(),
            FleetMember::Reactor(node) => node.join(),
        }
    }
}

/// The spawned RP nodes of a [`LiveCluster`], stopped on drop.
struct NodeFleet {
    nodes: Vec<FleetMember>,
}

impl NodeFleet {
    /// Stops every node and joins it (the graceful path).
    fn stop_and_join(mut self) {
        for node in &self.nodes {
            node.stop();
        }
        for node in self.nodes.drain(..) {
            node.join();
        }
    }
}

impl Drop for NodeFleet {
    /// Best-effort teardown without joining; the graceful path is
    /// [`NodeFleet::stop_and_join`].
    fn drop(&mut self) {
        for node in &self.nodes {
            node.stop();
        }
    }
}

impl LiveCluster {
    /// Launches one RP per site of `plan` on 127.0.0.1 and connects the
    /// initial overlay links.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, or if the initial tables are
    /// not acknowledged and links not reported up within
    /// `config.timeout`.
    pub fn launch(
        plan: &DisseminationPlan,
        config: &ClusterConfig,
    ) -> Result<LiveCluster, ClusterError> {
        let mut nodes = Vec::with_capacity(plan.site_count());
        let mut addrs = Vec::with_capacity(plan.site_count());
        for site in SiteId::all(plan.site_count()) {
            let node = RpNode::bind(site, config.timeout)?;
            addrs.push(node.local_addr());
            nodes.push(FleetMember::Thread(node.spawn()));
        }
        let fleet = NodeFleet { nodes };
        match Coordinator::connect(plan, &addrs, config) {
            Ok(coordinator) => Ok(LiveCluster { coordinator, fleet }),
            Err(e) => {
                fleet.stop_and_join();
                Err(e)
            }
        }
    }

    /// Like [`launch`](Self::launch), but hosts every RP on `reactor`'s
    /// event loops instead of spawning threads per node: the fleet's
    /// thread cost is the reactor's fixed pool, regardless of how many
    /// sites (or how many concurrent clusters sharing the reactor) there
    /// are. The coordinator, the wire protocol, and the delivery
    /// accounting are identical to the threaded path.
    ///
    /// The reactor must outlive the returned cluster; dropping it first
    /// abandons the hosted nodes mid-protocol.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, or if the initial tables are
    /// not acknowledged and links not reported up within
    /// `config.timeout`.
    pub fn launch_reactor(
        plan: &DisseminationPlan,
        config: &ClusterConfig,
        reactor: &Reactor,
    ) -> Result<LiveCluster, ClusterError> {
        let mut nodes = Vec::with_capacity(plan.site_count());
        let mut addrs = Vec::with_capacity(plan.site_count());
        for site in SiteId::all(plan.site_count()) {
            let node = reactor.bind_node(site)?;
            addrs.push(node.addr());
            nodes.push(FleetMember::Reactor(node));
        }
        let fleet = NodeFleet { nodes };
        match Coordinator::connect(plan, &addrs, config) {
            Ok(coordinator) => Ok(LiveCluster { coordinator, fleet }),
            Err(e) => {
                fleet.stop_and_join();
                Err(e)
            }
        }
    }

    fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// Returns the plan the cluster currently executes.
    pub fn plan(&self) -> &DisseminationPlan {
        self.coordinator().plan()
    }

    /// Returns the plan revision the cluster currently runs.
    pub fn revision(&self) -> u64 {
        self.coordinator().revision()
    }

    /// Returns the number of data connections opened by reconfigurations
    /// so far (initial plan links are not counted).
    pub fn connections_opened(&self) -> u64 {
        self.coordinator().connections_opened()
    }

    /// Returns the number of data connections closed by reconfigurations
    /// so far.
    pub fn connections_closed(&self) -> u64 {
        self.coordinator().connections_closed()
    }

    /// Returns true when a failed reconfiguration has poisoned the
    /// cluster; see [`ClusterError::Poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.coordinator().is_poisoned()
    }

    /// The coordinator's metrics registry (link open/close latencies,
    /// Reconfigure→Ack round-trip times); see [`Coordinator::telemetry`].
    pub fn telemetry(&self) -> &teeve_telemetry::MetricsRegistry {
        self.coordinator().telemetry()
    }

    /// The coordinator's flight recorder; see
    /// [`Coordinator::flight_recorder`].
    pub fn flight_recorder(&self) -> &teeve_telemetry::FlightRecorder {
        self.coordinator().flight_recorder()
    }

    /// The coordinator's flight events as JSON; see
    /// [`Coordinator::flight_json`].
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible for this data model).
    pub fn flight_json(&self) -> Result<String, serde_json::Error> {
        self.coordinator().flight_json()
    }

    /// Publishes `frames` frames from every origin stream of the current
    /// plan and blocks until all planned deliveries of the batch land;
    /// see [`Coordinator::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Timeout`] if the batch does not fully
    /// deliver within `config.timeout`, or [`ClusterError::Poisoned`]
    /// after a failed reconfiguration.
    pub fn publish(&mut self, frames: u64) -> Result<(), ClusterError> {
        self.coordinator.publish(frames)
    }

    /// Applies one [`PlanDelta`] to the running cluster; see
    /// [`Coordinator::apply_delta`].
    ///
    /// # Errors
    ///
    /// Returns an error when the delta's revision does not match the
    /// cluster's, the delta does not apply to the current plan, a socket
    /// operation fails, or an RP does not acknowledge in time. A failure
    /// after validation poisons the cluster.
    pub fn apply_delta(&mut self, delta: &PlanDelta) -> Result<ReconfigureReport, ClusterError> {
        self.coordinator.apply_delta(delta)
    }

    /// Gracefully terminates the cluster: the coordinator harvests every
    /// RP's final stats report, orders the fleet down (per-stream `End`
    /// markers cascade from every origin), every node thread joins, and
    /// the delivery report comes back.
    ///
    /// Call after the last [`publish`](Self::publish) batch has completed;
    /// frames still in flight at shutdown are dropped with their links.
    pub fn shutdown(self) -> ClusterReport {
        let LiveCluster { coordinator, fleet } = self;
        let report = coordinator.shutdown();
        fleet.stop_and_join();
        report
    }
}

impl teeve_pubsub::DeltaSink for LiveCluster {
    type Error = ClusterError;

    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error> {
        LiveCluster::apply_delta(self, delta).map(|_| ())
    }
}

/// Runs `plan` once on a [`LiveCluster`]: launch, publish
/// `config.frames_per_stream` synthetic frames per overlay-transiting
/// stream, shut down, report.
///
/// Every RP is a set of real threads: one reader per inbound link
/// (decoding the wire protocol and forwarding frames per its forwarding
/// table) plus the node's accept loop. Termination cascades **per
/// stream**: when a stream's last frame has been published, its `End`
/// marker flows down the stream's (acyclic) multicast tree, and
/// connections are write-shut afterwards — there is no per-connection
/// `Bye` handshake, which would deadlock on cyclic site graphs.
///
/// # Errors
///
/// Returns an error on socket failures or if deliveries do not complete
/// within `config.timeout`.
pub fn run_cluster(
    plan: &DisseminationPlan,
    config: &ClusterConfig,
) -> Result<ClusterReport, ClusterError> {
    let mut cluster = LiveCluster::launch(plan, config)?;
    cluster.publish(config.frames_per_stream)?;
    Ok(cluster.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::{
        ConstructionAlgorithm, NodeCapacity, OverlayManager, ProblemInstance, RandomJoin,
    };
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree, StreamId};

    use crate::node::RpNode;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            frames_per_stream: 5,
            payload_bytes: 256,
            frame_interval: None,
            timeout: Duration::from_secs(20),
        }
    }

    fn relay_plan() -> DisseminationPlan {
        // Source capacity 1 forces 0 -> 1 -> 2 relaying.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(1)),
                NodeCapacity::symmetric(Degree::new(4)),
                NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default())
    }

    #[test]
    fn socket_relay_chain_delivers_every_frame() {
        let plan = relay_plan();
        let report = run_cluster(&plan, &quick_config()).expect("cluster completes");
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 5);
        assert_eq!(report.delivered[&(site(2), stream(0, 0))], 5);
        assert_eq!(report.total_delivered(), 10);
        // A one-shot run never reconfigures.
        assert_eq!(report.final_revision, 0);
        assert_eq!(report.connections_opened, 0);
        assert_eq!(report.connections_closed, 0);
    }

    #[test]
    fn socket_multi_stream_fanout_delivers_everything() {
        // 4 sites, 2 streams each, everyone subscribes to everything.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(2));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[2, 2, 2, 2]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    b = b.subscribe(site(sub), stream(origin, q));
                }
            }
        }
        let problem = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());

        let config = quick_config();
        let report = run_cluster(&plan, &config).expect("cluster completes");
        // 4 sites x 6 remote streams x 5 frames.
        assert_eq!(report.total_delivered(), 4 * 6 * 5);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    assert_eq!(
                        report.delivered[&(site(sub), stream(origin, q))],
                        5,
                        "site {sub} missing frames of s{origin}.{q}"
                    );
                }
            }
        }
    }

    #[test]
    fn socket_empty_plan_completes_immediately() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 1])
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        let report = run_cluster(&plan, &quick_config()).expect("nothing to deliver");
        assert_eq!(report.total_delivered(), 0);
    }

    #[test]
    fn socket_paced_run_measures_latency() {
        let plan = relay_plan();
        let config = ClusterConfig {
            frames_per_stream: 3,
            payload_bytes: 128,
            frame_interval: Some(Duration::from_millis(5)),
            timeout: Duration::from_secs(20),
        };
        let report = run_cluster(&plan, &config).expect("cluster completes");
        assert_eq!(report.total_delivered(), 6);
        // Localhost latency is nonzero but far below a second.
        assert!(report.max_latency_micros > 0);
        assert!(report.max_latency_micros < 1_000_000);
        // The clock starts at the first publish: the paced batch alone
        // spans at least its inter-frame gaps, setup time excluded.
        assert!(report.elapsed >= Duration::from_millis(10));
        // Per-pair means are consistent with the global maximum.
        for &(site, stream) in report.delivered.keys() {
            let mean = report
                .mean_latency_micros(site, stream)
                .expect("delivered pair has a mean");
            assert!(mean <= report.max_latency_micros);
        }
        // The wire-carried histograms agree with the scalar counters:
        // every delivered pair has a distribution whose count matches
        // its frame count and whose sum matches the latency sum.
        for (&(site, stream), hist) in &report.latency {
            assert_eq!(hist.count(), report.delivered[&(site, stream)]);
            assert_eq!(hist.sum(), report.latency_sum_micros[&(site, stream)]);
        }
        // The merged distribution reads true cluster-wide percentiles.
        let merged = report.merged_latency();
        assert_eq!(merged.count(), report.total_delivered());
        assert_eq!(merged.max(), report.max_latency_micros);
        assert!(merged.p50() <= merged.p99());
        assert!(
            merged.p99() >= merged.max() / 2,
            "p99 within one bucket of max"
        );
    }

    #[test]
    fn socket_paced_streams_of_one_origin_pace_concurrently() {
        // Site 0 originates two paced streams. Their Publish orders are
        // executed on independent publisher threads, so the batch's wall
        // time stays ≈ frames × interval — not doubled back-to-back per
        // stream (the pre-redesign semantics of a shared capture cadence).
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 1))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());

        let config = ClusterConfig {
            frames_per_stream: 5,
            payload_bytes: 128,
            frame_interval: Some(Duration::from_millis(40)),
            timeout: Duration::from_secs(20),
        };
        let report = run_cluster(&plan, &config).expect("cluster completes");
        assert_eq!(report.total_delivered(), 10);
        // One paced batch spans ≥ its own gaps…
        assert!(report.elapsed >= Duration::from_millis(180));
        // …but two streams serialized would take ≥ 400 ms; concurrent
        // pacing stays well under that even on a loaded host.
        assert!(
            report.elapsed < Duration::from_millis(360),
            "paced batches must overlap, took {:?}",
            report.elapsed
        );
    }

    #[test]
    fn socket_advertised_address_is_what_the_coordinator_dials() {
        // The relay node (site 1) binds a wildcard address but advertises
        // loopback: the coordinator's control connection AND site 0's
        // OpenLink dial of its data link both use the advertised address
        // — exact delivery proves both paths reached it.
        let plan = relay_plan();
        let mut nodes = Vec::new();
        let mut addrs = Vec::new();
        for s in SiteId::all(3) {
            let node = if s == site(1) {
                RpNode::bind_advertised(
                    s,
                    "0.0.0.0:0".parse().unwrap(),
                    Some("127.0.0.1:0".parse().unwrap()),
                    Duration::from_secs(20),
                )
                .expect("bind wildcard")
            } else {
                RpNode::bind(s, Duration::from_secs(20)).expect("bind")
            };
            addrs.push(node.local_addr());
            nodes.push(node.spawn());
        }
        assert_eq!(addrs[1].ip().to_string(), "127.0.0.1");
        assert_eq!(addrs[1], nodes[1].addr());

        let mut coordinator =
            Coordinator::connect(&plan, &addrs, &quick_config()).expect("connect via advertised");
        coordinator.publish(4).expect("batch delivers");
        let report = coordinator.shutdown();
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 4);
        assert_eq!(report.delivered[&(site(2), stream(0, 0))], 4);
        for node in nodes {
            node.stop();
            node.join();
        }
    }

    #[test]
    fn socket_reactor_cluster_delivers_every_frame() {
        // The same relay chain as the threaded test, hosted on two event
        // loops: delivery accounting must come out identical.
        let reactor = Reactor::new(2).expect("reactor starts");
        let plan = relay_plan();
        let mut cluster =
            LiveCluster::launch_reactor(&plan, &quick_config(), &reactor).expect("launch");
        cluster.publish(5).expect("batch delivers");
        let report = cluster.shutdown();
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 5);
        assert_eq!(report.delivered[&(site(2), stream(0, 0))], 5);
        assert_eq!(report.total_delivered(), 10);
        // All three RPs ran on the reactor's two threads, and stopped
        // clean at shutdown.
        assert_eq!(
            reactor.telemetry().gauge("reactor.nodes.registered").get(),
            0
        );
        reactor.shutdown();
    }

    #[test]
    fn socket_launch_then_drop_terminates_cleanly() {
        // Dropping an idle cluster (no publish, no shutdown) must tear
        // everything down without wedging the process.
        let plan = relay_plan();
        let cluster = LiveCluster::launch(&plan, &quick_config()).expect("launch");
        assert_eq!(cluster.revision(), 0);
        assert_eq!(cluster.connections_opened(), 0);
        drop(cluster);
    }

    #[test]
    fn socket_stale_delta_is_rejected_before_touching_sockets() {
        let plan = relay_plan();
        let mut cluster = LiveCluster::launch(&plan, &quick_config()).expect("launch");
        // A delta claiming to come from revision 7 cannot apply to a
        // cluster at revision 0.
        let mut future = plan.clone();
        future.set_revision(7);
        let delta = PlanDelta::diff(&future, &future);
        let err = cluster.apply_delta(&delta).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::StaleRevision {
                cluster: 0,
                delta: 7
            }
        ));
        // A rejected-by-validation delta does NOT poison: the fleet was
        // never touched, so its state is still known.
        assert!(!cluster.is_poisoned());
        let report = cluster.shutdown();
        assert_eq!(report.connections_opened, 0);
        assert_eq!(report.connections_closed, 0);
    }

    #[test]
    fn socket_failed_reconfigure_poisons_the_coordinator() {
        // A 3-site universe where site 2 can join stream 0.0 later.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut manager = OverlayManager::new(problem.clone());
        manager.subscribe(site(1), stream(0, 0)).unwrap();
        let plan_a = DisseminationPlan::from_forest(
            &problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        );

        // Hand-rolled fleet (short node read timeout so the victim's
        // reader notices the local stop quickly).
        let mut nodes = Vec::new();
        let mut addrs = Vec::new();
        for s in SiteId::all(3) {
            let node = RpNode::bind(s, Duration::from_millis(200)).expect("bind");
            addrs.push(node.local_addr());
            nodes.push(node.spawn());
        }
        let config = ClusterConfig {
            timeout: Duration::from_secs(5),
            ..quick_config()
        };
        let mut coordinator = Coordinator::connect(&plan_a, &addrs, &config).expect("connect");
        coordinator.publish(2).expect("healthy batch");

        // Kill site 2's RP out from under the coordinator, then try a
        // delta that needs it (site 2 subscribes, so a link must open to
        // the dead RP).
        let victim = nodes.remove(2);
        victim.stop();
        victim.join();
        manager.subscribe(site(2), stream(0, 0)).unwrap();
        let mut plan_b = DisseminationPlan::from_forest(
            &problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        );
        plan_b.set_revision(1);
        let delta = PlanDelta::diff(&plan_a, &plan_b);

        let err = coordinator.apply_delta(&delta).unwrap_err();
        assert!(
            matches!(err, ClusterError::Control { .. } | ClusterError::Io(_)),
            "dead RP must surface as a control failure, got {err}"
        );
        assert!(coordinator.is_poisoned());

        // Poisoned: every further operation is refused explicitly
        // instead of running on an unknown plan state.
        assert!(matches!(
            coordinator.publish(1),
            Err(ClusterError::Poisoned)
        ));
        assert!(matches!(
            coordinator.apply_delta(&delta),
            Err(ClusterError::Poisoned)
        ));

        // The poisoning left a postmortem trail: a non-empty flight dump
        // naming the failed revision.
        let dump = coordinator.flight_json().expect("flight dump serializes");
        assert!(!coordinator.flight_recorder().is_empty());
        assert!(dump.contains("Poisoned"), "dump must name the poisoning");
        assert!(
            dump.contains("\"revision\":1"),
            "dump must name the failed revision: {dump}"
        );

        // Shutdown still harvests the surviving RPs' accounting — and
        // *names* the dead RP's missing report instead of dropping it
        // silently.
        let report = coordinator.shutdown();
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 2);
        assert!(
            report.missing_reports >= 1,
            "the dead RP's lost stats must be counted"
        );
        for node in nodes {
            node.stop();
            node.join();
        }
    }

    #[test]
    fn mean_latency_of_unknown_pair_is_none() {
        let report = ClusterReport::default();
        assert_eq!(report.mean_latency_micros(site(0), stream(1, 0)), None);
    }
}
