//! A localhost cluster of live TCP rendezvous points executing — and
//! live-reconfiguring — a dissemination plan.
//!
//! [`LiveCluster`] is the long-lived form: RPs stay up across plan
//! revisions, each holding a revision-tagged forwarding table, and the
//! coordinator pushes [`PlanDelta`]s at them over a TCP control channel
//! ([`Message::Reconfigure`] / [`Message::Ack`]) while data connections
//! keep flowing. [`run_cluster`] is the one-shot convenience wrapper:
//! launch, publish, shut down.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use teeve_pubsub::{DeltaError, DisseminationPlan, PlanDelta, SitePlan};
use teeve_types::{SiteId, StreamId};

use crate::replan::link_changes_between;
use crate::wire::{decode, encode, Message};

/// Configuration of a live cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Frames each origin publishes per stream (used by [`run_cluster`];
    /// [`LiveCluster::publish`] takes its batch size per call).
    pub frames_per_stream: u64,
    /// Synthetic payload size per frame in bytes (kept small in tests; a
    /// real compressed 3DTI frame is ≈66 kB).
    pub payload_bytes: usize,
    /// Optional pacing between frames at the origin (`None` = publish as
    /// fast as the sockets accept, for fast tests).
    pub frame_interval: Option<Duration>,
    /// Deadline for every blocking step: publish-batch completion, socket
    /// reads, and reconfiguration acknowledgements.
    pub timeout: Duration,
}

impl Default for ClusterConfig {
    /// 10 frames per stream, 1 kB payloads, unpaced, 30 s timeout.
    fn default() -> Self {
        ClusterConfig {
            frames_per_stream: 10,
            payload_bytes: 1024,
            frame_interval: None,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Delivery statistics of one live run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterReport {
    /// Frames delivered per (site, stream).
    pub delivered: BTreeMap<(SiteId, StreamId), u64>,
    /// Sum of observed end-to-end latencies per (site, stream), in
    /// microseconds (wall clock).
    pub latency_sum_micros: BTreeMap<(SiteId, StreamId), u64>,
    /// Worst observed end-to-end latency in microseconds (wall clock).
    pub max_latency_micros: u64,
    /// Wall-clock duration from the first published frame to shutdown.
    /// Listener binding and connection setup happen before the clock
    /// starts, so setup cost never pollutes the figure.
    pub elapsed: Duration,
    /// Plan revision the cluster was at when it shut down.
    pub final_revision: u64,
    /// TCP connections opened by reconfigurations (initial plan links are
    /// not counted).
    pub connections_opened: u64,
    /// TCP connections closed by reconfigurations.
    pub connections_closed: u64,
}

impl ClusterReport {
    /// Returns total frames delivered across all sites.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Returns the mean end-to-end latency of one (site, stream) pair in
    /// microseconds, or `None` if nothing was delivered to it.
    pub fn mean_latency_micros(&self, site: SiteId, stream: StreamId) -> Option<u64> {
        let frames = *self.delivered.get(&(site, stream))?;
        if frames == 0 {
            return None;
        }
        Some(self.latency_sum_micros.get(&(site, stream)).copied()? / frames)
    }
}

/// What one applied [`PlanDelta`] did to the running cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigureReport {
    /// The revision every reconfigured RP acknowledged.
    pub revision: u64,
    /// Connections the delta opened (parent → child pairs that carry
    /// their first stream).
    pub established: Vec<(SiteId, SiteId)>,
    /// Connections the delta closed (pairs whose last stream left).
    pub closed: Vec<(SiteId, SiteId)>,
    /// Pairs that kept their connection across the delta.
    pub retained: usize,
    /// RPs whose forwarding tables were swapped (and acknowledged).
    pub reconfigured_sites: usize,
}

impl ReconfigureReport {
    /// Returns true when the delta touched no socket: every reroute moved
    /// streams between connections that already existed and survived.
    pub fn is_socket_free(&self) -> bool {
        self.established.is_empty() && self.closed.is_empty()
    }
}

/// Error produced by a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket setup or transfer failed.
    Io(io::Error),
    /// Deliveries did not complete before the configured timeout.
    Timeout {
        /// Frames delivered so far.
        delivered: u64,
        /// Frames expected in total.
        expected: u64,
    },
    /// A plan delta did not apply to the cluster's current plan.
    Delta(DeltaError),
    /// A delta was produced against a different revision than the cluster
    /// is running.
    StaleRevision {
        /// The revision the cluster is at.
        cluster: u64,
        /// The revision the delta applies from.
        delta: u64,
    },
    /// The control channel to one RP failed during reconfiguration.
    Control {
        /// The RP whose control channel failed.
        site: SiteId,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Timeout {
                delivered,
                expected,
            } => write!(f, "timed out with {delivered}/{expected} frames delivered"),
            ClusterError::Delta(e) => write!(f, "plan delta rejected: {e}"),
            ClusterError::StaleRevision { cluster, delta } => write!(
                f,
                "delta applies from revision {delta} but the cluster runs revision {cluster}"
            ),
            ClusterError::Control { site, detail } => {
                write!(f, "control channel to {site} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<DeltaError> for ClusterError {
    fn from(e: DeltaError) -> Self {
        ClusterError::Delta(e)
    }
}

/// Shared delivery counters. The scalar counters are `AtomicU64`: latency
/// is measured in `u64` microseconds end to end, and `usize` atomics would
/// silently truncate both it and large delivery totals on 32-bit targets.
#[derive(Debug, Default)]
struct Stats {
    delivered: Mutex<BTreeMap<(SiteId, StreamId), u64>>,
    latency_sums: Mutex<BTreeMap<(SiteId, StreamId), u64>>,
    total: AtomicU64,
    max_latency_micros: AtomicU64,
}

impl Stats {
    fn record(&self, site: SiteId, stream: StreamId, latency_micros: u64) {
        *self.delivered.lock().entry((site, stream)).or_default() += 1;
        *self.latency_sums.lock().entry((site, stream)).or_default() += latency_micros;
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_latency_micros
            .fetch_max(latency_micros, Ordering::Relaxed);
    }
}

/// One RP's forwarding state, tagged with the plan revision it belongs to
/// (matching [`PlanDelta::from_revision`]/[`PlanDelta::to_revision`]).
#[derive(Debug)]
struct ForwardingTable {
    revision: u64,
    plan: SitePlan,
}

/// The per-site state shared by an RP's reader threads and the
/// coordinator.
///
/// Termination is **per stream**, not per connection: each stream's
/// multicast tree is acyclic, so its `End` marker cascades from the origin
/// to every subscriber without circular waits. The site-level connection
/// graph (the union of all trees) may contain cycles — a per-connection
/// `Bye` handshake deadlocks on such cycles, which is exactly the hang this
/// design replaces.
struct RpShared {
    site: SiteId,
    /// The live forwarding table; swapped atomically by `Reconfigure`.
    table: Mutex<ForwardingTable>,
    /// Outbound (this RP → child) data connections.
    outbound: Mutex<BTreeMap<SiteId, TcpStream>>,
    /// Upstream RPs currently connected inbound, attributed by the
    /// `Hello { site }` preamble each data connection opens with. This is
    /// what lets the receive side observe a `closed` link die.
    inbound: Mutex<BTreeSet<SiteId>>,
    stats: Arc<Stats>,
    /// Shared timestamp base for capture/delivery micros.
    clock: Instant,
}

impl RpShared {
    /// Children of `stream` under the current table.
    fn children_of(&self, stream: StreamId) -> Vec<SiteId> {
        self.table
            .lock()
            .plan
            .entry(stream)
            .map(|e| e.children.clone())
            .unwrap_or_default()
    }

    /// Forwards one frame to this RP's planned children for `stream`.
    fn forward(&self, stream: StreamId, seq: u64, captured_micros: u64, payload: &Bytes) {
        let children = self.children_of(stream);
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(
            &Message::Frame {
                stream,
                seq,
                captured_micros,
                payload: payload.clone(),
            },
            &mut buf,
        );
        let mut outbound = self.outbound.lock();
        for child in children {
            if let Some(conn) = outbound.get_mut(&child) {
                // A failed forward drops that downstream subtree; the run
                // then surfaces it as missing deliveries.
                let _ = conn.write_all(&buf);
            }
        }
    }

    /// Cascades `stream`'s `End` marker to its children: the graceful
    /// per-stream termination signal. Connections themselves outlive the
    /// stream (they may carry others, or pick new ones up at the next
    /// reconfiguration); the coordinator write-shuts them at shutdown.
    fn end_stream(&self, stream: StreamId) {
        let children = self.children_of(stream);
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(&Message::End { stream }, &mut buf);
        let mut outbound = self.outbound.lock();
        for child in children {
            if let Some(conn) = outbound.get_mut(&child) {
                let _ = conn.write_all(&buf);
            }
        }
    }
}

/// A long-lived cluster of rendezvous points on 127.0.0.1 whose plan can
/// be changed while it runs.
///
/// Lifecycle — the live analogue of the paper's membership-server
/// dictation:
///
/// 1. [`launch`](Self::launch) binds one listener per site, starts accept
///    and reader threads, opens the initial plan's data connections (each
///    opened with a `Hello` identifying the upstream RP), and one control
///    connection from the coordinator to every RP;
/// 2. [`publish`](Self::publish) pushes a batch of frames from every
///    origin and blocks until all planned deliveries of the batch land;
/// 3. [`apply_delta`](Self::apply_delta) reconfigures the running cluster:
///    it opens exactly the connections [`link_changes`] reports as
///    established, pushes `Reconfigure { revision, site_plan }` at every
///    touched RP, collects each epoch-boundary `Ack`, then write-shuts
///    exactly the `closed` connections — `retained` links (including
///    socket-free stream reroutes) are never touched;
/// 4. [`shutdown`](Self::shutdown) cascades per-stream `End` markers,
///    closes every connection, joins the threads, and reports.
///
/// [`link_changes`]: crate::link_changes
pub struct LiveCluster {
    config: ClusterConfig,
    plan: DisseminationPlan,
    addrs: Vec<SocketAddr>,
    shared: Vec<Arc<RpShared>>,
    stats: Arc<Stats>,
    /// Coordinator → RP control channels, one per site.
    control: Vec<TcpStream>,
    handles: Vec<thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    /// Set when the first frame is published; the report's `elapsed`
    /// measures from here, not from setup.
    started: Option<Instant>,
    next_seq: u64,
    expected_total: u64,
    connections_opened: u64,
    connections_closed: u64,
}

impl LiveCluster {
    /// Launches one RP per site of `plan` on 127.0.0.1 and connects the
    /// initial overlay links.
    ///
    /// # Errors
    ///
    /// Returns an error on socket failures, or if the initial links are
    /// not all attributed (`Hello` received) within `config.timeout`.
    pub fn launch(
        plan: &DisseminationPlan,
        config: &ClusterConfig,
    ) -> Result<LiveCluster, ClusterError> {
        let n = plan.site_count();
        let stats = Arc::new(Stats::default());
        let clock = Instant::now();
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut children: Vec<BTreeSet<SiteId>> = vec![BTreeSet::new(); n];
        for (parent, child, _) in plan.edges() {
            children[parent.index()].insert(child);
        }

        // Bind all listeners first so connection order cannot race.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }

        let shared: Vec<Arc<RpShared>> = (0..n)
            .map(|i| {
                let site = SiteId::new(i as u32);
                Arc::new(RpShared {
                    site,
                    table: Mutex::new(ForwardingTable {
                        revision: plan.revision(),
                        plan: plan.site_plan(site).clone(),
                    }),
                    outbound: Mutex::new(BTreeMap::new()),
                    inbound: Mutex::new(BTreeSet::new()),
                    stats: Arc::clone(&stats),
                    clock,
                })
            })
            .collect();

        // Accept threads: accept until shutdown, spawning a reader per
        // connection. Readers carry a read timeout purely as a periodic
        // wake-up to re-check the shutdown flag — an idle link (a cluster
        // sitting quiet between publish batches) must survive arbitrarily
        // long, while a reader that missed its EOF still exits within one
        // timeout of teardown.
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let rp = Arc::clone(&shared[i]);
            let read_timeout = config.timeout;
            let stop = Arc::clone(&shutdown);
            handles.push(thread::spawn(move || {
                let mut readers = Vec::new();
                loop {
                    let Ok((conn, _)) = listener.accept() else {
                        break;
                    };
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    conn.set_read_timeout(Some(read_timeout)).ok();
                    conn.set_nodelay(true).ok();
                    let rp = Arc::clone(&rp);
                    let stop = Arc::clone(&stop);
                    readers.push(thread::spawn(move || reader_loop(conn, &rp, &stop)));
                }
                for r in readers {
                    let _ = r.join();
                }
            }));
        }

        let mut cluster = LiveCluster {
            config: config.clone(),
            plan: plan.clone(),
            addrs,
            shared,
            stats,
            control: Vec::new(),
            handles,
            shutdown,
            started: None,
            next_seq: 0,
            expected_total: 0,
            connections_opened: 0,
            connections_closed: 0,
        };

        // Initial data links (parent → child), one per directed site pair.
        let deadline = Instant::now() + config.timeout;
        let mut pairs = Vec::new();
        for (i, site_children) in children.iter().enumerate() {
            for &child in site_children {
                let parent = SiteId::new(i as u32);
                cluster.open_link(parent, child)?;
                pairs.push((parent, child));
            }
        }
        for &(parent, child) in &pairs {
            cluster.wait_for_inbound(child, parent, true, deadline)?;
        }

        // Control channels: one coordinator connection per RP. They carry
        // no Hello — only Reconfigure/Ack/Bye ever travel on them.
        for addr in &cluster.addrs {
            let conn = TcpStream::connect(addr)?;
            conn.set_nodelay(true).ok();
            conn.set_read_timeout(Some(config.timeout)).ok();
            conn.set_write_timeout(Some(config.timeout)).ok();
            cluster.control.push(conn);
        }

        Ok(cluster)
    }

    /// Returns the plan the cluster currently executes.
    pub fn plan(&self) -> &DisseminationPlan {
        &self.plan
    }

    /// Returns the plan revision the cluster currently runs.
    pub fn revision(&self) -> u64 {
        self.plan.revision()
    }

    /// Returns the number of data connections opened by reconfigurations
    /// so far (initial plan links are not counted).
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened
    }

    /// Returns the number of data connections closed by reconfigurations
    /// so far.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed
    }

    /// Publishes `frames` frames from every origin stream of the current
    /// plan and blocks until all planned deliveries of the batch land.
    ///
    /// The first call starts the report clock: setup cost (listener
    /// binding, connection establishment) is excluded from `elapsed` by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Timeout`] if the batch does not fully
    /// deliver within `config.timeout`.
    pub fn publish(&mut self, frames: u64) -> Result<(), ClusterError> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        let mut origins: Vec<(SiteId, StreamId)> = Vec::new();
        let mut expected_per_frame = 0u64;
        for sp in self.plan.site_plans() {
            expected_per_frame += sp.in_degree() as u64;
            for entry in &sp.entries {
                if entry.is_origin() && !entry.children.is_empty() {
                    origins.push((sp.site, entry.stream));
                }
            }
        }
        let payload = Bytes::from(vec![0x3D; self.config.payload_bytes]);
        for seq in self.next_seq..self.next_seq + frames {
            for &(site, stream) in &origins {
                let rp = &self.shared[site.index()];
                let captured = rp.clock.elapsed().as_micros() as u64;
                rp.forward(stream, seq, captured, &payload);
            }
            if let Some(interval) = self.config.frame_interval {
                thread::sleep(interval);
            }
        }
        self.next_seq += frames;
        self.expected_total += frames * expected_per_frame;
        self.await_deliveries()
    }

    /// Applies one [`PlanDelta`] to the running cluster: opens exactly the
    /// `established` connections, reconfigures every touched RP over its
    /// control channel, waits for all epoch-boundary `Ack`s, then
    /// write-shuts exactly the `closed` connections. Links that are
    /// `retained` — including pairs whose stream set changed — are never
    /// touched, so a socket-free reroute opens and closes nothing.
    ///
    /// # Errors
    ///
    /// Returns an error when the delta's revision does not match the
    /// cluster's, the delta does not apply to the current plan, a socket
    /// operation fails, or an RP does not acknowledge in time. A failed
    /// reconfiguration leaves the cluster in an undefined plan state; shut
    /// it down.
    pub fn apply_delta(&mut self, delta: &PlanDelta) -> Result<ReconfigureReport, ClusterError> {
        if delta.from_revision() != self.plan.revision() {
            return Err(ClusterError::StaleRevision {
                cluster: self.plan.revision(),
                delta: delta.from_revision(),
            });
        }
        let mut next = self.plan.clone();
        delta.apply(&mut next)?;
        let changes = link_changes_between(&self.plan, &next);
        let revision = delta.to_revision();
        let deadline = Instant::now() + self.config.timeout;

        // 1. Open new links before any table switches, so the first frame
        //    routed by a new table already has its socket, and wait until
        //    each child has attributed its new parent from the Hello.
        for &(parent, child) in &changes.established {
            self.open_link(parent, child)?;
        }
        for &(parent, child) in &changes.established {
            self.wait_for_inbound(child, parent, true, deadline)?;
        }

        // 2. Swap forwarding tables over the control plane and collect
        //    every Ack: once all land, no RP forwards by an old table.
        let touched = delta.touched_sites();
        for &site in &touched {
            let mut buf = BytesMut::new();
            encode(
                &Message::Reconfigure {
                    revision,
                    site_plan: next.site_plan(site).clone(),
                },
                &mut buf,
            );
            self.control[site.index()]
                .write_all(&buf)
                .map_err(|e| ClusterError::Control {
                    site,
                    detail: e.to_string(),
                })?;
        }
        for &site in &touched {
            self.await_ack(site, revision)?;
        }

        // 3. Write-shut links whose last stream left, and wait for the
        //    receive side to observe the attributed parent disappear.
        for &(parent, child) in &changes.closed {
            let conn = self.shared[parent.index()].outbound.lock().remove(&child);
            if let Some(conn) = conn {
                let _ = conn.shutdown(Shutdown::Write);
            }
        }
        for &(parent, child) in &changes.closed {
            self.wait_for_inbound(child, parent, false, deadline)?;
        }

        self.connections_opened += changes.established.len() as u64;
        self.connections_closed += changes.closed.len() as u64;
        self.plan = next;
        Ok(ReconfigureReport {
            revision,
            established: changes.established,
            closed: changes.closed,
            retained: changes.retained.len(),
            reconfigured_sites: touched.len(),
        })
    }

    /// Gracefully terminates the cluster: per-stream `End` markers cascade
    /// from every origin, all connections close, every thread joins, and
    /// the delivery report comes back.
    ///
    /// Call after the last [`publish`](Self::publish) batch has completed;
    /// frames still in flight at shutdown are dropped with their links.
    pub fn shutdown(mut self) -> ClusterReport {
        self.teardown();
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
        ClusterReport {
            delivered: self.stats.delivered.lock().clone(),
            latency_sum_micros: self.stats.latency_sums.lock().clone(),
            max_latency_micros: self.stats.max_latency_micros.load(Ordering::Relaxed),
            elapsed: self.started.map(|s| s.elapsed()).unwrap_or_default(),
            final_revision: self.plan.revision(),
            connections_opened: self.connections_opened,
            connections_closed: self.connections_closed,
        }
    }

    /// Connects `parent` → `child` and registers the link, opening with
    /// the `Hello` preamble that lets the child attribute the connection.
    fn open_link(&self, parent: SiteId, child: SiteId) -> Result<(), ClusterError> {
        let mut conn = TcpStream::connect(self.addrs[child.index()])?;
        conn.set_nodelay(true).ok();
        conn.set_write_timeout(Some(self.config.timeout)).ok();
        let mut buf = BytesMut::new();
        encode(&Message::Hello { site: parent }, &mut buf);
        conn.write_all(&buf)?;
        self.shared[parent.index()]
            .outbound
            .lock()
            .insert(child, conn);
        Ok(())
    }

    /// Waits until `child`'s attributed inbound set does (`present`) or
    /// does not (`!present`) contain `parent`.
    fn wait_for_inbound(
        &self,
        child: SiteId,
        parent: SiteId,
        present: bool,
        deadline: Instant,
    ) -> Result<(), ClusterError> {
        loop {
            if self.shared[child.index()].inbound.lock().contains(&parent) == present {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(ClusterError::Control {
                    site: child,
                    detail: format!(
                        "inbound link from {parent} never became {}",
                        if present { "attributed" } else { "closed" }
                    ),
                });
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Reads `site`'s control channel until the `Ack` for `revision`.
    fn await_ack(&mut self, site: SiteId, revision: u64) -> Result<(), ClusterError> {
        let control_err = |detail: String| ClusterError::Control { site, detail };
        let mut buf = BytesMut::with_capacity(256);
        let mut chunk = [0u8; 256];
        loop {
            match decode(&mut buf) {
                Ok(Some(Message::Ack { revision: got })) if got == revision => return Ok(()),
                Ok(Some(other)) => {
                    return Err(control_err(format!("unexpected response {other:?}")))
                }
                Ok(None) => {}
                Err(e) => return Err(control_err(format!("undecodable response: {e}"))),
            }
            // The read timeout set at launch bounds this; a silent RP
            // surfaces as a control error rather than a wedged cluster.
            match self.control[site.index()].read(&mut chunk) {
                Ok(0) => return Err(control_err("control channel closed".into())),
                Ok(read) => buf.extend_from_slice(&chunk[..read]),
                Err(e) => return Err(control_err(format!("ack read failed: {e}"))),
            }
        }
    }

    /// Waits until every published frame has been delivered.
    fn await_deliveries(&self) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.config.timeout;
        loop {
            let delivered = self.stats.total.load(Ordering::Relaxed);
            if delivered >= self.expected_total {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(ClusterError::Timeout {
                    delivered,
                    expected: self.expected_total,
                });
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Idempotent teardown shared by [`shutdown`](Self::shutdown) and
    /// `Drop`: cascade stream ends, close every connection, wake the
    /// accept loops.
    fn teardown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Graceful per-stream termination from every origin; relays
        // cascade the markers. `Bye` below is the connection-level abort.
        for sp in self.plan.site_plans() {
            for entry in &sp.entries {
                if entry.is_origin() && !entry.children.is_empty() {
                    self.shared[sp.site.index()].end_stream(entry.stream);
                }
            }
        }
        for mut conn in self.control.drain(..) {
            let mut buf = BytesMut::new();
            encode(&Message::Bye, &mut buf);
            let _ = conn.write_all(&buf);
            let _ = conn.shutdown(Shutdown::Both);
        }
        for rp in &self.shared {
            let mut outbound = rp.outbound.lock();
            for (_, conn) in outbound.iter() {
                let _ = conn.shutdown(Shutdown::Write);
            }
            outbound.clear();
        }
        // Wake every accept loop; it re-checks the shutdown flag.
        for addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
    }
}

impl Drop for LiveCluster {
    /// Best-effort teardown without joining (readers exit on EOF); the
    /// graceful path is [`shutdown`](Self::shutdown).
    fn drop(&mut self) {
        self.teardown();
    }
}

impl teeve_pubsub::DeltaSink for LiveCluster {
    type Error = ClusterError;

    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error> {
        LiveCluster::apply_delta(self, delta).map(|_| ())
    }
}

/// Runs `plan` once on a [`LiveCluster`]: launch, publish
/// `config.frames_per_stream` synthetic frames per overlay-transiting
/// stream, shut down, report.
///
/// Every RP is a set of real threads: one reader per inbound link
/// (decoding the wire protocol and forwarding frames per its forwarding
/// table) plus the shared accept loop. Termination cascades **per
/// stream**: when a stream's last frame has been published, its `End`
/// marker flows down the stream's (acyclic) multicast tree, and
/// connections are write-shut afterwards — there is no per-connection
/// `Bye` handshake, which would deadlock on cyclic site graphs.
///
/// # Errors
///
/// Returns an error on socket failures or if deliveries do not complete
/// within `config.timeout`.
pub fn run_cluster(
    plan: &DisseminationPlan,
    config: &ClusterConfig,
) -> Result<ClusterReport, ClusterError> {
    let mut cluster = LiveCluster::launch(plan, config)?;
    cluster.publish(config.frames_per_stream)?;
    Ok(cluster.shutdown())
}

/// Reads one inbound link until `Bye`/EOF, recording and forwarding
/// frames, cascading per-stream `End` markers, swapping the forwarding
/// table on `Reconfigure` (answering with the epoch-boundary `Ack`), and
/// attributing the link to its upstream RP via the `Hello` preamble.
///
/// An idle link is kept open indefinitely: the read timeout is only a
/// periodic wake-up to check `stop`, so a long-lived cluster can sit
/// quiet between publish batches without its links (or its control
/// channels) dying underneath it.
fn reader_loop(mut conn: TcpStream, rp: &RpShared, stop: &AtomicBool) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut peer: Option<SiteId> = None;
    loop {
        match decode(&mut buf) {
            Ok(Some(Message::Frame {
                stream,
                seq,
                captured_micros,
                payload,
            })) => {
                let now = rp.clock.elapsed().as_micros() as u64;
                rp.stats
                    .record(rp.site, stream, now.saturating_sub(captured_micros));
                rp.forward(stream, seq, captured_micros, &payload);
                continue;
            }
            Ok(Some(Message::End { stream })) => {
                rp.end_stream(stream);
                continue;
            }
            Ok(Some(Message::Hello { site })) => {
                peer = Some(site);
                rp.inbound.lock().insert(site);
                continue;
            }
            Ok(Some(Message::Reconfigure {
                revision,
                site_plan,
            })) => {
                {
                    // A replayed order for an older revision must not roll
                    // the table back; it is still acknowledged so a
                    // coordinator retry converges.
                    let mut table = rp.table.lock();
                    if revision >= table.revision {
                        table.revision = revision;
                        table.plan = site_plan;
                    }
                }
                // Epoch boundary: everything sent after this Ack is routed
                // by the new table.
                let mut ack = BytesMut::new();
                encode(&Message::Ack { revision }, &mut ack);
                if conn.write_all(&ack).is_err() {
                    break;
                }
                continue;
            }
            // An Ack is never addressed to an RP; drop the link.
            Ok(Some(Message::Bye)) | Ok(Some(Message::Ack { .. })) | Err(_) => break,
            Ok(None) => {}
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => buf.extend_from_slice(&chunk[..read]),
            // The read timeout (WouldBlock on Unix, TimedOut on Windows)
            // just means the link is idle: keep serving it unless the
            // cluster is tearing down. Real errors end the link.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // De-attribute the link: the receive side of a `closed` pair observes
    // the disconnect here.
    if let Some(site) = peer {
        rp.inbound.lock().remove(&site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::{ConstructionAlgorithm, NodeCapacity, ProblemInstance, RandomJoin};
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn quick_config() -> ClusterConfig {
        ClusterConfig {
            frames_per_stream: 5,
            payload_bytes: 256,
            frame_interval: None,
            timeout: Duration::from_secs(20),
        }
    }

    fn relay_plan() -> DisseminationPlan {
        // Source capacity 1 forces 0 -> 1 -> 2 relaying.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(1)),
                NodeCapacity::symmetric(Degree::new(4)),
                NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default())
    }

    #[test]
    fn socket_relay_chain_delivers_every_frame() {
        let plan = relay_plan();
        let report = run_cluster(&plan, &quick_config()).expect("cluster completes");
        assert_eq!(report.delivered[&(site(1), stream(0, 0))], 5);
        assert_eq!(report.delivered[&(site(2), stream(0, 0))], 5);
        assert_eq!(report.total_delivered(), 10);
        // A one-shot run never reconfigures.
        assert_eq!(report.final_revision, 0);
        assert_eq!(report.connections_opened, 0);
        assert_eq!(report.connections_closed, 0);
    }

    #[test]
    fn socket_multi_stream_fanout_delivers_everything() {
        // 4 sites, 2 streams each, everyone subscribes to everything.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(2));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[2, 2, 2, 2]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    b = b.subscribe(site(sub), stream(origin, q));
                }
            }
        }
        let problem = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());

        let config = quick_config();
        let report = run_cluster(&plan, &config).expect("cluster completes");
        // 4 sites x 6 remote streams x 5 frames.
        assert_eq!(report.total_delivered(), 4 * 6 * 5);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    assert_eq!(
                        report.delivered[&(site(sub), stream(origin, q))],
                        5,
                        "site {sub} missing frames of s{origin}.{q}"
                    );
                }
            }
        }
    }

    #[test]
    fn socket_empty_plan_completes_immediately() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 1])
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        let report = run_cluster(&plan, &quick_config()).expect("nothing to deliver");
        assert_eq!(report.total_delivered(), 0);
    }

    #[test]
    fn socket_paced_run_measures_latency() {
        let plan = relay_plan();
        let config = ClusterConfig {
            frames_per_stream: 3,
            payload_bytes: 128,
            frame_interval: Some(Duration::from_millis(5)),
            timeout: Duration::from_secs(20),
        };
        let report = run_cluster(&plan, &config).expect("cluster completes");
        assert_eq!(report.total_delivered(), 6);
        // Localhost latency is nonzero but far below a second.
        assert!(report.max_latency_micros > 0);
        assert!(report.max_latency_micros < 1_000_000);
        // The clock starts at the first publish: the paced batch alone
        // spans at least its inter-frame gaps, setup time excluded.
        assert!(report.elapsed >= Duration::from_millis(10));
        // Per-pair means are consistent with the global maximum.
        for &(site, stream) in report.delivered.keys() {
            let mean = report
                .mean_latency_micros(site, stream)
                .expect("delivered pair has a mean");
            assert!(mean <= report.max_latency_micros);
        }
    }

    #[test]
    fn socket_launch_then_drop_terminates_cleanly() {
        // Dropping an idle cluster (no publish, no shutdown) must tear
        // everything down without wedging the process.
        let plan = relay_plan();
        let cluster = LiveCluster::launch(&plan, &quick_config()).expect("launch");
        assert_eq!(cluster.revision(), 0);
        assert_eq!(cluster.connections_opened(), 0);
        drop(cluster);
    }

    #[test]
    fn socket_stale_delta_is_rejected_before_touching_sockets() {
        let plan = relay_plan();
        let mut cluster = LiveCluster::launch(&plan, &quick_config()).expect("launch");
        // A delta claiming to come from revision 7 cannot apply to a
        // cluster at revision 0.
        let mut future = plan.clone();
        future.set_revision(7);
        let delta = PlanDelta::diff(&future, &future);
        let err = cluster.apply_delta(&delta).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::StaleRevision {
                cluster: 0,
                delta: 7
            }
        ));
        let report = cluster.shutdown();
        assert_eq!(report.connections_opened, 0);
        assert_eq!(report.connections_closed, 0);
    }

    #[test]
    fn mean_latency_of_unknown_pair_is_none() {
        let report = ClusterReport::default();
        assert_eq!(report.mean_latency_micros(site(0), stream(1, 0)), None);
    }
}
