//! The wire-only cluster coordinator: the paper's membership-server
//! dictation with no shared memory.
//!
//! A [`Coordinator`] holds nothing of the rendezvous points it drives but
//! **control connections and site addresses**. Every action is a
//! [`wire`](crate::wire) message: forwarding tables install via
//! `Reconfigure`/`Ack`, links open and close via `OpenLink`/`CloseLink`
//! orders confirmed by `LinkUp`/`LinkDown` notifications from the
//! receiving RP, frames inject via `Publish`/`BatchDone` at origin RPs,
//! and delivery accounting is harvested with `StatsRequest`/`StatsReport`
//! — so the RPs it drives can live in the same process
//! ([`LiveCluster`](crate::LiveCluster)), in separate OS processes, or on
//! other hosts.
//!
//! The coordinator survives losing its control connections:
//! [`Coordinator::detach`] abandons a fleet *without* shutting it down
//! (the RPs keep forwarding by their last-dictated tables), and
//! [`Coordinator::reconnect`] re-adopts it — fresh `Attach`es, a
//! `ResyncQuery`/`ResyncReply` round that rebuilds the coordinator's
//! link view, then re-dictation of the latest revision as a fresh ack
//! barrier. The shape is pinned by the model checker's crash scopes
//! (`teeve-check model --resync`, see `crates/check`): resync replies
//! rebuild the *view* but never choose the dictation target — trusting
//! them is exactly the `ResyncSkip`/`ReconnectRewind` mutant pair the
//! checker kills.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use teeve_pubsub::{DeltaError, DisseminationPlan, PlanDelta};
use teeve_telemetry::{FlightEventKind, FlightRecorder, Histogram, LogHistogram, MetricsRegistry};
use teeve_types::{SiteId, StreamId};

use crate::replan::link_changes_between;
use crate::wire::{decode, encode, Message, StreamDelivery};

/// Configuration of a live cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Frames each origin publishes per stream (used by
    /// [`run_cluster`](crate::run_cluster);
    /// [`Coordinator::publish`] takes its batch size per call).
    pub frames_per_stream: u64,
    /// Synthetic payload size per frame in bytes (kept small in tests; a
    /// real compressed 3DTI frame is ≈66 kB).
    pub payload_bytes: usize,
    /// Optional pacing between frames at the origin (`None` = publish as
    /// fast as the sockets accept, for fast tests).
    pub frame_interval: Option<Duration>,
    /// Deadline for every blocking step: publish-batch completion, socket
    /// reads, and reconfiguration acknowledgements.
    pub timeout: Duration,
}

impl Default for ClusterConfig {
    /// 10 frames per stream, 1 kB payloads, unpaced, 30 s timeout.
    fn default() -> Self {
        ClusterConfig {
            frames_per_stream: 10,
            payload_bytes: 1024,
            frame_interval: None,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Delivery statistics of one live run, folded at shutdown from every
/// RP's [`Message::StatsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterReport {
    /// Frames delivered per (site, stream).
    pub delivered: BTreeMap<(SiteId, StreamId), u64>,
    /// Frames delivered *below full quality* per (site, stream) — the
    /// receipts of the degrade-don't-reject path. A frame counts as
    /// degraded when its effective rung — the coarser of its wire tag
    /// and the receiver's planned rung — is above 0. In steady state the
    /// two agree (parents size and tag every outgoing copy by the
    /// child's `ChildLink` rung, so the bytes on the congested inbound
    /// hop really shrink); during a reconfiguration's propagation window
    /// a frame sent under the old table may count degraded by plan
    /// before its parent re-sizes.
    pub delivered_degraded: BTreeMap<(SiteId, StreamId), u64>,
    /// Sum of observed end-to-end latencies per (site, stream), in
    /// microseconds (wall clock).
    pub latency_sum_micros: BTreeMap<(SiteId, StreamId), u64>,
    /// Full end-to-end latency distribution per (site, stream), in
    /// microseconds — bucket counts carried losslessly off each RP by
    /// [`Message::StatsReport`], so percentiles are exact cluster-wide
    /// (see [`merged_latency`](Self::merged_latency)).
    pub latency: BTreeMap<(SiteId, StreamId), LogHistogram>,
    /// Worst observed end-to-end latency in microseconds (wall clock).
    pub max_latency_micros: u64,
    /// RPs whose final stats report could not be harvested at shutdown
    /// (dead control channel): their deliveries are absent from the maps
    /// above, *named* rather than silently dropped.
    pub missing_reports: u64,
    /// Wall-clock duration from the first published frame to shutdown.
    /// Listener binding and connection setup happen before the clock
    /// starts, so setup cost never pollutes the figure.
    pub elapsed: Duration,
    /// Plan revision the cluster was at when it shut down.
    pub final_revision: u64,
    /// TCP connections opened by reconfigurations (initial plan links are
    /// not counted).
    pub connections_opened: u64,
    /// TCP connections closed by reconfigurations.
    pub connections_closed: u64,
}

impl ClusterReport {
    /// Returns total frames delivered across all sites.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }

    /// Returns the mean end-to-end latency of one (site, stream) pair in
    /// microseconds, or `None` if nothing was delivered to it.
    pub fn mean_latency_micros(&self, site: SiteId, stream: StreamId) -> Option<u64> {
        let frames = *self.delivered.get(&(site, stream))?;
        if frames == 0 {
            return None;
        }
        Some(self.latency_sum_micros.get(&(site, stream)).copied()? / frames)
    }

    /// The cluster-wide end-to-end latency distribution: every per-pair
    /// histogram merged losslessly, so `merged_latency().p99()` is the
    /// true tail over all deliveries everywhere.
    pub fn merged_latency(&self) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for hist in self.latency.values() {
            merged.merge(hist);
        }
        merged
    }
}

/// What one applied [`PlanDelta`] did to the running cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigureReport {
    /// The revision every reconfigured RP acknowledged.
    pub revision: u64,
    /// Subscriptions whose delivery quality the delta moved (rungs
    /// re-stamped in forwarding tables; no socket involvement).
    pub quality_changes: usize,
    /// Connections the delta opened (parent → child pairs that carry
    /// their first stream).
    pub established: Vec<(SiteId, SiteId)>,
    /// Connections the delta closed (pairs whose last stream left).
    pub closed: Vec<(SiteId, SiteId)>,
    /// Pairs that kept their connection across the delta.
    pub retained: usize,
    /// RPs whose forwarding tables were swapped (and acknowledged).
    pub reconfigured_sites: usize,
}

impl ReconfigureReport {
    /// Returns true when the delta touched no socket: every reroute moved
    /// streams between connections that already existed and survived.
    pub fn is_socket_free(&self) -> bool {
        self.established.is_empty() && self.closed.is_empty()
    }
}

/// Error produced by a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket setup or transfer failed.
    Io(io::Error),
    /// Deliveries did not complete before the configured timeout.
    Timeout {
        /// Frames delivered so far.
        delivered: u64,
        /// Frames expected in total.
        expected: u64,
    },
    /// A plan delta did not apply to the cluster's current plan.
    Delta(DeltaError),
    /// A delta was produced against a different revision than the cluster
    /// is running.
    StaleRevision {
        /// The revision the cluster is at.
        cluster: u64,
        /// The revision the delta applies from.
        delta: u64,
    },
    /// The control channel to one RP failed during reconfiguration.
    Control {
        /// The RP whose control channel failed.
        site: SiteId,
        /// What went wrong.
        detail: String,
    },
    /// The coordinator was given a different number of RP addresses than
    /// the plan has sites.
    FleetSize {
        /// Sites in the plan.
        sites: usize,
        /// Addresses supplied.
        addrs: usize,
    },
    /// A previous reconfiguration failed partway, leaving the fleet's
    /// plan state unknown; the cluster refuses further work. Shut it down
    /// (delivery accounting is still harvested best-effort).
    Poisoned,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Timeout {
                delivered,
                expected,
            } => write!(f, "timed out with {delivered}/{expected} frames delivered"),
            ClusterError::Delta(e) => write!(f, "plan delta rejected: {e}"),
            ClusterError::StaleRevision { cluster, delta } => write!(
                f,
                "delta applies from revision {delta} but the cluster runs revision {cluster}"
            ),
            ClusterError::Control { site, detail } => {
                write!(f, "control channel to {site} failed: {detail}")
            }
            ClusterError::FleetSize { sites, addrs } => write!(
                f,
                "plan covers {sites} sites but {addrs} RP addresses were supplied"
            ),
            ClusterError::Poisoned => write!(
                f,
                "cluster poisoned by a failed reconfiguration; shut it down"
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<DeltaError> for ClusterError {
    fn from(e: DeltaError) -> Self {
        ClusterError::Delta(e)
    }
}

/// The latest [`Message::StatsReport`] harvested from one RP.
#[derive(Debug, Clone, Default)]
struct StatsSnapshot {
    probe: u64,
    total: u64,
    max_latency_micros: u64,
    streams: Vec<StreamDelivery>,
}

/// The latest [`Message::ResyncReply`] harvested from one RP.
#[derive(Debug, Clone)]
struct ResyncSnapshot {
    probe: u64,
    revision: u64,
    inbound: Vec<SiteId>,
}

/// The coordinator's entire knowledge of one RP: its address, the control
/// connection, and state reconstructed from its notifications. There is
/// deliberately no `Arc` into RP memory here — this struct is what makes
/// the cluster process-separable.
struct SiteLink {
    site: SiteId,
    addr: SocketAddr,
    conn: TcpStream,
    buf: BytesMut,
    /// Upstream peers the RP has reported `LinkUp` (minus `LinkDown`)
    /// for: the wire-level replacement of the old shared inbound set.
    inbound: BTreeSet<SiteId>,
    /// Revisions the RP has acknowledged.
    acks: BTreeSet<u64>,
    /// Per-stream high-water mark of `BatchDone { next_seq }`.
    batches: BTreeMap<StreamId, u64>,
    /// The freshest stats report, tagged with its probe token.
    stats: Option<StatsSnapshot>,
    /// The freshest resync reply, tagged with its probe token.
    resync: Option<ResyncSnapshot>,
}

impl SiteLink {
    /// Opens a control connection to one RP and attaches as its
    /// coordinator (an `Attach` atomically replaces any prior control
    /// channel on the RP side).
    fn attach(
        site: SiteId,
        addr: SocketAddr,
        config: &ClusterConfig,
    ) -> Result<SiteLink, ClusterError> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(Some(config.timeout)).ok();
        conn.set_write_timeout(Some(config.timeout)).ok();
        let mut link = SiteLink {
            site,
            addr,
            conn,
            buf: BytesMut::with_capacity(4 * 1024),
            inbound: BTreeSet::new(),
            acks: BTreeSet::new(),
            batches: BTreeMap::new(),
            stats: None,
            resync: None,
        };
        link.send(&Message::Attach)?;
        Ok(link)
    }
    /// Folds one decoded control message into the reconstructed state.
    fn dispatch(&mut self, message: Message) -> Result<(), ClusterError> {
        match message {
            Message::LinkUp { peer } => {
                self.inbound.insert(peer);
            }
            Message::LinkDown { peer } => {
                self.inbound.remove(&peer);
            }
            Message::Ack { revision } => {
                self.acks.insert(revision);
            }
            Message::BatchDone { stream, next_seq } => {
                let high = self.batches.entry(stream).or_default();
                *high = (*high).max(next_seq);
            }
            Message::StatsReport {
                probe,
                total,
                max_latency_micros,
                streams,
            } => {
                self.stats = Some(StatsSnapshot {
                    probe,
                    total,
                    max_latency_micros,
                    streams,
                });
            }
            Message::ResyncReply {
                probe,
                revision,
                inbound,
            } => {
                self.resync = Some(ResyncSnapshot {
                    probe,
                    revision,
                    inbound,
                });
            }
            other => {
                return Err(ClusterError::Control {
                    site: self.site,
                    detail: format!("unexpected control-channel message {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Decodes and dispatches every complete message already buffered.
    fn drain(&mut self) -> Result<(), ClusterError> {
        loop {
            match decode(&mut self.buf) {
                Ok(Some(message)) => self.dispatch(message)?,
                Ok(None) => return Ok(()),
                Err(e) => {
                    return Err(ClusterError::Control {
                        site: self.site,
                        detail: format!("undecodable control traffic: {e}"),
                    })
                }
            }
        }
    }

    /// Encodes and sends one order down the control channel.
    fn send(&mut self, message: &Message) -> Result<(), ClusterError> {
        let mut buf = BytesMut::new();
        encode(message, &mut buf);
        self.conn
            .write_all(&buf)
            .map_err(|e| ClusterError::Control {
                site: self.site,
                detail: format!("order write failed: {e}"),
            })
    }

    /// Reads and dispatches control traffic until `pred` yields, or the
    /// deadline passes.
    fn wait_for<T>(
        &mut self,
        deadline: Instant,
        what: &str,
        mut pred: impl FnMut(&SiteLink) -> Option<T>,
    ) -> Result<T, ClusterError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            self.drain()?;
            if let Some(found) = pred(self) {
                return Ok(found);
            }
            if Instant::now() > deadline {
                return Err(ClusterError::Control {
                    site: self.site,
                    detail: format!("timed out waiting for {what}"),
                });
            }
            // The read timeout set at connect bounds this; a silent RP
            // surfaces as a control error rather than a wedged cluster.
            match self.conn.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClusterError::Control {
                        site: self.site,
                        detail: "control channel closed".into(),
                    })
                }
                Ok(read) => self.buf.extend_from_slice(&chunk[..read]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => {
                    return Err(ClusterError::Control {
                        site: self.site,
                        detail: format!("control read failed: {e}"),
                    })
                }
            }
        }
    }
}

/// A cluster coordinator holding only control connections and site
/// addresses.
///
/// Lifecycle — the live analogue of the paper's membership-server
/// dictation, now entirely wire-level:
///
/// 1. [`connect`](Self::connect) attaches one control connection per RP
///    address, installs the initial plan's forwarding tables
///    (`Reconfigure`/`Ack`), and orders the initial data links open
///    (`OpenLink`, confirmed by each child's `LinkUp`);
/// 2. [`publish`](Self::publish) orders a batch of frames out of every
///    origin RP and blocks until every planned delivery is accounted for
///    by stats probes;
/// 3. [`apply_delta`](Self::apply_delta) reconfigures the running fleet:
///    it orders exactly the connections [`link_changes`] reports as
///    established opened, pushes `Reconfigure { revision, site_plan }` at
///    every touched RP, collects each epoch-boundary `Ack`, then orders
///    exactly the `closed` connections shut — `retained` links (including
///    socket-free stream reroutes) are never touched;
/// 4. [`shutdown`](Self::shutdown) harvests every RP's final
///    `StatsReport`, folds them into the [`ClusterReport`], and orders
///    the fleet down.
///
/// A reconfiguration that fails after validation **poisons** the
/// coordinator: the fleet's plan state is unknown, so further
/// [`publish`](Self::publish)/[`apply_delta`](Self::apply_delta) calls
/// return [`ClusterError::Poisoned`] until the cluster is shut down.
///
/// [`link_changes`]: crate::link_changes
pub struct Coordinator {
    config: ClusterConfig,
    plan: DisseminationPlan,
    sites: Vec<SiteLink>,
    started: Option<Instant>,
    next_seq: u64,
    next_probe: u64,
    expected_total: u64,
    connections_opened: u64,
    connections_closed: u64,
    poisoned: bool,
    done: bool,
    registry: MetricsRegistry,
    recorder: FlightRecorder,
    /// Order-sent → link-confirmed latency of `OpenLink` orders.
    link_open_span: Histogram,
    /// Order-sent → closure-confirmed latency of `CloseLink` orders.
    link_close_span: Histogram,
    /// Reconfigure-sent → `Ack` round-trip time, one sample per site.
    reconfigure_rtt: Histogram,
    /// Full resync-round duration of [`reconnect`](Self::reconnect):
    /// first attach → barrier re-dictated and accounting baselined.
    resync_span: Histogram,
}

impl Coordinator {
    /// Connects to an already-listening RP fleet (one address per site of
    /// `plan`, in site order), installs the plan's forwarding tables, and
    /// orders the initial overlay links open.
    ///
    /// # Errors
    ///
    /// Returns an error if the address count mismatches the plan, a
    /// control connection cannot be established, a table install is not
    /// acknowledged, or an initial link does not come up within
    /// `config.timeout`.
    pub fn connect(
        plan: &DisseminationPlan,
        addrs: &[SocketAddr],
        config: &ClusterConfig,
    ) -> Result<Coordinator, ClusterError> {
        if addrs.len() != plan.site_count() {
            return Err(ClusterError::FleetSize {
                sites: plan.site_count(),
                addrs: addrs.len(),
            });
        }
        let mut coordinator = Coordinator::attach_fleet(plan, addrs, config)?;

        let deadline = Instant::now() + config.timeout;
        // Install every forwarding table before any link exists, so the
        // first frame routed already has its table.
        let revision = plan.revision();
        coordinator.recorder.record(FlightEventKind::Reconfigure {
            revision,
            sites: plan.site_count() as u64,
        });
        let sent_at = Instant::now();
        for site in SiteId::all(plan.site_count()) {
            coordinator.sites[site.index()].send(&Message::Reconfigure {
                revision,
                site_plan: plan.site_plan(site).clone(),
            })?;
        }
        for site in SiteId::all(plan.site_count()) {
            coordinator.await_ack(site, revision, deadline)?;
            coordinator.record_ack(site, revision, sent_at);
        }

        // Initial data links (parent → child), one per directed site pair;
        // the RPs dial their own children.
        let pairs: BTreeSet<(SiteId, SiteId)> = plan
            .edges()
            .map(|(parent, child, _)| (parent, child))
            .collect();
        let opens_sent = Instant::now();
        for &(parent, child) in &pairs {
            coordinator.order_open(parent, child)?;
        }
        for &(parent, child) in &pairs {
            coordinator.await_inbound(child, parent, true, deadline)?;
            coordinator.record_link(parent, child, true, opens_sent);
        }
        Ok(coordinator)
    }

    /// Opens and attaches one control connection per RP address and
    /// wraps them in a coordinator with fresh state: the connection
    /// phase shared by [`connect`](Self::connect) (against a bare
    /// fleet) and [`reconnect`](Self::reconnect) (against a live one).
    fn attach_fleet(
        plan: &DisseminationPlan,
        addrs: &[SocketAddr],
        config: &ClusterConfig,
    ) -> Result<Coordinator, ClusterError> {
        if addrs.len() != plan.site_count() {
            return Err(ClusterError::FleetSize {
                sites: plan.site_count(),
                addrs: addrs.len(),
            });
        }
        let mut sites = Vec::with_capacity(addrs.len());
        for (i, &addr) in addrs.iter().enumerate() {
            sites.push(SiteLink::attach(SiteId::new(i as u32), addr, config)?);
        }
        let registry = MetricsRegistry::new();
        Ok(Coordinator {
            config: config.clone(),
            plan: plan.clone(),
            sites,
            started: None,
            next_seq: 0,
            next_probe: 0,
            expected_total: 0,
            connections_opened: 0,
            connections_closed: 0,
            poisoned: false,
            done: false,
            link_open_span: registry.histogram("coordinator.link_open_micros"),
            link_close_span: registry.histogram("coordinator.link_close_micros"),
            reconfigure_rtt: registry.histogram("coordinator.reconfigure_rtt_micros"),
            resync_span: registry.histogram("coordinator.resync_micros"),
            registry,
            recorder: FlightRecorder::new(),
        })
    }

    /// Re-adopts an already-running RP fleet whose previous coordinator
    /// died or [`detach`](Self::detach)ed: attaches a fresh control
    /// connection per RP (atomically replacing any dead one on the RP
    /// side), runs a `ResyncQuery` round to rebuild the coordinator's
    /// view of inbound links, then re-dictates `plan`'s revision to
    /// every RP as a fresh ack barrier.
    ///
    /// `plan` must be the plan the lost coordinator last fully
    /// dictated, revision included (a restarted membership service
    /// recovers it from its session store). Resync replies rebuild the
    /// link *view* only — they never choose what to dictate. Resuming
    /// from a reply's revision instead is the `ResyncSkip`/
    /// `ReconnectRewind` mutant pair the model checker kills: it lets
    /// the fleet's ack barrier regress.
    ///
    /// Delivery accounting restarts at the barrier: frames the fleet
    /// delivered before and during the coordinator gap are baselined
    /// away, so post-reconnect [`publish`](Self::publish) calls block
    /// on exactly the deliveries they order.
    ///
    /// # Errors
    ///
    /// Returns an error if the address count mismatches the plan, a
    /// control connection cannot be established, an RP reports a
    /// revision *ahead* of `plan` (the recovered plan is stale), or an
    /// RP does not answer the resync query, the barrier re-dictation,
    /// or the baseline stats probe within `config.timeout`. A failed
    /// reconnect leaves the fleet running exactly as found — it
    /// detaches rather than tearing down — so the caller can retry
    /// with a fresher plan.
    pub fn reconnect(
        plan: &DisseminationPlan,
        addrs: &[SocketAddr],
        config: &ClusterConfig,
    ) -> Result<Coordinator, ClusterError> {
        let resync_started = Instant::now();
        let mut coordinator = Coordinator::attach_fleet(plan, addrs, config)?;
        match coordinator.resync(resync_started) {
            Ok(()) => Ok(coordinator),
            Err(e) => {
                // A refused or failed resync must leave the fleet exactly
                // as found: detach (drop the control connections) instead
                // of letting `Drop`'s teardown cascade shut it down. The
                // caller can retry with a fresher plan.
                coordinator.done = true;
                Err(e)
            }
        }
    }

    /// The resync round of [`reconnect`](Self::reconnect), run on a
    /// freshly attached fleet: query, rebuild the view, re-dictate the
    /// barrier, baseline accounting.
    fn resync(&mut self, resync_started: Instant) -> Result<(), ClusterError> {
        self.recorder.record(FlightEventKind::ResyncStart);
        let deadline = Instant::now() + self.config.timeout;

        // 1. Query every RP and rebuild the inbound-link view from the
        //    replies. The reported revisions are observed, not obeyed.
        let plan_revision = self.plan.revision();
        self.next_probe += 1;
        let probe = self.next_probe;
        for link in &mut self.sites {
            link.send(&Message::ResyncQuery { probe })?;
        }
        for link in &mut self.sites {
            let snapshot = link.wait_for(deadline, "resync reply", |l| {
                l.resync.as_ref().filter(|r| r.probe >= probe).cloned()
            })?;
            // An RP ahead of the reconnect plan means the recovered plan
            // is stale: re-dictating it would regress the fleet's ack
            // barrier (the model's reconnect-regression violation), so
            // refuse instead.
            if snapshot.revision > plan_revision {
                return Err(ClusterError::Control {
                    site: link.site,
                    detail: format!(
                        "RP serves revision {} ahead of the reconnect plan's \
                         {plan_revision}; the recovered plan is stale",
                        snapshot.revision,
                    ),
                });
            }
            link.inbound = snapshot.inbound.iter().copied().collect();
        }

        // 2. Re-dictate the latest revision as a fresh ack barrier. RPs
        //    already running it re-apply idempotently (tables swap on
        //    `revision >= current`); any that missed the final
        //    pre-crash Reconfigure catch up here.
        let revision = plan_revision;
        let site_count = self.plan.site_count();
        self.recorder.record(FlightEventKind::Reconfigure {
            revision,
            sites: site_count as u64,
        });
        let sent_at = Instant::now();
        for site in SiteId::all(site_count) {
            let site_plan = self.plan.site_plan(site).clone();
            self.sites[site.index()].send(&Message::Reconfigure {
                revision,
                site_plan,
            })?;
        }
        for site in SiteId::all(site_count) {
            self.await_ack(site, revision, deadline)?;
            self.record_ack(site, revision, sent_at);
        }

        // 3. Baseline delivery accounting at the barrier: whatever the
        //    fleet delivered while unsupervised is not this
        //    coordinator's to await.
        self.next_probe += 1;
        let probe = self.next_probe;
        for link in &mut self.sites {
            link.send(&Message::StatsRequest { probe })?;
        }
        let mut baseline = 0u64;
        for link in &mut self.sites {
            let snapshot = link.wait_for(deadline, "baseline stats report", |l| {
                l.stats.as_ref().filter(|s| s.probe >= probe).cloned()
            })?;
            baseline += snapshot.total;
        }
        self.expected_total = baseline;

        self.resync_span.record_duration(resync_started.elapsed());
        self.recorder.record(FlightEventKind::ResyncComplete {
            sites: site_count as u64,
            revision,
        });
        Ok(())
    }

    /// Drops the control connections **without** shutting the fleet
    /// down: every RP keeps forwarding by its last-dictated table,
    /// ready for a successor coordinator to
    /// [`reconnect`](Self::reconnect). The deliberate counterpart of
    /// the [`Drop`] cascade — use it to hand a live fleet over, or to
    /// stand in for coordinator death in tests.
    pub fn detach(mut self) {
        self.recorder.record(FlightEventKind::CoordinatorLost);
        self.done = true;
    }

    /// Returns the plan the cluster currently executes.
    pub fn plan(&self) -> &DisseminationPlan {
        &self.plan
    }

    /// Returns the plan revision the cluster currently runs.
    pub fn revision(&self) -> u64 {
        self.plan.revision()
    }

    /// Returns the number of data connections opened by reconfigurations
    /// so far (initial plan links are not counted).
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened
    }

    /// Returns the number of data connections closed by reconfigurations
    /// so far.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed
    }

    /// Returns true when a failed reconfiguration has left the fleet in
    /// an unknown plan state; see [`ClusterError::Poisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The coordinator's metrics registry: link open/close latencies,
    /// Reconfigure→Ack round-trip times, and resync-round durations as
    /// histograms (`coordinator.link_open_micros`,
    /// `coordinator.link_close_micros`,
    /// `coordinator.reconfigure_rtt_micros`,
    /// `coordinator.resync_micros`).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The coordinator's flight recorder: recent reconfigures, acks,
    /// link churn, poisonings, and lost stats reports as structured
    /// events.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The flight recorder's retained events as JSON — the postmortem
    /// dump taken when a run poisons.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible for this data model).
    pub fn flight_json(&self) -> Result<String, serde_json::Error> {
        self.recorder.dump_json()
    }

    /// Records one site's `Ack` round-trip and its flight event.
    fn record_ack(&self, site: SiteId, revision: u64, sent_at: Instant) {
        self.reconfigure_rtt.record_duration(sent_at.elapsed());
        self.recorder.record(FlightEventKind::Ack {
            site: site.index() as u32,
            revision,
        });
    }

    /// Records one confirmed link transition (order-sent → confirmed)
    /// and its flight event.
    fn record_link(&self, parent: SiteId, child: SiteId, up: bool, sent_at: Instant) {
        let parent = parent.index() as u32;
        let child = child.index() as u32;
        if up {
            self.link_open_span.record_duration(sent_at.elapsed());
            self.recorder
                .record(FlightEventKind::LinkUp { parent, child });
        } else {
            self.link_close_span.record_duration(sent_at.elapsed());
            self.recorder
                .record(FlightEventKind::LinkDown { parent, child });
        }
    }

    /// Orders `frames` frames published from every origin stream of the
    /// current plan and blocks until all planned deliveries of the batch
    /// are accounted for by the fleet's stats reports.
    ///
    /// The first call starts the report clock: setup cost (listener
    /// binding, connection establishment) is excluded from `elapsed` by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Poisoned`] after a failed reconfiguration,
    /// and [`ClusterError::Timeout`] if the batch does not fully deliver
    /// within `config.timeout`.
    pub fn publish(&mut self, frames: u64) -> Result<(), ClusterError> {
        if self.poisoned {
            return Err(ClusterError::Poisoned);
        }
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        let mut origins: Vec<(SiteId, StreamId)> = Vec::new();
        let mut expected_per_frame = 0u64;
        for sp in self.plan.site_plans() {
            expected_per_frame += sp.in_degree() as u64;
            for entry in &sp.entries {
                if entry.is_origin() && !entry.children.is_empty() {
                    origins.push((sp.site, entry.stream));
                }
            }
        }
        let base_seq = self.next_seq;
        let interval_micros = self
            .config
            .frame_interval
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        for &(site, stream) in &origins {
            self.sites[site.index()].send(&Message::Publish {
                stream,
                base_seq,
                frames,
                payload_bytes: self.config.payload_bytes as u32,
                interval_micros,
            })?;
        }
        let deadline = Instant::now() + self.config.timeout;
        let target = base_seq + frames;
        for &(site, stream) in &origins {
            self.sites[site.index()].wait_for(deadline, "publish batch completion", |link| {
                (link.batches.get(&stream).copied().unwrap_or(0) >= target).then_some(())
            })?;
        }
        self.next_seq += frames;
        self.expected_total += frames * expected_per_frame;
        self.await_deliveries()
    }

    /// Applies one [`PlanDelta`] to the running cluster: orders exactly
    /// the `established` connections opened, reconfigures every touched
    /// RP over its control channel, waits for all epoch-boundary `Ack`s,
    /// then orders exactly the `closed` connections shut. Links that are
    /// `retained` — including pairs whose stream set changed — are never
    /// touched, so a socket-free reroute opens and closes nothing.
    ///
    /// # Errors
    ///
    /// Returns an error when the delta's revision does not match the
    /// cluster's, the delta does not apply to the current plan, a socket
    /// operation fails, or an RP does not acknowledge in time. A failure
    /// *after* validation poisons the coordinator — further `publish`/
    /// `apply_delta` calls return [`ClusterError::Poisoned`]; shut the
    /// cluster down.
    pub fn apply_delta(&mut self, delta: &PlanDelta) -> Result<ReconfigureReport, ClusterError> {
        if self.poisoned {
            return Err(ClusterError::Poisoned);
        }
        if delta.from_revision() != self.plan.revision() {
            return Err(ClusterError::StaleRevision {
                cluster: self.plan.revision(),
                delta: delta.from_revision(),
            });
        }
        let mut next = self.plan.clone();
        delta.apply(&mut next)?;
        // Validation passed: any failure beyond this point leaves the
        // fleet partially reconfigured, so it poisons the coordinator.
        match self.reconfigure(delta, next) {
            Ok(report) => Ok(report),
            Err(e) => {
                self.poisoned = true;
                self.recorder.record(FlightEventKind::Poisoned {
                    revision: delta.to_revision(),
                    detail: e.to_string(),
                });
                Err(e)
            }
        }
    }

    /// The socket-touching phase of [`apply_delta`](Self::apply_delta);
    /// `next` is the already-validated successor plan.
    fn reconfigure(
        &mut self,
        delta: &PlanDelta,
        next: DisseminationPlan,
    ) -> Result<ReconfigureReport, ClusterError> {
        let changes = link_changes_between(&self.plan, &next);
        let revision = delta.to_revision();
        let deadline = Instant::now() + self.config.timeout;

        // 1. Open new links before any table switches, so the first frame
        //    routed by a new table already has its socket, and wait until
        //    each child has reported its new parent's link up.
        let opens_sent = Instant::now();
        for &(parent, child) in &changes.established {
            self.order_open(parent, child)?;
        }
        for &(parent, child) in &changes.established {
            self.await_inbound(child, parent, true, deadline)?;
            self.record_link(parent, child, true, opens_sent);
        }

        // 2. Swap forwarding tables over the control plane and collect
        //    every Ack: once all land, no RP forwards by an old table.
        let touched = delta.touched_sites();
        self.recorder.record(FlightEventKind::Reconfigure {
            revision,
            sites: touched.len() as u64,
        });
        let sent_at = Instant::now();
        for &site in &touched {
            self.sites[site.index()].send(&Message::Reconfigure {
                revision,
                site_plan: next.site_plan(site).clone(),
            })?;
        }
        for &site in &touched {
            self.await_ack(site, revision, deadline)?;
            self.record_ack(site, revision, sent_at);
        }

        // 3. Order links whose last stream left shut, and wait for the
        //    receive side to report the attributed parent gone.
        let closes_sent = Instant::now();
        for &(parent, child) in &changes.closed {
            self.sites[parent.index()].send(&Message::CloseLink { child })?;
        }
        for &(parent, child) in &changes.closed {
            self.await_inbound(child, parent, false, deadline)?;
            self.record_link(parent, child, false, closes_sent);
        }

        self.connections_opened += changes.established.len() as u64;
        self.connections_closed += changes.closed.len() as u64;
        self.plan = next;
        Ok(ReconfigureReport {
            revision,
            quality_changes: delta.quality_changes().len(),
            established: changes.established,
            closed: changes.closed,
            retained: changes.retained.len(),
            reconfigured_sites: touched.len(),
        })
    }

    /// Shuts the fleet down and reports: harvests every RP's final stats
    /// report, folds them into the [`ClusterReport`], then orders every
    /// RP to exit.
    ///
    /// Harvesting is best-effort — an RP whose control channel already
    /// failed (e.g. after a poisoning reconfiguration) contributes
    /// nothing to the report instead of failing the shutdown.
    pub fn shutdown(mut self) -> ClusterReport {
        let elapsed = self.started.map(|s| s.elapsed()).unwrap_or_default();
        let deadline = Instant::now() + self.config.timeout;
        self.next_probe += 1;
        let probe = self.next_probe;
        let mut report = ClusterReport {
            elapsed,
            final_revision: self.plan.revision(),
            connections_opened: self.connections_opened,
            connections_closed: self.connections_closed,
            ..ClusterReport::default()
        };
        let mut reachable: Vec<bool> = Vec::with_capacity(self.sites.len());
        for link in &mut self.sites {
            reachable.push(link.send(&Message::StatsRequest { probe }).is_ok());
        }
        for (link, ok) in self.sites.iter_mut().zip(reachable) {
            let snapshot = if ok {
                link.wait_for(deadline, "final stats report", |l| {
                    l.stats.as_ref().filter(|s| s.probe >= probe).cloned()
                })
                .ok()
            } else {
                None
            };
            // A dead RP's accounting is *named* as missing, never
            // silently dropped: the report stays auditable after a
            // poisoning run.
            let Some(snapshot) = snapshot else {
                report.missing_reports += 1;
                self.recorder.record(FlightEventKind::StatsLost {
                    site: link.site.index() as u32,
                });
                continue;
            };
            for entry in snapshot.streams {
                report
                    .delivered
                    .insert((link.site, entry.stream), entry.delivered);
                report
                    .delivered_degraded
                    .insert((link.site, entry.stream), entry.delivered_degraded);
                report
                    .latency_sum_micros
                    .insert((link.site, entry.stream), entry.latency_sum_micros);
                report
                    .latency
                    .insert((link.site, entry.stream), entry.latency);
            }
            report.max_latency_micros = report.max_latency_micros.max(snapshot.max_latency_micros);
        }
        for link in &mut self.sites {
            let _ = link.send(&Message::Shutdown);
        }
        self.done = true;
        report
    }

    /// Orders `parent` to open its data link to `child`, resolving the
    /// child's address from the fleet table.
    fn order_open(&mut self, parent: SiteId, child: SiteId) -> Result<(), ClusterError> {
        let addr = self.sites[child.index()].addr;
        self.sites[parent.index()].send(&Message::OpenLink { child, addr })
    }

    /// Waits until `child` has reported the inbound link from `parent`
    /// up (`present`) or down (`!present`).
    fn await_inbound(
        &mut self,
        child: SiteId,
        parent: SiteId,
        present: bool,
        deadline: Instant,
    ) -> Result<(), ClusterError> {
        let what = if present {
            "inbound link attribution"
        } else {
            "inbound link closure"
        };
        self.sites[child.index()]
            .wait_for(deadline, what, |link| {
                (link.inbound.contains(&parent) == present).then_some(())
            })
            .map_err(|e| match e {
                ClusterError::Control { site, detail } => ClusterError::Control {
                    site,
                    detail: format!("{detail} (link {parent} -> {child})"),
                },
                other => other,
            })
    }

    /// Waits for `site`'s `Ack` of `revision`.
    fn await_ack(
        &mut self,
        site: SiteId,
        revision: u64,
        deadline: Instant,
    ) -> Result<(), ClusterError> {
        self.sites[site.index()].wait_for(deadline, "reconfiguration ack", |link| {
            link.acks.contains(&revision).then_some(())
        })
    }

    /// Polls the fleet's stats until every published frame is accounted
    /// for.
    fn await_deliveries(&mut self) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.config.timeout;
        loop {
            self.next_probe += 1;
            let probe = self.next_probe;
            for link in &mut self.sites {
                link.send(&Message::StatsRequest { probe })?;
            }
            let mut delivered = 0u64;
            for link in &mut self.sites {
                let snapshot = link.wait_for(deadline, "stats report", |l| {
                    l.stats.as_ref().filter(|s| s.probe >= probe).cloned()
                })?;
                delivered += snapshot.total;
            }
            if delivered >= self.expected_total {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(ClusterError::Timeout {
                    delivered,
                    expected: self.expected_total,
                });
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Coordinator {
    /// Best-effort fleet teardown for coordinators dropped without
    /// [`shutdown`](Self::shutdown): every RP is ordered to exit so no
    /// node outlives its abandoned coordinator.
    fn drop(&mut self) {
        if self.done {
            return;
        }
        for link in &mut self.sites {
            let _ = link.send(&Message::Shutdown);
        }
    }
}

impl teeve_pubsub::DeltaSink for Coordinator {
    type Error = ClusterError;

    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error> {
        Coordinator::apply_delta(self, delta).map(|_| ())
    }
}
