//! Live TCP rendezvous-point substrate for TEEVE dissemination plans.
//!
//! The paper's deployment vision — RPs at every site forwarding 3D video
//! streams along the constructed overlay, reconfigured by the membership
//! server as displays change FOV and sites churn — realized as real
//! sockets: each RP runs reader threads per inbound overlay link and
//! forwards frames to its planned children over a length-prefixed binary
//! protocol ([`wire`]).
//!
//! The substrate is **process-separable**: an [`RpNode`] is one site's
//! autonomous RP runtime — it owns its listener, forwarding table, link
//! set, and delivery counters, and is addressed only by socket — while a
//! [`Coordinator`] holds nothing but control connections and site
//! addresses. Every coordinator action is a [`wire`] message (table
//! installs via `Reconfigure`/`Ack`, link lifecycle via
//! `OpenLink`/`CloseLink` orders confirmed by `LinkUp`/`LinkDown`
//! notifications, frame injection via `Publish`/`BatchDone`, delivery
//! accounting via `StatsRequest`/`StatsReport`), so the same coordinator
//! drives RPs spawned as threads, as separate OS processes, or on other
//! hosts.
//!
//! [`LiveCluster`] is the in-process convenience wrapper (N spawned
//! nodes + one coordinator) that keeps the RPs up across plan revisions:
//! each [`PlanDelta`](teeve_pubsub::PlanDelta) is pushed at the running
//! cluster over the control plane, opening only the connections
//! [`link_changes`] reports as established and closing only the ones
//! whose last stream left — socket-free reroutes touch nothing.
//! [`run_cluster`] is the one-shot wrapper: launch, publish, shut down,
//! report per-site delivery counts and latencies.
//!
//! # Hosting modes: threads vs the reactor
//!
//! An RP can be hosted two ways, speaking the identical wire protocol:
//!
//! - **Thread-per-connection** ([`RpNode::spawn`]): an accept thread plus
//!   one reader thread per inbound link. Simple and robust, but a fleet
//!   of N sites costs well over 2N threads — fine for a handful of
//!   sites, prohibitive for hundreds of sessions in one process.
//! - **Event-driven** ([`Reactor::bind_node`]): a fixed pool of
//!   non-blocking event loops hosts every RP. Each loop owns its nodes'
//!   complete state (no locks), decodes incrementally from
//!   per-connection read buffers, coalesces writes per wakeup with
//!   backpressure-aware pending buffers, and paces `Publish` batches
//!   with timers instead of sleeping threads — thousands of RPs at a
//!   thread budget that does not grow with fleet size.
//!
//! [`LiveCluster::launch`] uses the threaded path;
//! [`LiveCluster::launch_reactor`] hosts the same fleet on a reactor.
//! Both forward through one shared frame encoder, so delivery accounting
//! is bit-identical across hosting modes.
//!
//! # Examples
//!
//! ```no_run
//! use rand::SeedableRng;
//! use teeve_net::{run_cluster, ClusterConfig};
//! use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
//! use teeve_pubsub::{DisseminationPlan, StreamProfile};
//! use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
//! let problem = ProblemInstance::builder(costs, CostMs::new(50))
//!     .symmetric_capacities(Degree::new(4))
//!     .streams_per_site(&[1, 1, 1])
//!     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
//!     .build()?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let outcome = RandomJoin::default().construct(&problem, &mut rng);
//! let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
//!
//! let report = run_cluster(&plan, &ClusterConfig::default())?;
//! println!("delivered {} frames", report.total_delivered());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod coordinator;
mod node;
mod reactor;
mod replan;
pub mod wire;

pub use cluster::{run_cluster, LiveCluster};
pub use coordinator::{ClusterConfig, ClusterError, ClusterReport, Coordinator, ReconfigureReport};
pub use node::{RpNode, RpNodeHandle};
pub use reactor::{Reactor, ReactorNodeHandle};
pub use replan::{link_changes, link_changes_between, LinkChanges};
