//! Live TCP rendezvous-point substrate for TEEVE dissemination plans.
//!
//! The paper's deployment vision — RPs at every site forwarding 3D video
//! streams along the constructed overlay — realized as real sockets: each
//! RP runs reader threads per inbound overlay link and forwards frames to
//! its planned children over a length-prefixed binary protocol
//! ([`wire`]). [`run_cluster`] launches one RP per site on 127.0.0.1,
//! publishes synthetic frames from every origin, and reports per-site
//! delivery counts and latencies.
//!
//! # Examples
//!
//! ```no_run
//! use rand::SeedableRng;
//! use teeve_net::{run_cluster, ClusterConfig};
//! use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
//! use teeve_pubsub::{DisseminationPlan, StreamProfile};
//! use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
//! let problem = ProblemInstance::builder(costs, CostMs::new(50))
//!     .symmetric_capacities(Degree::new(4))
//!     .streams_per_site(&[1, 1, 1])
//!     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
//!     .build()?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let outcome = RandomJoin::default().construct(&problem, &mut rng);
//! let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
//!
//! let report = run_cluster(&plan, &ClusterConfig::default())?;
//! println!("delivered {} frames", report.total_delivered());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod replan;
pub mod wire;

pub use cluster::{run_cluster, ClusterConfig, ClusterError, ClusterReport};
pub use replan::{link_changes, LinkChanges};
