//! A standalone rendezvous-point runtime, addressed only by socket.
//!
//! [`RpNode`] is one site's RP as an autonomous unit: it owns its TCP
//! listener, its revision-tagged forwarding table, its outbound link set,
//! and its delivery counters. Everything a coordinator does to it —
//! installing tables, opening and closing links, injecting frames,
//! harvesting statistics, shutting it down — arrives as a
//! [`wire`](crate::wire) message, so the node runs equally well as a
//! thread inside the coordinator's process ([`LiveCluster`] spawns it
//! that way), as its own OS process, or (in principle) on another host.
//!
//! The node is purely reactive: it binds, accepts, and answers. The
//! coordinator's first connection sends [`Message::Attach`] to mark
//! itself as the control channel; the node then routes all of its
//! notifications ([`Message::LinkUp`]/[`Message::LinkDown`]) and replies
//! ([`Message::Ack`], [`Message::BatchDone`], [`Message::StatsReport`])
//! through that channel, serialized by one writer lock so concurrent
//! reader threads can never interleave message bytes.
//!
//! [`LiveCluster`]: crate::LiveCluster

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use teeve_pubsub::{ChildLink, SitePlan};
use teeve_telemetry::{FlightEventKind, FlightRecorder, LogHistogram};
use teeve_types::{Quality, SiteId, StreamId};

use crate::wire::{decode, encode, Message, StreamDelivery};

/// Microseconds since the Unix epoch: the capture/delivery timestamp base.
/// A wall clock (not a process-local [`std::time::Instant`]) so frames
/// published by one process measure sane latencies when delivered in
/// another. Delegates to the workspace's single sanctioned clock module.
pub(crate) use teeve_types::clock::unix_micros;

/// The node's forwarding state, tagged with the plan revision it belongs
/// to (matching `PlanDelta::from_revision`/`PlanDelta::to_revision`).
///
/// Shared with the reactor path: a reactor-hosted RP holds exactly this
/// state, just not behind a lock (one event-loop thread owns it).
#[derive(Debug)]
pub(crate) struct ForwardingTable {
    pub(crate) revision: u64,
    pub(crate) plan: SitePlan,
}

impl ForwardingTable {
    /// An empty revision-0 table for `site` — every RP's boot state.
    pub(crate) fn empty(site: SiteId) -> ForwardingTable {
        ForwardingTable {
            revision: 0,
            plan: SitePlan {
                site,
                entries: Vec::new(),
            },
        }
    }
}

/// Child links and planned quality of `stream` under `plan` (the
/// absent-entry default is leaf-at-full, matching the admission path).
pub(crate) fn plan_entry(plan: &SitePlan, stream: StreamId) -> (Vec<ChildLink>, Quality) {
    plan.entry(stream)
        .map(|e| (e.children.clone(), e.quality))
        .unwrap_or((Vec::new(), Quality::FULL))
}

/// Encodes the outgoing copies of one frame, one per child, degraded to
/// the coarsest of the arriving tag, this RP's effective rung, and each
/// child's planned rung — one shared encoding per distinct outgoing rung
/// (siblings at the same rung reference the same bytes).
///
/// Both socket paths — the thread-per-connection `reader_loop` and the
/// reactor — forward through this one function, so the bytes an RP puts
/// on every hop are identical regardless of how it is hosted; the
/// reactor-vs-threads delivery-parity test leans on that.
pub(crate) fn encode_frame_copies(
    stream: StreamId,
    seq: u64,
    captured_micros: u64,
    payload: &Bytes,
    tagged: Quality,
    effective: Quality,
    children: &[ChildLink],
) -> Vec<(SiteId, Bytes)> {
    let mut encoded: BTreeMap<Quality, Bytes> = BTreeMap::new();
    let mut copies = Vec::with_capacity(children.len());
    for child in children {
        let rung = effective.max(child.quality);
        let buf = encoded.entry(rung).or_insert_with(|| {
            let extra = Quality::new((rung.rung() - tagged.rung()) as u8);
            let mut buf = BytesMut::new();
            encode(
                &Message::Frame {
                    stream,
                    quality: rung,
                    seq,
                    captured_micros,
                    payload: payload.slice(0..extra.scaled_len(payload.len())),
                },
                &mut buf,
            );
            buf.freeze()
        });
        copies.push((child.site, buf.clone()));
    }
    copies
}

/// One stream's local delivery accounting at this RP.
#[derive(Debug, Default, Clone)]
struct StreamStats {
    /// Frames delivered.
    delivered: u64,
    /// Frames whose effective rung — the coarser of the wire tag and
    /// this RP's planned quality — was below full.
    degraded: u64,
    /// Sum of observed end-to-end latencies, microseconds.
    latency_sum_micros: u64,
    /// Full end-to-end latency distribution, microseconds.
    latency: LogHistogram,
}

/// The node's local delivery counters, reported over the wire via
/// [`Message::StatsReport`] — no memory is shared with the coordinator.
///
/// Shared with the reactor path; the interior lock is uncontended there
/// (one event-loop thread per node) but keeps the type identical across
/// both hosting modes.
#[derive(Debug, Default)]
pub(crate) struct NodeStats {
    /// Per-stream delivery accounting at this site.
    delivered: Mutex<BTreeMap<StreamId, StreamStats>>,
    total: AtomicU64,
    max_latency_micros: AtomicU64,
}

impl NodeStats {
    pub(crate) fn record(&self, stream: StreamId, latency_micros: u64, degraded: bool) {
        let mut delivered = self.delivered.lock();
        let entry = delivered.entry(stream).or_default();
        entry.delivered += 1;
        entry.degraded += u64::from(degraded);
        entry.latency_sum_micros += latency_micros;
        entry.latency.record(latency_micros);
        drop(delivered);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_latency_micros
            .fetch_max(latency_micros, Ordering::Relaxed);
    }

    pub(crate) fn report(&self, probe: u64) -> Message {
        let streams = self
            .delivered
            .lock()
            .iter()
            .map(|(&stream, stats)| StreamDelivery {
                stream,
                delivered: stats.delivered,
                delivered_degraded: stats.degraded,
                latency_sum_micros: stats.latency_sum_micros,
                latency: stats.latency.clone(),
            })
            .collect();
        Message::StatsReport {
            probe,
            total: self.total.load(Ordering::Relaxed),
            max_latency_micros: self.max_latency_micros.load(Ordering::Relaxed),
            streams,
        }
    }
}

/// State shared by the node's accept loop and per-connection readers.
struct NodeShared {
    site: SiteId,
    /// The address this node *advertises*: what the coordinator dials
    /// and hands to parents in `OpenLink` orders. Defaults to the bound
    /// listener address; multi-host deployments advertise a reachable
    /// address distinct from the (possibly wildcard) bind address.
    advertise: SocketAddr,
    /// The bound listener address as locally reachable, used to
    /// self-connect and wake the accept loop at shutdown (a wildcard
    /// bind maps to loopback).
    wake: SocketAddr,
    /// The live forwarding table; swapped atomically by `Reconfigure`.
    table: Mutex<ForwardingTable>,
    /// Outbound (this RP → child) data connections, opened by `OpenLink`
    /// orders — the node dials its own upstream targets.
    outbound: Mutex<BTreeMap<SiteId, TcpStream>>,
    /// The coordinator control channel (write half) with the attach
    /// generation that installed it, designated by `Attach`. One lock
    /// serializes every control-bound write so reader threads cannot
    /// interleave message bytes. A later `Attach` atomically replaces the
    /// channel (latest wins); the generation lets the reader serving a
    /// *replaced* channel exit without clobbering its successor.
    control: Mutex<Option<(u64, TcpStream)>>,
    /// Monotonic counter of `Attach` orders ever honored, numbering the
    /// control-channel generations.
    control_generation: AtomicU64,
    /// Upstream sites with live inbound data connections (`Hello`
    /// attribution counts, so an overlapping close/reopen never drops
    /// the peer from the set early). Reported by `ResyncReply`.
    inbound: Mutex<BTreeMap<SiteId, u32>>,
    stats: NodeStats,
    /// Ring of recent structured events (reconfigures, link churn) for
    /// post-mortem inspection; never crosses the wire.
    recorder: FlightRecorder,
    stop: AtomicBool,
    /// Socket deadline for dials and writes; also the idle wake-up period
    /// of every reader (a blocked read re-checks `stop` this often).
    timeout: Duration,
}

impl NodeShared {
    /// Child links and planned quality of `stream` under the current
    /// table.
    fn entry_of(&self, stream: StreamId) -> (Vec<ChildLink>, Quality) {
        plan_entry(&self.table.lock().plan, stream)
    }

    /// Children of `stream` under the current table.
    fn children_of(&self, stream: StreamId) -> Vec<SiteId> {
        self.entry_of(stream)
            .0
            .into_iter()
            .map(|c| c.site)
            .collect()
    }

    /// Forwards one frame — arriving at `tagged` quality — to this RP's
    /// planned children for `stream`. Each outgoing copy is degraded to
    /// the coarsest of the tag, this RP's own planned rung, and the
    /// *child's* rung from the plan's [`ChildLink`]: the payload is
    /// sized down one halving per extra rung and re-tagged, so quality
    /// only ever degrades along a path and the hop *into* a degraded
    /// receiver carries exactly the degraded bytes — this is where the
    /// admission path's per-site budget relief actually lands on the
    /// wire. Returns the effective rung this RP itself delivers at (tag
    /// vs own plan), which its stats record.
    fn forward(
        &self,
        stream: StreamId,
        seq: u64,
        captured_micros: u64,
        payload: &Bytes,
        tagged: Quality,
    ) -> Quality {
        let (children, planned) = self.entry_of(stream);
        let effective = tagged.max(planned);
        if children.is_empty() {
            return effective;
        }
        let copies = encode_frame_copies(
            stream,
            seq,
            captured_micros,
            payload,
            tagged,
            effective,
            &children,
        );
        let mut outbound = self.outbound.lock();
        for (site, buf) in copies {
            if let Some(conn) = outbound.get_mut(&site) {
                // A failed forward drops that downstream subtree; the run
                // then surfaces it as missing deliveries.
                let _ = conn.write_all(&buf);
            }
        }
        effective
    }

    /// Cascades `stream`'s `End` marker to its children: the graceful
    /// per-stream termination signal. Connections themselves outlive the
    /// stream (they may carry others, or pick new ones up at the next
    /// reconfiguration).
    fn end_stream(&self, stream: StreamId) {
        let children = self.children_of(stream);
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(&Message::End { stream }, &mut buf);
        let mut outbound = self.outbound.lock();
        for child in children {
            if let Some(conn) = outbound.get_mut(&child) {
                let _ = conn.write_all(&buf);
            }
        }
    }

    /// Sends one message up the attached control channel (best effort: a
    /// detached or dead coordinator drops the notification — this is the
    /// ack-suppression the resync contract relies on).
    fn notify(&self, message: &Message) {
        let mut buf = BytesMut::new();
        encode(message, &mut buf);
        let mut control = self.control.lock();
        if let Some((_, conn)) = control.as_mut() {
            let _ = conn.write_all(&buf);
        }
    }

    /// Executes an `OpenLink` order: dial the child, open with the
    /// `Hello` preamble, register the outbound link. Failure is silent on
    /// this side — the coordinator observes it as a missing `LinkUp`.
    fn open_link(&self, child: SiteId, addr: SocketAddr) -> io::Result<()> {
        let mut conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true).ok();
        conn.set_write_timeout(Some(self.timeout)).ok();
        let mut buf = BytesMut::new();
        encode(&Message::Hello { site: self.site }, &mut buf);
        conn.write_all(&buf)?;
        self.outbound.lock().insert(child, conn);
        Ok(())
    }

    /// Executes a `CloseLink` order: write-shut and drop the link so the
    /// child observes EOF (and reports `LinkDown`).
    fn close_link(&self, child: SiteId) {
        // Detach under the lock, shut down after releasing it: shutdown
        // can block on the peer's TCP stack and must not stall forwards.
        let conn = self.outbound.lock().remove(&child);
        if let Some(conn) = conn {
            let _ = conn.shutdown(Shutdown::Write);
        }
    }

    /// Executes a `Publish` order: inject a batch of synthetic frames of
    /// a locally originated stream into the overlay.
    fn publish_batch(
        &self,
        stream: StreamId,
        base_seq: u64,
        frames: u64,
        payload_bytes: u32,
        interval_micros: u64,
    ) {
        let payload = Bytes::from(vec![0x3D; payload_bytes as usize]);
        for seq in base_seq..base_seq.saturating_add(frames) {
            // The origin publishes at full quality; `forward` degrades
            // (sizes and tags) to the origin entry's planned rung.
            self.forward(stream, seq, unix_micros(), &payload, Quality::FULL);
            if interval_micros > 0 {
                thread::sleep(Duration::from_micros(interval_micros));
            }
        }
    }

    /// Idempotent teardown: cascade `End` markers for locally originated
    /// streams, write-shut every outbound link, and wake the accept loop
    /// so the node exits.
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let origins: Vec<StreamId> = {
            let table = self.table.lock();
            table
                .plan
                .entries
                .iter()
                .filter(|e| e.is_origin() && !e.children.is_empty())
                .map(|e| e.stream)
                .collect()
        };
        for stream in origins {
            self.end_stream(stream);
        }
        // Take the whole map under a scoped lock, then shut the links
        // down and dial the wake socket with no guard held.
        let links: Vec<TcpStream> = std::mem::take(&mut *self.outbound.lock())
            .into_values()
            .collect();
        for conn in links {
            let _ = conn.shutdown(Shutdown::Write);
        }
        // Wake the accept loop; it re-checks the stop flag.
        let _ = TcpStream::connect(self.wake);
    }
}

/// A bound-but-not-yet-running rendezvous point.
///
/// `bind` reserves the listener (so the address can be published before
/// any traffic exists), then either [`spawn`](Self::spawn) runs the
/// accept loop on a background thread (in-process fleets) or
/// [`run`](Self::run) blocks the calling thread until shutdown (the
/// standalone-process entry point).
pub struct RpNode {
    shared: Arc<NodeShared>,
    listener: TcpListener,
}

impl RpNode {
    /// Binds a new RP for `site` on an OS-assigned 127.0.0.1 port.
    ///
    /// `read_timeout` is every connection's periodic wake-up to re-check
    /// the stop flag — an idle link survives arbitrarily many timeouts —
    /// and the node's deadline for dials and writes.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be bound.
    pub fn bind(site: SiteId, read_timeout: Duration) -> io::Result<RpNode> {
        Self::bind_to(
            site,
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0),
            read_timeout,
        )
    }

    /// Binds a new RP for `site` on an explicit address (`bind` with port
    /// 0 picks a free localhost port); the node advertises the address it
    /// actually bound.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be bound.
    pub fn bind_to(site: SiteId, addr: SocketAddr, read_timeout: Duration) -> io::Result<RpNode> {
        Self::bind_advertised(site, addr, None, read_timeout)
    }

    /// Binds a new RP for `site` on `bind` while *advertising* a
    /// (possibly different) address — the multi-host shape, where a node
    /// binds a wildcard or private address but must be dialed by the
    /// coordinator (and by parent RPs executing `OpenLink` orders) at a
    /// routable one. An advertised port of 0 is substituted with the
    /// port actually bound, so `0.0.0.0:0` + `advertise 10.0.0.7:0`
    /// works without pre-allocating ports. `advertise: None` falls back
    /// to the bound address, which is how the loopback defaults of
    /// [`bind`](Self::bind)/[`bind_to`](Self::bind_to) stay unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be bound.
    pub fn bind_advertised(
        site: SiteId,
        bind: SocketAddr,
        advertise: Option<SocketAddr>,
        read_timeout: Duration,
    ) -> io::Result<RpNode> {
        let listener = TcpListener::bind(bind)?;
        let bound = listener.local_addr()?;
        let advertise = match advertise {
            Some(mut addr) => {
                if addr.port() == 0 {
                    addr.set_port(bound.port());
                }
                addr
            }
            None => bound,
        };
        // The shutdown self-connect must reach the listener from this
        // process; a wildcard bind is reachable via loopback.
        let mut wake = bound;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        Ok(RpNode {
            shared: Arc::new(NodeShared {
                site,
                advertise,
                wake,
                table: Mutex::new(ForwardingTable::empty(site)),
                outbound: Mutex::new(BTreeMap::new()),
                control: Mutex::new(None),
                control_generation: AtomicU64::new(0),
                inbound: Mutex::new(BTreeMap::new()),
                stats: NodeStats::default(),
                recorder: FlightRecorder::new(),
                stop: AtomicBool::new(false),
                timeout: read_timeout,
            }),
            listener,
        })
    }

    /// Returns the node's advertised address — the only thing a
    /// coordinator needs to drive it. Equal to the bound listener address
    /// unless [`bind_advertised`](Self::bind_advertised) overrode it.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.advertise
    }

    /// Returns the site this node serves.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// Starts the accept loop on a background thread and returns the
    /// handle controlling it.
    pub fn spawn(self) -> RpNodeHandle {
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, &accept_shared));
        RpNodeHandle { shared, accept }
    }

    /// Runs the node on the calling thread until it is shut down (by a
    /// coordinator [`Message::Shutdown`] or a local signal) — the entry
    /// point for a standalone RP process.
    pub fn run(self) {
        self.spawn().join();
    }
}

/// A running [`RpNode`]'s control handle.
pub struct RpNodeHandle {
    shared: Arc<NodeShared>,
    accept: thread::JoinHandle<()>,
}

impl RpNodeHandle {
    /// Returns the node's advertised address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.advertise
    }

    /// Returns the site this node serves.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// The node's flight recorder: recent reconfigures and link churn as
    /// structured events, for postmortems. Clones share the ring.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.recorder
    }

    /// Begins local teardown, as if a [`Message::Shutdown`] order had
    /// arrived: end-markers cascade, outbound links write-shut, the
    /// accept loop wakes and exits. Idempotent; does not block.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the node to exit (its accept loop broken and every
    /// reader thread joined). Readers blocked on an idle connection exit
    /// within one read timeout of the stop flag being set.
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Accepts connections until the stop flag is set, spawning a reader per
/// connection.
///
/// The stop flag is checked **before** a reader is spawned, and a
/// connection that raced past it is dropped on the floor: without this
/// order, a connection accepted after teardown began would get a reader
/// spawned for it just before the loop breaks, leaving a thread serving a
/// link the cluster has already abandoned.
fn accept_loop(listener: TcpListener, shared: &Arc<NodeShared>) {
    let mut readers = Vec::new();
    loop {
        let Ok((conn, _)) = listener.accept() else {
            break;
        };
        if shared.stop.load(Ordering::SeqCst) {
            // Accepted after the stop flag: never spawn a reader; the
            // peer observes the dropped socket as EOF.
            drop(conn);
            break;
        }
        conn.set_read_timeout(Some(shared.timeout)).ok();
        conn.set_write_timeout(Some(shared.timeout)).ok();
        conn.set_nodelay(true).ok();
        let rp = Arc::clone(shared);
        readers.push(thread::spawn(move || reader_loop(conn, &rp)));
    }
    for reader in readers {
        let _ = reader.join();
    }
}

/// Serves one inbound connection until EOF/`Bye`/shutdown: records and
/// forwards frames, cascades per-stream `End` markers, executes
/// coordinator orders, and reports link attribution changes up the
/// control channel.
///
/// Orders arriving on one connection are executed strictly in arrival
/// order — a `Reconfigure` queued behind an `OpenLink` on the control
/// channel only runs once the new link is fully registered, which is what
/// lets the coordinator sequence reconfigurations without shared memory.
fn reader_loop(mut conn: TcpStream, rp: &Arc<NodeShared>) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut peer: Option<SiteId> = None;
    // The control-channel generation this connection last attached as,
    // if it ever did. Lets the exit path clear `control` only when this
    // reader's channel is still the attached one — a re-`Attach` by a
    // reconnected coordinator must never be clobbered by the old
    // channel's reader dying late.
    let mut attached: Option<u64> = None;
    loop {
        match decode(&mut buf) {
            Ok(Some(Message::Frame {
                stream,
                quality,
                seq,
                captured_micros,
                payload,
            })) => {
                // Deliver at the effective rung (the coarser of the wire
                // tag and this RP's planned quality) and pass the frame
                // on, further degraded if the plan says so.
                let effective = rp.forward(stream, seq, captured_micros, &payload, quality);
                rp.stats.record(
                    stream,
                    unix_micros().saturating_sub(captured_micros),
                    !effective.is_full(),
                );
                continue;
            }
            Ok(Some(Message::End { stream })) => {
                rp.end_stream(stream);
                continue;
            }
            Ok(Some(Message::Hello { site })) => {
                // Attribute the link and tell the coordinator the data
                // path is up — this replaces its old shared-memory poll.
                peer = Some(site);
                *rp.inbound.lock().entry(site).or_insert(0) += 1;
                rp.recorder.record(FlightEventKind::LinkUp {
                    parent: site.index() as u32,
                    child: rp.site.index() as u32,
                });
                rp.notify(&Message::LinkUp { peer: site });
                continue;
            }
            Ok(Some(Message::Reconfigure {
                revision,
                site_plan,
            })) => {
                {
                    // A replayed order for an older revision must not roll
                    // the table back; it is still acknowledged so a
                    // coordinator retry converges.
                    let mut table = rp.table.lock();
                    if revision >= table.revision {
                        table.revision = revision;
                        table.plan = site_plan;
                    }
                }
                // Epoch boundary: everything sent after this Ack is routed
                // by the new table.
                rp.recorder
                    .record(FlightEventKind::Reconfigure { revision, sites: 1 });
                rp.notify(&Message::Ack { revision });
                continue;
            }
            Ok(Some(Message::Attach)) => {
                match conn.try_clone() {
                    Ok(clone) => {
                        // Latest attach wins: a reconnected coordinator's
                        // fresh channel atomically replaces a dead one.
                        let generation = rp.control_generation.fetch_add(1, Ordering::Relaxed) + 1;
                        *rp.control.lock() = Some((generation, clone));
                        attached = Some(generation);
                    }
                    Err(_) => break,
                }
                continue;
            }
            Ok(Some(Message::ResyncQuery { probe })) => {
                // Describe this RP as it stands *now*: the last-applied
                // table revision and the attributed inbound peers. The
                // reply is a snapshot — the coordinator must still close
                // the round with a re-dictation barrier.
                let revision = rp.table.lock().revision;
                let inbound: Vec<SiteId> = rp
                    .inbound
                    .lock()
                    .iter()
                    .filter(|(_, &count)| count > 0)
                    .map(|(&site, _)| site)
                    .collect();
                rp.recorder.record(FlightEventKind::ResyncStart);
                rp.notify(&Message::ResyncReply {
                    probe,
                    revision,
                    inbound,
                });
                continue;
            }
            Ok(Some(Message::OpenLink { child, addr })) => {
                // Failure is observed by the coordinator as a missing
                // LinkUp from the child.
                let _ = rp.open_link(child, addr);
                continue;
            }
            Ok(Some(Message::CloseLink { child })) => {
                rp.close_link(child);
                continue;
            }
            Ok(Some(Message::Publish {
                stream,
                base_seq,
                frames,
                payload_bytes,
                interval_micros,
            })) => {
                // Each batch paces on its own thread: two origin streams
                // at one site interleave at the shared cadence instead of
                // doubling the batch's wall time back-to-back, and a
                // paced batch never stalls the control channel. The
                // thread is untracked — the coordinator's publish() waits
                // for its BatchDone, so it never outlives a graceful run.
                let publisher = Arc::clone(rp);
                thread::spawn(move || {
                    publisher.publish_batch(
                        stream,
                        base_seq,
                        frames,
                        payload_bytes,
                        interval_micros,
                    );
                    publisher.notify(&Message::BatchDone {
                        stream,
                        next_seq: base_seq.saturating_add(frames),
                    });
                });
                continue;
            }
            Ok(Some(Message::StatsRequest { probe })) => {
                rp.notify(&rp.stats.report(probe));
                continue;
            }
            Ok(Some(Message::Shutdown)) => {
                rp.begin_shutdown();
                break;
            }
            // RP-bound traffic never includes coordinator-bound replies;
            // drop the link on protocol violations and undecodable bytes.
            Ok(Some(
                Message::Bye
                | Message::Ack { .. }
                | Message::LinkUp { .. }
                | Message::LinkDown { .. }
                | Message::BatchDone { .. }
                | Message::StatsReport { .. }
                | Message::ResyncReply { .. },
            ))
            | Err(_) => break,
            Ok(None) => {}
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => buf.extend_from_slice(&chunk[..read]),
            // The read timeout (WouldBlock on Unix, TimedOut on Windows)
            // just means the link is idle: keep serving it unless the
            // node is tearing down. Real errors end the link.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if rp.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // De-attribute the link: the coordinator observes a `closed` pair die
    // through this notification.
    if let Some(site) = peer {
        {
            let mut inbound = rp.inbound.lock();
            if let Some(count) = inbound.get_mut(&site) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    inbound.remove(&site);
                }
            }
        }
        rp.recorder.record(FlightEventKind::LinkDown {
            parent: site.index() as u32,
            child: rp.site.index() as u32,
        });
        rp.notify(&Message::LinkDown { peer: site });
    }
    // If this reader served the *currently attached* control channel, the
    // coordinator is gone: detach so acks stop flowing into a dead socket
    // (notify becomes a no-op) until a re-`Attach` arrives. A channel
    // already replaced by a newer generation is left alone.
    if let Some(generation) = attached {
        let detached = {
            let mut control = rp.control.lock();
            let mine = control.as_ref().is_some_and(|(g, _)| *g == generation);
            if mine {
                *control = None;
            }
            mine
        };
        if detached {
            rp.recorder.record(FlightEventKind::CoordinatorLost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_connection_accepted_after_stop_is_dropped_not_served() {
        let node = RpNode::bind(SiteId::new(0), Duration::from_millis(200)).expect("bind");
        let addr = node.local_addr();
        let shared = Arc::clone(&node.shared);
        let handle = node.spawn();

        // Set the stop flag directly, without the shutdown wake-up: the
        // next accepted connection is the one racing past teardown.
        shared.stop.store(true, Ordering::SeqCst);
        let mut racer = TcpStream::connect(addr).expect("connect");
        racer
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // The racing connection must be dropped (EOF / reset), never
        // handed to a reader that would serve it indefinitely…
        let mut scratch = [0u8; 8];
        match racer.read(&mut scratch) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("dropped connection delivered {n} bytes"),
        }
        // …and the accept loop must have broken out, so the node joins.
        handle.join();
    }

    #[test]
    fn socket_stop_is_idempotent_and_unblocks_join() {
        let node = RpNode::bind(SiteId::new(3), Duration::from_millis(200)).expect("bind");
        assert_eq!(node.site(), SiteId::new(3));
        let handle = node.spawn();
        handle.stop();
        handle.stop();
        handle.join();
    }

    #[test]
    fn socket_parent_sizes_frames_by_the_childs_rung() {
        use teeve_pubsub::ForwardingEntry;

        // A bare listener stands in for the degraded child so the bytes
        // the parent actually puts on that hop can be inspected.
        let child_listener = TcpListener::bind("127.0.0.1:0").expect("child bind");
        let child_addr = child_listener.local_addr().unwrap();
        let stream_id = StreamId::new(SiteId::new(0), 0);

        let node = RpNode::bind(SiteId::new(0), Duration::from_millis(200)).expect("bind");
        let addr = node.local_addr();
        let handle = node.spawn();

        // One control connection carries, in order: Attach, a table where
        // this origin's child takes the stream at rung 1, the OpenLink
        // order, and a single 1024-byte publish. Orders on one connection
        // execute in arrival order, so the link exists before the frame.
        let mut control = TcpStream::connect(addr).expect("control connect");
        let mut orders = BytesMut::new();
        encode(&Message::Attach, &mut orders);
        encode(
            &Message::Reconfigure {
                revision: 1,
                site_plan: SitePlan {
                    site: SiteId::new(0),
                    entries: vec![ForwardingEntry {
                        stream: stream_id,
                        parent: None,
                        children: vec![ChildLink {
                            site: SiteId::new(1),
                            quality: Quality::new(1),
                        }],
                        quality: Quality::FULL,
                    }],
                },
            },
            &mut orders,
        );
        encode(
            &Message::OpenLink {
                child: SiteId::new(1),
                addr: child_addr,
            },
            &mut orders,
        );
        encode(
            &Message::Publish {
                stream: stream_id,
                base_seq: 0,
                frames: 1,
                payload_bytes: 1024,
                interval_micros: 0,
            },
            &mut orders,
        );
        control.write_all(&orders).expect("orders sent");

        // Accept the node's dial and decode what it sends: the Hello
        // preamble, then the frame — which must arrive tagged at the
        // child's rung with its payload halved (1024 >> 1). This is the
        // hop *into* the degraded receiver, so the inbound budget the
        // admission path degraded for is genuinely relieved.
        let (mut conn, _) = child_listener.accept().expect("node dials child");
        conn.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 4096];
        let frame = loop {
            match decode(&mut buf).expect("valid wire traffic") {
                Some(Message::Hello { site }) => assert_eq!(site, SiteId::new(0)),
                Some(frame @ Message::Frame { .. }) => break frame,
                Some(other) => panic!("unexpected message {other:?}"),
                None => {
                    let read = conn.read(&mut chunk).expect("child read");
                    assert!(read > 0, "connection closed before the frame");
                    buf.extend_from_slice(&chunk[..read]);
                }
            }
        };
        let Message::Frame {
            quality, payload, ..
        } = frame
        else {
            unreachable!()
        };
        assert_eq!(quality, Quality::new(1), "frame tagged at the child's rung");
        assert_eq!(payload.len(), 512, "payload halved for rung 1");

        handle.stop();
        handle.join();
    }

    #[test]
    fn advertised_address_overrides_the_bound_one() {
        // Bind loopback, advertise a different loopback IP with port 0:
        // the advertised IP is reported verbatim and the port is
        // substituted with the one actually bound. (No connection is
        // made; this only exercises address bookkeeping.)
        let node = RpNode::bind_advertised(
            SiteId::new(1),
            "127.0.0.1:0".parse().unwrap(),
            Some("127.0.0.2:0".parse().unwrap()),
            Duration::from_millis(200),
        )
        .expect("bind");
        let advertised = node.local_addr();
        assert_eq!(advertised.ip().to_string(), "127.0.0.2");
        assert_ne!(advertised.port(), 0, "port 0 must be substituted");

        // An explicit advertised port is kept as-is.
        let node = RpNode::bind_advertised(
            SiteId::new(2),
            "127.0.0.1:0".parse().unwrap(),
            Some("10.1.2.3:4567".parse().unwrap()),
            Duration::from_millis(200),
        )
        .expect("bind");
        assert_eq!(node.local_addr().to_string(), "10.1.2.3:4567");

        // No advertise override: the bound address is reported, exactly
        // the pre-existing `bind`/`bind_to` behavior.
        let node = RpNode::bind(SiteId::new(3), Duration::from_millis(200)).expect("bind");
        assert_eq!(node.local_addr().ip().to_string(), "127.0.0.1");
    }

    #[test]
    fn unix_micros_is_monotonic_enough() {
        let a = unix_micros();
        let b = unix_micros();
        assert!(b >= a || a - b < 1_000, "wall clock moved wildly backward");
    }
}
