//! Event-driven RP hosting: one readiness loop drives many RPs.
//!
//! The thread-per-connection [`RpNode`](crate::RpNode) spends ~2 + L
//! threads per RP (accept loop, control reader, one reader per inbound
//! link), which caps an in-process fleet at a few dozen sites. The
//! [`Reactor`] hosts the *same* protocol state machine — the full
//! `reader_loop` dispatch table, byte-identical forwarding via the shared
//! [`encode_frame_copies`](crate::node::encode_frame_copies) encoder —
//! on a small pool of non-blocking event loops, so thousands of RPs fit
//! in one process at a fixed thread budget.
//!
//! Per event-loop iteration:
//!
//! 1. **Poll** — block in `epoll_wait` until a socket is ready, a paced
//!    publish timer is due, or another thread wakes the loop to deliver
//!    a command (register a node, stop one, quit).
//! 2. **Read** — drain every readable connection to `WouldBlock`,
//!    decoding frames and orders incrementally out of a per-connection
//!    read buffer and dispatching them exactly as the threaded
//!    `reader_loop` would.
//! 3. **Write** — outgoing bytes accumulate in a per-connection pending
//!    buffer; all connections dirtied during the iteration flush once at
//!    the end (writes coalesce per wakeup), and a connection whose
//!    kernel buffer is full keeps `WRITABLE` interest until it drains.
//!    A connection whose backlog exceeds the cap sheds new frames — the
//!    non-blocking analog of a failed blocking write dropping a subtree.
//! 4. **Timers** — paced `Publish` batches are due-time entries in a
//!    timer map (no sleeping publisher threads); each firing forwards
//!    one frame and re-arms, and the final firing reports `BatchDone`
//!    one interval after the last frame, matching the threaded pacing.
//!
//! Ownership is strictly per-loop: a node and all its connections live
//! on exactly one event loop, so node state needs no locks at all. The
//! only cross-thread structures are each loop's command queue and its
//! [`mio::Waker`]; handles push a command, wake the loop, and the loop
//! applies it between iterations.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::{Buf, Bytes, BytesMut};
use mio::event::Events;
use mio::net::{TcpListener, TcpStream};
use mio::{Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use teeve_telemetry::{
    Counter, FlightEventKind, FlightRecorder, Gauge, Histogram, MetricsRegistry,
};
use teeve_types::{Quality, SiteId, StreamId};

use crate::node::{encode_frame_copies, plan_entry, unix_micros, ForwardingTable, NodeStats};
use crate::wire::{decode, encode, Message};

/// The waker's token — far outside any slab index.
const WAKE: Token = Token(usize::MAX);

/// Per-connection cap on *queued* (not yet written) outgoing bytes.
/// A connection already holding this much backlog sheds further
/// messages instead of growing without bound; one message over the
/// threshold is always admitted, so the true bound is the cap plus one
/// maximum frame.
const MAX_PENDING_WRITE: usize = 8 * 1024 * 1024;

/// Read-syscall chunk size, matching the threaded reader's.
const READ_CHUNK: usize = 64 * 1024;

/// How many readiness records one poll can return.
const EVENTS_PER_POLL: usize = 1024;

/// Commands injected into an event loop by other threads.
enum Command {
    /// Adopt a freshly bound node listener.
    Register(Box<NodeSeed>),
    /// Force-stop a node: graceful teardown, then immediate removal.
    StopNode {
        /// The node's reactor-wide key.
        key: u64,
    },
    /// Exit the loop, abandoning every hosted node.
    Quit,
}

/// Everything an event loop needs to adopt a node.
struct NodeSeed {
    key: u64,
    site: SiteId,
    listener: std::net::TcpListener,
    stats: Arc<NodeStats>,
    recorder: FlightRecorder,
    done: Arc<AtomicBool>,
}

/// One RP hosted on an event loop: the same protocol state the threaded
/// [`NodeShared`](crate::node) keeps behind locks, owned lock-free by
/// its loop.
struct NodeState {
    key: u64,
    site: SiteId,
    /// Slab token of the node's listener while it accepts.
    listener_token: Option<usize>,
    table: ForwardingTable,
    /// Outbound (this RP → child) links by child site, as slab tokens.
    outbound: BTreeMap<SiteId, usize>,
    /// `Hello`-attributed inbound peers (refcounted, as in the threaded
    /// node, so an overlapping close/reopen never drops a peer early).
    inbound: BTreeMap<SiteId, u32>,
    /// Every live connection token belonging to this node.
    conns: BTreeSet<usize>,
    /// The attached control channel: (generation, conn token).
    control: Option<(u64, usize)>,
    control_generation: u64,
    stats: Arc<NodeStats>,
    recorder: FlightRecorder,
    done: Arc<AtomicBool>,
    /// Set by `Shutdown`/`StopNode`: no new conns are accepted and the
    /// node is removed once its last connection dies.
    stopping: bool,
}

/// One registered connection and its buffers.
struct Conn {
    stream: TcpStream,
    /// Owning node's slab index.
    node: usize,
    /// Incremental decode buffer for inbound bytes.
    read_buf: BytesMut,
    /// Pending outgoing bytes (written bytes are consumed off the
    /// front; the buffer compacts itself as its cursor advances).
    out: BytesMut,
    /// Whether `WRITABLE` interest is currently registered.
    wants_write: bool,
    /// False while an outbound dial's handshake is still in flight.
    connected: bool,
    /// Flush-then-close requested (`CloseLink` / shutdown cascade).
    closing: bool,
    /// Queued in the loop's dirty list for the end-of-iteration flush.
    dirty: bool,
    /// `Hello`-attributed upstream peer (inbound data connections).
    peer: Option<SiteId>,
    /// Control generation this connection attached as, if it ever did.
    attached: Option<u64>,
    /// The child site this connection was dialed for (outbound links).
    outbound_child: Option<SiteId>,
}

/// A slab slot: a node's listener or one of its connections.
enum Entry {
    Listener { listener: TcpListener, node: usize },
    Conn(Conn),
}

/// A paced `Publish` batch parked in the timer map. `next_seq ==
/// end_seq` marks the trailing firing that reports `BatchDone` one
/// interval after the last frame — the threaded publisher's timing.
struct PacedBatch {
    node_key: u64,
    stream: StreamId,
    next_seq: u64,
    end_seq: u64,
    interval_micros: u64,
    payload: Bytes,
}

/// Shared metric handles one loop updates (all loops share the same
/// underlying registry entries).
struct LoopMetrics {
    conns_live: Gauge,
    nodes_registered: Gauge,
    threads_per_rp_milli: Gauge,
    wakeup_batch: Histogram,
    dropped_writes: Counter,
    threads: u64,
}

impl LoopMetrics {
    fn new(registry: &MetricsRegistry, threads: u64) -> LoopMetrics {
        LoopMetrics {
            conns_live: registry.gauge("reactor.connections.live"),
            nodes_registered: registry.gauge("reactor.nodes.registered"),
            threads_per_rp_milli: registry.gauge("reactor.threads_per_rp_milli"),
            wakeup_batch: registry.histogram("reactor.wakeup_batch"),
            dropped_writes: registry.counter("reactor.writes.dropped"),
            threads,
        }
    }

    /// Recomputes `threads per RP × 1000` from the live node gauge.
    fn refresh_ratio(&self) {
        let nodes = self.nodes_registered.get().max(1);
        self.threads_per_rp_milli
            .set(self.threads.saturating_mul(1000) / nodes);
    }
}

/// The full private state of one event loop.
struct LoopState {
    poll: Poll,
    /// Token-indexed slab of listeners and connections.
    entries: Vec<Option<Entry>>,
    /// Reusable slab tokens.
    free: Vec<usize>,
    /// Tokens freed during the current iteration; recycled only at its
    /// end so a token is never reused while this iteration's readiness
    /// records may still reference its previous occupant.
    pending_free: Vec<usize>,
    nodes: Vec<Option<NodeState>>,
    node_free: Vec<usize>,
    /// Reactor-wide node key → local slab index.
    node_keys: BTreeMap<u64, usize>,
    /// Paced publishes by (due unix-micros, tiebreak seq).
    timers: BTreeMap<(u64, u64), PacedBatch>,
    timer_seq: u64,
    /// Connections with bytes queued this iteration, flushed once at
    /// its end.
    dirty: Vec<usize>,
    metrics: LoopMetrics,
}

impl LoopState {
    fn new(poll: Poll, metrics: LoopMetrics) -> LoopState {
        LoopState {
            poll,
            entries: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            nodes: Vec::new(),
            node_free: Vec::new(),
            node_keys: BTreeMap::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            dirty: Vec::new(),
            metrics,
        }
    }

    // ---- slab plumbing ----------------------------------------------

    fn alloc_token(&mut self) -> usize {
        if let Some(token) = self.free.pop() {
            token
        } else {
            self.entries.push(None);
            self.entries.len() - 1
        }
    }

    fn set_entry(&mut self, token: usize, entry: Entry) {
        if let Some(slot) = self.entries.get_mut(token) {
            *slot = Some(entry);
        }
    }

    fn conn_mut(&mut self, token: usize) -> Option<&mut Conn> {
        match self.entries.get_mut(token).and_then(Option::as_mut) {
            Some(Entry::Conn(conn)) => Some(conn),
            _ => None,
        }
    }

    fn conn_node(&self, token: usize) -> Option<usize> {
        match self.entries.get(token).and_then(Option::as_ref) {
            Some(Entry::Conn(conn)) => Some(conn.node),
            _ => None,
        }
    }

    fn node_ref(&self, idx: usize) -> Option<&NodeState> {
        self.nodes.get(idx).and_then(Option::as_ref)
    }

    fn node_mut(&mut self, idx: usize) -> Option<&mut NodeState> {
        self.nodes.get_mut(idx).and_then(Option::as_mut)
    }

    /// Makes this iteration's freed tokens reusable. Called only at the
    /// end of an iteration — see `pending_free`.
    fn recycle(&mut self) {
        self.free.append(&mut self.pending_free);
    }

    // ---- node lifecycle ---------------------------------------------

    fn register_node(&mut self, seed: NodeSeed) {
        let NodeSeed {
            key,
            site,
            listener,
            stats,
            recorder,
            done,
        } = seed;
        let mut listener = TcpListener::from_std(listener);
        let node_idx = if let Some(idx) = self.node_free.pop() {
            idx
        } else {
            self.nodes.push(None);
            self.nodes.len() - 1
        };
        let token = self.alloc_token();
        if self
            .poll
            .registry()
            .register(&mut listener, Token(token), Interest::READABLE)
            .is_err()
        {
            self.free.push(token);
            self.node_free.push(node_idx);
            done.store(true, Ordering::SeqCst);
            return;
        }
        self.set_entry(
            token,
            Entry::Listener {
                listener,
                node: node_idx,
            },
        );
        if let Some(slot) = self.nodes.get_mut(node_idx) {
            *slot = Some(NodeState {
                key,
                site,
                listener_token: Some(token),
                table: ForwardingTable::empty(site),
                outbound: BTreeMap::new(),
                inbound: BTreeMap::new(),
                conns: BTreeSet::new(),
                control: None,
                control_generation: 0,
                stats,
                recorder,
                done,
                stopping: false,
            });
        }
        self.node_keys.insert(key, node_idx);
        self.metrics.nodes_registered.add(1);
        self.metrics.refresh_ratio();
    }

    /// Graceful teardown, mirroring the threaded `begin_shutdown`:
    /// cascade `End` for locally originated streams, flush-then-shut
    /// every outbound link, stop accepting. The node is removed once
    /// its last connection dies (inbound links die by peer EOF).
    fn shutdown_node(&mut self, node_idx: usize) {
        let origins: Vec<StreamId> = {
            let Some(node) = self.node_mut(node_idx) else {
                return;
            };
            if node.stopping {
                return;
            }
            node.stopping = true;
            node.table
                .plan
                .entries
                .iter()
                .filter(|e| e.is_origin() && !e.children.is_empty())
                .map(|e| e.stream)
                .collect()
        };
        for stream in origins {
            self.end_stream(node_idx, stream);
        }
        let outbound: Vec<usize> = self
            .node_ref(node_idx)
            .map(|n| n.outbound.values().copied().collect())
            .unwrap_or_default();
        for token in outbound {
            self.begin_close(token);
        }
        let listener_token = self
            .node_mut(node_idx)
            .and_then(|n| n.listener_token.take());
        if let Some(token) = listener_token {
            self.drop_listener(token);
        }
        self.maybe_finish_node(node_idx);
    }

    fn drop_listener(&mut self, token: usize) {
        let is_listener = matches!(
            self.entries.get(token).and_then(Option::as_ref),
            Some(Entry::Listener { .. })
        );
        if !is_listener {
            return;
        }
        let Some(slot) = self.entries.get_mut(token) else {
            return;
        };
        if let Some(Entry::Listener { mut listener, .. }) = slot.take() {
            let _ = self.poll.registry().deregister(&mut listener);
        }
        self.pending_free.push(token);
    }

    /// Removes a stopping node whose last connection just died.
    fn maybe_finish_node(&mut self, node_idx: usize) {
        let finished = self
            .node_ref(node_idx)
            .is_some_and(|n| n.stopping && n.conns.is_empty() && n.listener_token.is_none());
        if finished {
            self.remove_node(node_idx);
        }
    }

    /// Forced removal: every remaining connection is dropped without
    /// notifications (the node itself is going away), timers cancelled,
    /// the join flag raised.
    fn remove_node(&mut self, node_idx: usize) {
        let Some(slot) = self.nodes.get_mut(node_idx) else {
            return;
        };
        let Some(node) = slot.take() else {
            return;
        };
        for &token in &node.conns {
            let is_conn = matches!(
                self.entries.get(token).and_then(Option::as_ref),
                Some(Entry::Conn(_))
            );
            if !is_conn {
                continue;
            }
            if let Some(slot) = self.entries.get_mut(token) {
                if let Some(Entry::Conn(mut conn)) = slot.take() {
                    let _ = self.poll.registry().deregister(&mut conn.stream);
                    self.metrics.conns_live.sub(1);
                }
            }
            self.pending_free.push(token);
        }
        if let Some(token) = node.listener_token {
            self.drop_listener(token);
        }
        self.node_keys.remove(&node.key);
        self.timers.retain(|_, batch| batch.node_key != node.key);
        self.metrics.nodes_registered.sub(1);
        self.metrics.refresh_ratio();
        node.done.store(true, Ordering::SeqCst);
        self.node_free.push(node_idx);
    }

    /// `StopNode` command: graceful teardown, a best-effort flush of
    /// the `End` cascade, then immediate removal (the forced analog of
    /// the threaded `stop()` + reader timeouts).
    fn stop_node(&mut self, key: u64) {
        let Some(&node_idx) = self.node_keys.get(&key) else {
            return;
        };
        self.shutdown_node(node_idx);
        self.flush_dirty();
        self.remove_node(node_idx);
    }

    /// Quit: abandon every hosted node so joins unblock.
    fn abandon(&mut self) {
        let hosted: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.node_ref(i).is_some())
            .collect();
        for node_idx in hosted {
            self.remove_node(node_idx);
        }
    }

    // ---- event handling ---------------------------------------------

    fn handle_event(&mut self, token: usize, readable: bool, writable: bool) {
        match self.entries.get(token).and_then(Option::as_ref) {
            Some(Entry::Listener { node, .. }) => {
                let node_idx = *node;
                self.accept_ready(token, node_idx);
            }
            Some(Entry::Conn(_)) => {
                if writable {
                    self.on_writable(token);
                }
                if readable {
                    self.on_readable(token);
                }
            }
            None => {}
        }
    }

    fn accept_ready(&mut self, token: usize, node_idx: usize) {
        loop {
            let accepted = match self.entries.get(token).and_then(Option::as_ref) {
                Some(Entry::Listener { listener, .. }) => listener.accept(),
                _ => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    // Same race rule as the threaded accept loop: a
                    // connection arriving after teardown began is
                    // dropped on the floor (the peer sees EOF).
                    let stopping = self.node_ref(node_idx).map(|n| n.stopping).unwrap_or(true);
                    if stopping {
                        drop(stream);
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.add_conn(stream, node_idx, true, None);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn add_conn(
        &mut self,
        mut stream: TcpStream,
        node_idx: usize,
        connected: bool,
        outbound_child: Option<SiteId>,
    ) -> Option<usize> {
        let token = self.alloc_token();
        let interest = if connected {
            Interest::READABLE
        } else {
            // Writability signals dial completion.
            Interest::READABLE.add(Interest::WRITABLE)
        };
        if self
            .poll
            .registry()
            .register(&mut stream, Token(token), interest)
            .is_err()
        {
            self.free.push(token);
            return None;
        }
        self.set_entry(
            token,
            Entry::Conn(Conn {
                stream,
                node: node_idx,
                read_buf: BytesMut::with_capacity(READ_CHUNK),
                out: BytesMut::new(),
                wants_write: !connected,
                connected,
                closing: false,
                dirty: false,
                peer: None,
                attached: None,
                outbound_child,
            }),
        );
        if let Some(node) = self.node_mut(node_idx) {
            node.conns.insert(token);
        }
        self.metrics.conns_live.add(1);
        Some(token)
    }

    fn on_writable(&mut self, token: usize) {
        let failed = {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            if conn.connected {
                false
            } else {
                match conn.stream.take_error() {
                    Ok(None) => {
                        conn.connected = true;
                        false
                    }
                    // A failed dial stays silent, exactly like the
                    // threaded `open_link`: the coordinator observes it
                    // as a missing LinkUp.
                    _ => true,
                }
            }
        };
        if failed {
            self.close_conn(token);
            return;
        }
        self.flush_conn(token);
    }

    fn on_readable(&mut self, token: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let read = {
                let Some(conn) = self.conn_mut(token) else {
                    return;
                };
                conn.stream.read(&mut chunk)
            };
            match read {
                Ok(0) => {
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    let outbound = {
                        let Some(conn) = self.conn_mut(token) else {
                            return;
                        };
                        if conn.outbound_child.is_none() {
                            conn.read_buf.extend_from_slice(&chunk[..n]);
                        }
                        conn.outbound_child.is_some()
                    };
                    // Nothing legitimate ever flows back on an outbound
                    // data link (the threaded node never reads them);
                    // discard so only EOF/errors matter.
                    if !outbound && !self.drain_messages(token) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Decodes and dispatches every complete message buffered on a
    /// connection. Returns false when the connection was closed.
    fn drain_messages(&mut self, token: usize) -> bool {
        loop {
            let decoded = {
                let Some(conn) = self.conn_mut(token) else {
                    return false;
                };
                decode(&mut conn.read_buf)
            };
            match decoded {
                Ok(Some(message)) => {
                    if !self.dispatch(token, message) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(_) => {
                    self.close_conn(token);
                    return false;
                }
            }
        }
    }

    /// The threaded `reader_loop` dispatch table, verbatim in effect.
    /// Returns false when the connection was closed by the message.
    fn dispatch(&mut self, token: usize, message: Message) -> bool {
        let Some(node_idx) = self.conn_node(token) else {
            return false;
        };
        match message {
            Message::Frame {
                stream,
                quality,
                seq,
                captured_micros,
                payload,
            } => {
                let effective =
                    self.forward_frame(node_idx, stream, seq, captured_micros, &payload, quality);
                if let Some(node) = self.node_ref(node_idx) {
                    node.stats.record(
                        stream,
                        unix_micros().saturating_sub(captured_micros),
                        !effective.is_full(),
                    );
                }
                true
            }
            Message::End { stream } => {
                self.end_stream(node_idx, stream);
                true
            }
            Message::Hello { site } => {
                if let Some(node) = self.node_mut(node_idx) {
                    *node.inbound.entry(site).or_insert(0) += 1;
                    node.recorder.record(FlightEventKind::LinkUp {
                        parent: site.index() as u32,
                        child: node.site.index() as u32,
                    });
                }
                if let Some(conn) = self.conn_mut(token) {
                    conn.peer = Some(site);
                }
                self.notify(node_idx, &Message::LinkUp { peer: site });
                true
            }
            Message::Reconfigure {
                revision,
                site_plan,
            } => {
                if let Some(node) = self.node_mut(node_idx) {
                    // Replayed older revisions must not roll back, but
                    // are still acknowledged so retries converge.
                    if revision >= node.table.revision {
                        node.table.revision = revision;
                        node.table.plan = site_plan;
                    }
                    node.recorder
                        .record(FlightEventKind::Reconfigure { revision, sites: 1 });
                }
                self.notify(node_idx, &Message::Ack { revision });
                true
            }
            Message::Attach => {
                let generation = {
                    let Some(node) = self.node_mut(node_idx) else {
                        return false;
                    };
                    node.control_generation += 1;
                    node.control = Some((node.control_generation, token));
                    node.control_generation
                };
                if let Some(conn) = self.conn_mut(token) {
                    conn.attached = Some(generation);
                }
                true
            }
            Message::ResyncQuery { probe } => {
                let reply = {
                    let Some(node) = self.node_ref(node_idx) else {
                        return false;
                    };
                    let inbound: Vec<SiteId> = node
                        .inbound
                        .iter()
                        .filter(|(_, &count)| count > 0)
                        .map(|(&site, _)| site)
                        .collect();
                    node.recorder.record(FlightEventKind::ResyncStart);
                    Message::ResyncReply {
                        probe,
                        revision: node.table.revision,
                        inbound,
                    }
                };
                self.notify(node_idx, &reply);
                true
            }
            Message::OpenLink { child, addr } => {
                self.open_link(node_idx, child, addr);
                true
            }
            Message::CloseLink { child } => {
                self.close_link(node_idx, child);
                true
            }
            Message::Publish {
                stream,
                base_seq,
                frames,
                payload_bytes,
                interval_micros,
            } => {
                self.publish(
                    node_idx,
                    stream,
                    base_seq,
                    frames,
                    payload_bytes,
                    interval_micros,
                );
                true
            }
            Message::StatsRequest { probe } => {
                let report = match self.node_ref(node_idx) {
                    Some(node) => node.stats.report(probe),
                    None => return false,
                };
                self.notify(node_idx, &report);
                true
            }
            Message::Shutdown => {
                self.shutdown_node(node_idx);
                self.close_conn(token);
                false
            }
            // RP-bound traffic never includes coordinator-bound
            // replies; drop the link on protocol violations.
            Message::Bye
            | Message::Ack { .. }
            | Message::LinkUp { .. }
            | Message::LinkDown { .. }
            | Message::BatchDone { .. }
            | Message::StatsReport { .. }
            | Message::ResyncReply { .. } => {
                self.close_conn(token);
                false
            }
        }
    }

    // ---- protocol actions -------------------------------------------

    /// Forwards one frame through the shared per-rung encoder — the
    /// same bytes the threaded `forward` puts on the wire.
    fn forward_frame(
        &mut self,
        node_idx: usize,
        stream: StreamId,
        seq: u64,
        captured_micros: u64,
        payload: &Bytes,
        tagged: Quality,
    ) -> Quality {
        let (children, planned) = match self.node_ref(node_idx) {
            Some(node) => plan_entry(&node.table.plan, stream),
            None => return tagged,
        };
        let effective = tagged.max(planned);
        if children.is_empty() {
            return effective;
        }
        let copies = encode_frame_copies(
            stream,
            seq,
            captured_micros,
            payload,
            tagged,
            effective,
            &children,
        );
        for (site, bytes) in copies {
            let target = self
                .node_ref(node_idx)
                .and_then(|n| n.outbound.get(&site).copied());
            if let Some(conn_token) = target {
                self.queue_write(conn_token, bytes);
            }
        }
        effective
    }

    fn end_stream(&mut self, node_idx: usize, stream: StreamId) {
        let children: Vec<SiteId> = match self.node_ref(node_idx) {
            Some(node) => plan_entry(&node.table.plan, stream)
                .0
                .into_iter()
                .map(|c| c.site)
                .collect(),
            None => return,
        };
        if children.is_empty() {
            return;
        }
        let mut buf = BytesMut::new();
        encode(&Message::End { stream }, &mut buf);
        let bytes = buf.freeze();
        for child in children {
            let target = self
                .node_ref(node_idx)
                .and_then(|n| n.outbound.get(&child).copied());
            if let Some(conn_token) = target {
                self.queue_write(conn_token, bytes.clone());
            }
        }
    }

    /// Best-effort control-channel send (a detached coordinator drops
    /// the notification — the ack-suppression resync relies on).
    fn notify(&mut self, node_idx: usize, message: &Message) {
        let target = self
            .node_ref(node_idx)
            .and_then(|n| n.control.map(|(_, conn_token)| conn_token));
        if let Some(conn_token) = target {
            let mut buf = BytesMut::new();
            encode(message, &mut buf);
            self.queue_write(conn_token, buf.freeze());
        }
    }

    fn open_link(&mut self, node_idx: usize, child: SiteId, addr: SocketAddr) {
        let site = match self.node_ref(node_idx) {
            Some(node) => node.site,
            None => return,
        };
        // Dial failure is silent on this side, as in the threaded node:
        // the coordinator observes it as a missing LinkUp.
        let Ok(stream) = TcpStream::connect(addr) else {
            return;
        };
        stream.set_nodelay(true).ok();
        let Some(token) = self.add_conn(stream, node_idx, false, Some(child)) else {
            return;
        };
        let mut buf = BytesMut::new();
        encode(&Message::Hello { site }, &mut buf);
        self.queue_write(token, buf.freeze());
        let replaced = self
            .node_mut(node_idx)
            .and_then(|n| n.outbound.insert(child, token));
        if let Some(old) = replaced {
            if old != token {
                self.close_conn(old);
            }
        }
    }

    fn close_link(&mut self, node_idx: usize, child: SiteId) {
        let removed = self
            .node_mut(node_idx)
            .and_then(|n| n.outbound.remove(&child));
        if let Some(token) = removed {
            self.begin_close(token);
        }
    }

    fn publish(
        &mut self,
        node_idx: usize,
        stream: StreamId,
        base_seq: u64,
        frames: u64,
        payload_bytes: u32,
        interval_micros: u64,
    ) {
        let payload = Bytes::from(vec![0x3D; payload_bytes as usize]);
        let end_seq = base_seq.saturating_add(frames);
        if interval_micros == 0 {
            // Unpaced: inject the whole batch inline, exactly as the
            // threaded publisher's zero-interval loop does.
            for seq in base_seq..end_seq {
                self.forward_frame(
                    node_idx,
                    stream,
                    seq,
                    unix_micros(),
                    &payload,
                    Quality::FULL,
                );
            }
            self.notify(
                node_idx,
                &Message::BatchDone {
                    stream,
                    next_seq: end_seq,
                },
            );
            return;
        }
        let node_key = match self.node_ref(node_idx) {
            Some(node) => node.key,
            None => return,
        };
        // First frame is due immediately; fire_timers runs later this
        // same iteration.
        self.schedule(
            PacedBatch {
                node_key,
                stream,
                next_seq: base_seq,
                end_seq,
                interval_micros,
                payload,
            },
            unix_micros(),
        );
    }

    // ---- timers ------------------------------------------------------

    fn schedule(&mut self, batch: PacedBatch, due_micros: u64) {
        self.timer_seq += 1;
        self.timers.insert((due_micros, self.timer_seq), batch);
    }

    /// The poll timeout: time until the earliest timer, or forever.
    fn next_timeout(&self) -> Option<Duration> {
        self.timers
            .first_key_value()
            .map(|(&(due, _), _)| Duration::from_micros(due.saturating_sub(unix_micros())))
    }

    fn fire_timers(&mut self) {
        loop {
            let now = unix_micros();
            let key = match self.timers.first_key_value() {
                Some((&(due, seq), _)) if due <= now => (due, seq),
                _ => return,
            };
            let Some(batch) = self.timers.remove(&key) else {
                return;
            };
            let Some(&node_idx) = self.node_keys.get(&batch.node_key) else {
                continue;
            };
            if batch.next_seq >= batch.end_seq {
                // Trailing firing: BatchDone one interval after the
                // last frame, matching the threaded publisher (which
                // sleeps once more after its final frame).
                self.notify(
                    node_idx,
                    &Message::BatchDone {
                        stream: batch.stream,
                        next_seq: batch.end_seq,
                    },
                );
                continue;
            }
            self.forward_frame(
                node_idx,
                batch.stream,
                batch.next_seq,
                now,
                &batch.payload,
                Quality::FULL,
            );
            let interval = batch.interval_micros;
            let rearmed = PacedBatch {
                next_seq: batch.next_seq + 1,
                ..batch
            };
            self.schedule(rearmed, now.saturating_add(interval));
        }
    }

    // ---- write path --------------------------------------------------

    /// Appends bytes to a connection's pending buffer and marks it for
    /// the end-of-iteration flush. A connection at its backlog cap
    /// sheds the message (see [`MAX_PENDING_WRITE`]).
    fn queue_write(&mut self, token: usize, bytes: Bytes) {
        let mut newly_dirty = false;
        if let Some(Entry::Conn(conn)) = self.entries.get_mut(token).and_then(Option::as_mut) {
            if conn.closing {
                return;
            }
            if conn.out.len() >= MAX_PENDING_WRITE {
                self.metrics.dropped_writes.incr();
                return;
            }
            conn.out.extend_from_slice(&bytes);
            if !conn.dirty {
                conn.dirty = true;
                newly_dirty = true;
            }
        }
        if newly_dirty {
            self.dirty.push(token);
        }
    }

    /// Flushes every connection dirtied this iteration — one write
    /// burst per wakeup per connection.
    fn flush_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for token in dirty {
            if let Some(conn) = self.conn_mut(token) {
                conn.dirty = false;
            } else {
                continue;
            }
            self.flush_conn(token);
        }
    }

    /// Requests flush-then-close on a connection (`CloseLink`, shutdown
    /// cascades): pending bytes still go out, then the write half shuts
    /// so the peer observes EOF, then the connection drops.
    fn begin_close(&mut self, token: usize) {
        let ready = {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            if conn.closing {
                return;
            }
            conn.closing = true;
            conn.connected && conn.out.is_empty()
        };
        if ready {
            if let Some(conn) = self.conn_mut(token) {
                let _ = conn.stream.shutdown(Shutdown::Write);
            }
            self.close_conn(token);
        } else {
            let newly_dirty = self.conn_mut(token).is_some_and(|conn| {
                if conn.dirty {
                    false
                } else {
                    conn.dirty = true;
                    true
                }
            });
            if newly_dirty {
                self.dirty.push(token);
            }
        }
    }

    fn flush_conn(&mut self, token: usize) {
        enum After {
            Nothing,
            Close,
            CloseGraceful,
            Reregister(Interest),
        }
        let after = {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            if !conn.connected {
                return;
            }
            let mut dead = false;
            while !conn.out.is_empty() {
                match conn.stream.write(&conn.out[..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.out.advance(n),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                After::Close
            } else if conn.out.is_empty() {
                if conn.closing {
                    After::CloseGraceful
                } else if conn.wants_write {
                    conn.wants_write = false;
                    After::Reregister(Interest::READABLE)
                } else {
                    After::Nothing
                }
            } else if conn.wants_write {
                // Partially written but WRITABLE interest already held:
                // the next writability record resumes the flush.
                After::Nothing
            } else {
                conn.wants_write = true;
                After::Reregister(Interest::READABLE.add(Interest::WRITABLE))
            }
        };
        match after {
            After::Nothing => {}
            After::Close => self.close_conn(token),
            After::CloseGraceful => {
                if let Some(conn) = self.conn_mut(token) {
                    let _ = conn.stream.shutdown(Shutdown::Write);
                }
                self.close_conn(token);
            }
            After::Reregister(interest) => self.reregister_conn(token, interest),
        }
    }

    fn reregister_conn(&mut self, token: usize, interest: Interest) {
        let mut failed = false;
        {
            let registry = self.poll.registry();
            if let Some(Entry::Conn(conn)) = self.entries.get_mut(token).and_then(Option::as_mut) {
                failed = registry
                    .reregister(&mut conn.stream, Token(token), interest)
                    .is_err();
            }
        }
        if failed {
            self.close_conn(token);
        }
    }

    /// Tears one connection down with the threaded reader's exact exit
    /// semantics: de-attribute the peer (LinkDown recorded and
    /// notified), detach the control channel if this was still its
    /// generation (CoordinatorLost), then finish the node if it was
    /// stopping and this was its last connection.
    fn close_conn(&mut self, token: usize) {
        let is_conn = matches!(
            self.entries.get(token).and_then(Option::as_ref),
            Some(Entry::Conn(_))
        );
        if !is_conn {
            return;
        }
        let Some(slot) = self.entries.get_mut(token) else {
            return;
        };
        let Some(Entry::Conn(mut conn)) = slot.take() else {
            return;
        };
        let _ = self.poll.registry().deregister(&mut conn.stream);
        self.pending_free.push(token);
        self.metrics.conns_live.sub(1);
        let node_idx = conn.node;
        let mut link_down: Option<SiteId> = None;
        if let Some(node) = self.node_mut(node_idx) {
            node.conns.remove(&token);
            if let Some(child) = conn.outbound_child {
                if node.outbound.get(&child) == Some(&token) {
                    node.outbound.remove(&child);
                }
            }
            if let Some(site) = conn.peer {
                if let Some(count) = node.inbound.get_mut(&site) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        node.inbound.remove(&site);
                    }
                }
                node.recorder.record(FlightEventKind::LinkDown {
                    parent: site.index() as u32,
                    child: node.site.index() as u32,
                });
                link_down = Some(site);
            }
            if let Some(generation) = conn.attached {
                if node.control.is_some_and(|(g, _)| g == generation) {
                    node.control = None;
                    node.recorder.record(FlightEventKind::CoordinatorLost);
                }
            }
        }
        if let Some(site) = link_down {
            self.notify(node_idx, &Message::LinkDown { peer: site });
        }
        drop(conn);
        self.maybe_finish_node(node_idx);
    }
}

/// One event loop's thread body.
fn run_loop(mut state: LoopState, commands: Arc<Mutex<Vec<Command>>>) {
    let mut events = Events::with_capacity(EVENTS_PER_POLL);
    'outer: loop {
        let timeout = state.next_timeout();
        if state.poll.poll(&mut events, timeout).is_err() {
            // epoll_wait only fails on programming errors (EINTR is
            // retried inside the shim); abandon rather than spin.
            break;
        }
        state.metrics.wakeup_batch.record(events.len() as u64);
        let mut woken = false;
        for event in events.iter() {
            if event.token() == WAKE {
                woken = true;
                continue;
            }
            state.handle_event(event.token().0, event.is_readable(), event.is_writable());
        }
        if woken {
            let drained: Vec<Command> = std::mem::take(&mut *commands.lock());
            for command in drained {
                match command {
                    Command::Register(seed) => state.register_node(*seed),
                    Command::StopNode { key } => state.stop_node(key),
                    Command::Quit => break 'outer,
                }
            }
        }
        state.fire_timers();
        state.flush_dirty();
        state.recycle();
    }
    state.abandon();
}

/// A pool of non-blocking event loops hosting many RPs per thread.
///
/// Nodes bound via [`bind_node`](Self::bind_node) are spread round-robin
/// over the loops; each speaks the exact [`wire`](crate::wire) protocol
/// of a threaded [`RpNode`](crate::RpNode), so the same
/// [`Coordinator`](crate::Coordinator) drives either, and
/// [`LiveCluster::launch_reactor`](crate::LiveCluster::launch_reactor)
/// swaps fleets between hosting modes without touching the control
/// plane.
///
/// Dropping the reactor quits every loop, abandoning nodes still hosted
/// (their `join` unblocks); stop nodes first for a graceful end.
pub struct Reactor {
    loops: Vec<LoopHandle>,
    next_loop: AtomicUsize,
    next_key: AtomicU64,
    telemetry: MetricsRegistry,
    recorder: FlightRecorder,
}

struct LoopHandle {
    commands: Arc<Mutex<Vec<Command>>>,
    waker: Arc<Waker>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Reactor {
    /// Starts a reactor with `threads` event loops (at least one).
    ///
    /// # Errors
    ///
    /// Propagates epoll/eventfd creation failure (fd exhaustion).
    pub fn new(threads: usize) -> io::Result<Reactor> {
        Self::with_telemetry(threads, MetricsRegistry::new(), FlightRecorder::new())
    }

    /// Starts a reactor reporting into caller-supplied telemetry: live
    /// connection and registered-node gauges, the `reactor.wakeup_batch`
    /// events-per-poll histogram, a `reactor.threads_per_rp_milli`
    /// thread-amortization gauge, and ReactorStart/ReactorStop flight
    /// events.
    ///
    /// # Errors
    ///
    /// Propagates epoll/eventfd creation failure (fd exhaustion).
    pub fn with_telemetry(
        threads: usize,
        telemetry: MetricsRegistry,
        recorder: FlightRecorder,
    ) -> io::Result<Reactor> {
        let threads = threads.max(1);
        let mut loops = Vec::with_capacity(threads);
        for _ in 0..threads {
            let poll = Poll::new()?;
            let waker = Arc::new(Waker::new(poll.registry(), WAKE)?);
            let commands: Arc<Mutex<Vec<Command>>> = Arc::new(Mutex::new(Vec::new()));
            let metrics = LoopMetrics::new(&telemetry, threads as u64);
            let state = LoopState::new(poll, metrics);
            let thread_commands = Arc::clone(&commands);
            let thread = thread::spawn(move || run_loop(state, thread_commands));
            loops.push(LoopHandle {
                commands,
                waker,
                thread: Some(thread),
            });
        }
        telemetry.gauge("reactor.threads").set(threads as u64);
        recorder.record(FlightEventKind::ReactorStart {
            threads: threads as u64,
        });
        Ok(Reactor {
            loops,
            next_loop: AtomicUsize::new(0),
            next_key: AtomicU64::new(0),
            telemetry,
            recorder,
        })
    }

    /// Number of event-loop threads.
    pub fn threads(&self) -> usize {
        self.loops.len()
    }

    /// The reactor's metrics registry (shared with every loop).
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.telemetry
    }

    /// The reactor's flight recorder (start/stop lifecycle events).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Binds a new RP for `site` on an OS-assigned 127.0.0.1 port and
    /// hosts it on the next event loop (round-robin). The returned
    /// handle's address is dialable immediately — connections queue in
    /// the accept backlog until the loop adopts the listener.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be bound.
    pub fn bind_node(&self, site: SiteId) -> io::Result<ReactorNodeHandle> {
        let listener =
            std::net::TcpListener::bind(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0))?;
        let addr = listener.local_addr()?;
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        let done = Arc::new(AtomicBool::new(false));
        let recorder = FlightRecorder::new();
        let slot = self.next_loop.fetch_add(1, Ordering::Relaxed) % self.loops.len();
        let Some(host) = self.loops.get(slot) else {
            return Err(io::Error::other("reactor has no event loops"));
        };
        host.commands
            .lock()
            .push(Command::Register(Box::new(NodeSeed {
                key,
                site,
                listener,
                stats: Arc::new(NodeStats::default()),
                recorder: recorder.clone(),
                done: Arc::clone(&done),
            })));
        let _ = host.waker.wake();
        Ok(ReactorNodeHandle {
            site,
            addr,
            key,
            recorder,
            done,
            commands: Arc::clone(&host.commands),
            waker: Arc::clone(&host.waker),
        })
    }

    /// Explicit teardown (identical to drop): quit and join every loop.
    pub fn shutdown(self) {}
}

impl Drop for Reactor {
    fn drop(&mut self) {
        for host in &self.loops {
            host.commands.lock().push(Command::Quit);
            let _ = host.waker.wake();
        }
        for host in &mut self.loops {
            if let Some(thread) = host.thread.take() {
                let _ = thread.join();
            }
        }
        let threads = self.loops.len() as u64;
        self.telemetry.gauge("reactor.threads").set(0);
        self.recorder
            .record(FlightEventKind::ReactorStop { threads });
    }
}

/// Control handle of a reactor-hosted RP — the event-driven counterpart
/// of [`RpNodeHandle`](crate::RpNodeHandle).
pub struct ReactorNodeHandle {
    site: SiteId,
    addr: SocketAddr,
    key: u64,
    recorder: FlightRecorder,
    done: Arc<AtomicBool>,
    commands: Arc<Mutex<Vec<Command>>>,
    waker: Arc<Waker>,
}

impl ReactorNodeHandle {
    /// The node's advertised (bound) address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The site this node serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The node's flight recorder (link churn, reconfigures).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Orders the node down: graceful `End`/link teardown, then removal
    /// from its loop. Idempotent; does not block.
    pub fn stop(&self) {
        self.commands
            .lock()
            .push(Command::StopNode { key: self.key });
        let _ = self.waker.wake();
    }

    /// Waits until the node has been removed from its event loop (by
    /// [`stop`](Self::stop), a coordinator `Shutdown`, or reactor
    /// teardown).
    pub fn join(self) {
        while !self.done.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use teeve_pubsub::{ChildLink, ForwardingEntry, SitePlan};

    fn read_next(conn: &mut std::net::TcpStream, buf: &mut BytesMut, chunk: &mut [u8]) -> Message {
        loop {
            match decode(buf).expect("valid wire traffic") {
                Some(message) => return message,
                None => {
                    let read = conn.read(chunk).expect("socket read");
                    assert!(read > 0, "connection closed early");
                    buf.extend_from_slice(&chunk[..read]);
                }
            }
        }
    }

    #[test]
    fn socket_reactor_node_executes_orders_end_to_end() {
        let reactor = Reactor::new(1).expect("reactor starts");
        let node = reactor.bind_node(SiteId::new(0)).expect("bind");
        let stream_id = StreamId::new(SiteId::new(0), 0);

        // A bare std listener stands in for the degraded child.
        let child_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("child bind");
        let child_addr = child_listener.local_addr().expect("child addr");

        // One control connection carries, in order: Attach, a table
        // where the origin's child takes the stream at rung 1, the
        // OpenLink order, and a single 1024-byte publish — the same
        // script the threaded node test uses.
        let mut control = std::net::TcpStream::connect(node.addr()).expect("control connect");
        control.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let mut orders = BytesMut::new();
        encode(&Message::Attach, &mut orders);
        encode(
            &Message::Reconfigure {
                revision: 1,
                site_plan: SitePlan {
                    site: SiteId::new(0),
                    entries: vec![ForwardingEntry {
                        stream: stream_id,
                        parent: None,
                        children: vec![ChildLink {
                            site: SiteId::new(1),
                            quality: Quality::new(1),
                        }],
                        quality: Quality::FULL,
                    }],
                },
            },
            &mut orders,
        );
        encode(
            &Message::OpenLink {
                child: SiteId::new(1),
                addr: child_addr,
            },
            &mut orders,
        );
        encode(
            &Message::Publish {
                stream: stream_id,
                base_seq: 0,
                frames: 1,
                payload_bytes: 1024,
                interval_micros: 0,
            },
            &mut orders,
        );
        control.write_all(&orders).expect("orders sent");

        // The control channel answers with the Ack for revision 1.
        let mut control_buf = BytesMut::new();
        let mut chunk = [0u8; 4096];
        let ack = read_next(&mut control, &mut control_buf, &mut chunk);
        assert_eq!(ack, Message::Ack { revision: 1 });

        // The child observes the Hello preamble then the frame, tagged
        // at its rung with the payload halved — identical to the
        // threaded node's bytes.
        let (mut child_conn, _) = child_listener.accept().expect("node dials child");
        child_conn
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok();
        let mut child_buf = BytesMut::new();
        let hello = read_next(&mut child_conn, &mut child_buf, &mut chunk);
        assert_eq!(
            hello,
            Message::Hello {
                site: SiteId::new(0)
            }
        );
        let frame = read_next(&mut child_conn, &mut child_buf, &mut chunk);
        let Message::Frame {
            quality, payload, ..
        } = frame
        else {
            panic!("expected a frame, got {frame:?}");
        };
        assert_eq!(quality, Quality::new(1), "frame tagged at the child's rung");
        assert_eq!(payload.len(), 512, "payload halved for rung 1");

        // BatchDone comes back on the control channel once the inline
        // batch has been injected.
        let done = read_next(&mut control, &mut control_buf, &mut chunk);
        assert_eq!(
            done,
            Message::BatchDone {
                stream: stream_id,
                next_seq: 1
            }
        );

        node.stop();
        node.join();
        // Stopping cascaded the link down: the child sees EOF.
        let mut scratch = [0u8; 16];
        loop {
            match child_conn.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let registered = reactor.telemetry().gauge("reactor.nodes.registered").get();
        assert_eq!(registered, 0, "stopped node must deregister");
        reactor.shutdown();
    }

    #[test]
    fn socket_reactor_stop_is_idempotent_and_join_unblocks() {
        let reactor = Reactor::new(2).expect("reactor starts");
        let a = reactor.bind_node(SiteId::new(0)).expect("bind a");
        let b = reactor.bind_node(SiteId::new(1)).expect("bind b");
        assert_eq!(a.site(), SiteId::new(0));
        assert_ne!(a.addr(), b.addr());
        a.stop();
        a.stop();
        a.join();
        // Dropping the reactor abandons node b; its join still unblocks.
        drop(reactor);
        b.join();
    }

    #[test]
    fn socket_reactor_records_lifecycle_flight_events() {
        let telemetry = MetricsRegistry::new();
        let recorder = FlightRecorder::new();
        let reactor =
            Reactor::with_telemetry(3, telemetry.clone(), recorder.clone()).expect("starts");
        assert_eq!(telemetry.gauge("reactor.threads").get(), 3);
        drop(reactor);
        let kinds: Vec<FlightEventKind> = recorder.events().into_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FlightEventKind::ReactorStart { threads: 3 }));
        assert!(kinds.contains(&FlightEventKind::ReactorStop { threads: 3 }));
        assert_eq!(telemetry.gauge("reactor.threads").get(), 0);
    }
}
