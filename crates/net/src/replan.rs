//! Link-level replanning for the live TCP cluster.
//!
//! RP-to-RP TCP connections are *site*-level: one connection per directed
//! `(parent, child)` pair carries every stream routed over that pair. A
//! [`PlanDelta`] therefore only forces connection churn when a pair's
//! *last* stream leaves it (close) or its *first* stream lands on it
//! (connect); rerouting a stream between two pairs that both keep other
//! traffic touches no socket at all. [`link_changes`] computes exactly
//! that split, which is what a cluster applying a delta acts on.

use std::collections::BTreeSet;

use teeve_pubsub::{DisseminationPlan, PlanDelta};
use teeve_types::SiteId;

/// The site-level connection consequences of applying one plan delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkChanges {
    /// Directed pairs that must establish a new TCP connection.
    pub established: Vec<(SiteId, SiteId)>,
    /// Directed pairs whose connection can be closed.
    pub closed: Vec<(SiteId, SiteId)>,
    /// Directed pairs that keep their connection (they carry traffic both
    /// before and after), even if their stream set changed.
    pub retained: Vec<(SiteId, SiteId)>,
}

impl LinkChanges {
    /// Returns true when the delta needs no socket work at all.
    pub fn is_socket_free(&self) -> bool {
        self.established.is_empty() && self.closed.is_empty()
    }
}

/// The directed site pairs carrying at least one stream under `plan`.
fn link_pairs(plan: &DisseminationPlan) -> BTreeSet<(SiteId, SiteId)> {
    plan.edges()
        .map(|(parent, child, _)| (parent, child))
        .collect()
}

/// Computes which RP-to-RP connections `delta` establishes, closes, and
/// retains when applied to `current`.
///
/// # Errors
///
/// Returns the delta's own application error if it does not match
/// `current` (stale revision).
pub fn link_changes(
    current: &DisseminationPlan,
    delta: &PlanDelta,
) -> Result<LinkChanges, teeve_pubsub::DeltaError> {
    let mut after = current.clone();
    delta.apply(&mut after)?;
    Ok(link_changes_between(current, &after))
}

/// [`link_changes`] over two already-materialized plan revisions, for
/// callers that have applied the delta themselves (the live cluster
/// computes the next plan once and reuses it as its new state).
pub fn link_changes_between(before: &DisseminationPlan, after: &DisseminationPlan) -> LinkChanges {
    let before = link_pairs(before);
    let after = link_pairs(after);
    LinkChanges {
        established: after.difference(&before).copied().collect(),
        closed: before.difference(&after).copied().collect(),
        retained: before.intersection(&after).copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_overlay::{NodeCapacity, OverlayManager, ProblemInstance};
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree, StreamId};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn universe() -> ProblemInstance {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![NodeCapacity::symmetric(Degree::new(6)); 3])
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap()
    }

    fn plan_of(problem: &ProblemInstance, manager: &OverlayManager) -> DisseminationPlan {
        DisseminationPlan::from_forest(
            problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        )
    }

    #[test]
    fn first_stream_on_a_pair_establishes_the_link() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let delta = teeve_pubsub::PlanDelta::diff(&before, &plan_of(&p, &m));
        let changes = link_changes(&before, &delta).unwrap();
        assert_eq!(changes.established, vec![(site(0), site(1))]);
        assert!(changes.closed.is_empty());
        assert!(changes.retained.is_empty());
    }

    #[test]
    fn second_stream_on_a_pair_is_socket_free() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 1)).unwrap();
        let delta = teeve_pubsub::PlanDelta::diff(&before, &plan_of(&p, &m));
        let changes = link_changes(&before, &delta).unwrap();
        assert!(changes.is_socket_free(), "pair 0->1 already carries s0.0");
        assert_eq!(changes.retained, vec![(site(0), site(1))]);
    }

    #[test]
    fn last_stream_leaving_a_pair_closes_the_link() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        m.unsubscribe(site(2), stream(0, 0)).unwrap();
        let delta = teeve_pubsub::PlanDelta::diff(&before, &plan_of(&p, &m));
        let changes = link_changes(&before, &delta).unwrap();
        assert!(changes.established.is_empty());
        // Whichever pair carried site 2's copy closes; 0->1 survives.
        assert_eq!(changes.closed.len(), 1);
        assert!(changes.retained.contains(&(site(0), site(1))));
    }

    #[test]
    fn stale_deltas_propagate_the_error() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        let empty = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let one = plan_of(&p, &m);
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let two = plan_of(&p, &m);
        let delta = teeve_pubsub::PlanDelta::diff(&one, &two);
        assert!(link_changes(&empty, &delta).is_err());
    }
}
