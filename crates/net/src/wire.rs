//! Wire protocol: length-prefixed binary framing for RP-to-RP links.
//!
//! Every message is `[u32 LE length][u8 tag][body…]` where `length` counts
//! the tag and body. Integers are little-endian. The codec is incremental:
//! feed bytes as they arrive, decode complete messages as they become
//! available.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use teeve_pubsub::{ForwardingEntry, SitePlan};
use teeve_types::{SiteId, StreamId};

/// Maximum accepted message size (tag + body), guarding against corrupted
/// length prefixes: a 3DTI frame at the paper's raw rate is ≈1.5 MB, so
/// 8 MiB leaves ample headroom.
pub const MAX_MESSAGE_BYTES: usize = 8 * 1024 * 1024;

const TAG_HELLO: u8 = 1;
const TAG_FRAME: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_END: u8 = 4;
const TAG_RECONFIGURE: u8 = 5;
const TAG_ACK: u8 = 6;

/// A protocol message between rendezvous points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Connection preamble: identifies the connecting (upstream) RP.
    Hello {
        /// The connecting site.
        site: SiteId,
    },
    /// One 3D video frame travelling down a multicast tree.
    Frame {
        /// The stream the frame belongs to.
        stream: StreamId,
        /// Frame sequence number at the origin.
        seq: u64,
        /// Capture timestamp, microseconds since the cluster epoch.
        captured_micros: u64,
        /// Frame payload (synthetic 3D data).
        payload: Bytes,
    },
    /// Immediate end of the whole connection from this peer.
    ///
    /// **Legacy / abort path only.** Graceful termination is per-stream
    /// [`End`](Self::End) cascading followed by a write-shutdown: a
    /// per-connection `Bye` handshake deadlocks on cyclic site graphs.
    /// `Bye` survives for unilateral teardown — a coordinator aborting a
    /// control channel, or a peer dropping a link without draining it.
    Bye,
    /// End of one stream: the sender will never transmit another frame of
    /// `stream` on this connection. Cascades along the stream's multicast
    /// tree, which is acyclic — unlike the site-level connection graph, so
    /// per-stream termination cannot deadlock where a per-connection
    /// handshake would.
    End {
        /// The finished stream.
        stream: StreamId,
    },
    /// Control-plane order from the coordinator: replace the receiving
    /// RP's forwarding table with `site_plan`, which belongs to plan
    /// revision `revision`. The RP answers with [`Ack`](Self::Ack) once
    /// the table is swapped, marking its epoch boundary.
    Reconfigure {
        /// The plan revision the new table belongs to.
        revision: u64,
        /// The RP's complete forwarding state under the new revision.
        site_plan: SitePlan,
    },
    /// Epoch-boundary acknowledgement: the sending RP now forwards under
    /// `revision` and will never again emit a frame routed by an older
    /// table.
    Ack {
        /// The revision the RP switched to.
        revision: u64,
    },
}

/// Error produced while decoding a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded [`MAX_MESSAGE_BYTES`].
    Oversized {
        /// The claimed message size.
        claimed: usize,
    },
    /// The message tag is unknown.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The message body was shorter than its fields require.
    Truncated,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { claimed } => {
                write!(f, "message of {claimed} bytes exceeds limit")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::Truncated => write!(f, "message body truncated"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `message` onto the end of `dst`.
pub fn encode(message: &Message, dst: &mut BytesMut) {
    match message {
        Message::Hello { site } => {
            dst.put_u32_le(1 + 4);
            dst.put_u8(TAG_HELLO);
            dst.put_u32_le(site.index() as u32);
        }
        Message::Frame {
            stream,
            seq,
            captured_micros,
            payload,
        } => {
            let body = 1 + 4 + 4 + 8 + 8 + 4 + payload.len();
            dst.put_u32_le(body as u32);
            dst.put_u8(TAG_FRAME);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
            dst.put_u64_le(*seq);
            dst.put_u64_le(*captured_micros);
            dst.put_u32_le(payload.len() as u32);
            dst.put_slice(payload);
        }
        Message::Bye => {
            dst.put_u32_le(1);
            dst.put_u8(TAG_BYE);
        }
        Message::End { stream } => {
            dst.put_u32_le(1 + 4 + 4);
            dst.put_u8(TAG_END);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
        }
        Message::Reconfigure {
            revision,
            site_plan,
        } => {
            let body = 1 + 8 + site_plan_bytes(site_plan);
            dst.put_u32_le(body as u32);
            dst.put_u8(TAG_RECONFIGURE);
            dst.put_u64_le(*revision);
            encode_site_plan(site_plan, dst);
        }
        Message::Ack { revision } => {
            dst.put_u32_le(1 + 8);
            dst.put_u8(TAG_ACK);
            dst.put_u64_le(*revision);
        }
    }
}

/// Encoded size of a [`SitePlan`] body, in bytes.
fn site_plan_bytes(site_plan: &SitePlan) -> usize {
    // site + entry count, then per entry: stream (origin + local) +
    // parent flag/value + child count + children.
    4 + 4
        + site_plan
            .entries
            .iter()
            .map(|e| 4 + 4 + 1 + 4 + 4 + 4 * e.children.len())
            .sum::<usize>()
}

/// Encodes a forwarding table: `[site][entry count]` then per entry
/// `[stream origin][stream local][parent flag + site][child count][children…]`.
/// A missing parent (the RP originates the stream) is flag 0 with a zero
/// placeholder, keeping every entry fixed-width up to its child list.
fn encode_site_plan(site_plan: &SitePlan, dst: &mut BytesMut) {
    dst.put_u32_le(site_plan.site.index() as u32);
    dst.put_u32_le(site_plan.entries.len() as u32);
    for entry in &site_plan.entries {
        dst.put_u32_le(entry.stream.origin().index() as u32);
        dst.put_u32_le(entry.stream.local_index());
        match entry.parent {
            Some(parent) => {
                dst.put_u8(1);
                dst.put_u32_le(parent.index() as u32);
            }
            None => {
                dst.put_u8(0);
                dst.put_u32_le(0);
            }
        }
        dst.put_u32_le(entry.children.len() as u32);
        for child in &entry.children {
            dst.put_u32_le(child.index() as u32);
        }
    }
}

/// Decodes the [`SitePlan`] body of a `Reconfigure`.
fn decode_site_plan(body: &mut BytesMut) -> Result<SitePlan, WireError> {
    if body.len() < 8 {
        return Err(WireError::Truncated);
    }
    let site = SiteId::new(body.get_u32_le());
    let entry_count = body.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1024));
    for _ in 0..entry_count {
        if body.len() < 4 + 4 + 1 + 4 + 4 {
            return Err(WireError::Truncated);
        }
        let origin = SiteId::new(body.get_u32_le());
        let local = body.get_u32_le();
        let has_parent = body.get_u8() != 0;
        let parent_raw = body.get_u32_le();
        let parent = has_parent.then(|| SiteId::new(parent_raw));
        let child_count = body.get_u32_le() as usize;
        if body.len() < 4 * child_count {
            return Err(WireError::Truncated);
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            children.push(SiteId::new(body.get_u32_le()));
        }
        entries.push(ForwardingEntry {
            stream: StreamId::new(origin, local),
            parent,
            children,
        });
    }
    Ok(SitePlan { site, entries })
}

/// Attempts to decode one complete message from the front of `src`.
///
/// Returns `Ok(None)` when more bytes are needed; consumed bytes are
/// removed from `src` only when a full message was decoded.
///
/// # Errors
///
/// Returns an error on oversized lengths, unknown tags, or truncated
/// bodies (the connection should then be dropped).
pub fn decode(src: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if src.len() < 4 {
        return Ok(None);
    }
    let length = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize;
    if length > MAX_MESSAGE_BYTES {
        return Err(WireError::Oversized { claimed: length });
    }
    if src.len() < 4 + length {
        return Ok(None);
    }
    src.advance(4);
    let mut body = src.split_to(length);
    if body.is_empty() {
        return Err(WireError::Truncated);
    }
    let tag = body.get_u8();
    match tag {
        TAG_HELLO => {
            if body.len() < 4 {
                return Err(WireError::Truncated);
            }
            let site = SiteId::new(body.get_u32_le());
            Ok(Some(Message::Hello { site }))
        }
        TAG_FRAME => {
            if body.len() < 4 + 4 + 8 + 8 + 4 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            let seq = body.get_u64_le();
            let captured_micros = body.get_u64_le();
            let payload_len = body.get_u32_le() as usize;
            if body.len() < payload_len {
                return Err(WireError::Truncated);
            }
            let payload = body.split_to(payload_len).freeze();
            Ok(Some(Message::Frame {
                stream: StreamId::new(origin, local),
                seq,
                captured_micros,
                payload,
            }))
        }
        TAG_BYE => Ok(Some(Message::Bye)),
        TAG_RECONFIGURE => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            let revision = body.get_u64_le();
            let site_plan = decode_site_plan(&mut body)?;
            Ok(Some(Message::Reconfigure {
                revision,
                site_plan,
            }))
        }
        TAG_ACK => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::Ack {
                revision: body.get_u64_le(),
            }))
        }
        TAG_END => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            Ok(Some(Message::End {
                stream: StreamId::new(origin, local),
            }))
        }
        other => Err(WireError::UnknownTag { tag: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).expect("decodes").expect("complete");
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "decoder must consume the full message");
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Message::Hello {
            site: SiteId::new(7),
        });
    }

    #[test]
    fn bye_roundtrip() {
        roundtrip(Message::Bye);
    }

    #[test]
    fn end_roundtrip() {
        roundtrip(Message::End {
            stream: StreamId::new(SiteId::new(3), 11),
        });
    }

    #[test]
    fn ack_roundtrip() {
        roundtrip(Message::Ack {
            revision: u64::MAX - 3,
        });
    }

    #[test]
    fn reconfigure_roundtrip() {
        roundtrip(Message::Reconfigure {
            revision: 17,
            site_plan: SitePlan {
                site: SiteId::new(2),
                entries: vec![
                    ForwardingEntry {
                        stream: StreamId::new(SiteId::new(0), 1),
                        parent: Some(SiteId::new(0)),
                        children: vec![SiteId::new(1), SiteId::new(3)],
                    },
                    ForwardingEntry {
                        stream: StreamId::new(SiteId::new(2), 0),
                        parent: None,
                        children: vec![SiteId::new(0)],
                    },
                ],
            },
        });
    }

    #[test]
    fn empty_table_reconfigure_roundtrip() {
        roundtrip(Message::Reconfigure {
            revision: 0,
            site_plan: SitePlan {
                site: SiteId::new(9),
                entries: Vec::new(),
            },
        });
    }

    #[test]
    fn truncated_reconfigure_child_list_is_rejected() {
        let mut buf = BytesMut::new();
        // Revision + site + one entry claiming two children but carrying
        // none.
        let body_len = 1 + 8 + 4 + 4 + (4 + 4 + 1 + 4 + 4);
        buf.put_u32_le(body_len as u32);
        buf.put_u8(TAG_RECONFIGURE);
        buf.put_u64_le(3); // revision
        buf.put_u32_le(1); // site
        buf.put_u32_le(1); // entry count
        buf.put_u32_le(0); // stream origin
        buf.put_u32_le(0); // stream local
        buf.put_u8(1); // has parent
        buf.put_u32_le(0); // parent
        buf.put_u32_le(2); // two children claimed, zero present
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_ack_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u8(TAG_ACK);
        buf.put_u32_le(0); // u64 revision missing its upper half
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_end_body_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u8(TAG_END);
        buf.put_u32_le(0); // missing the local index
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn frame_roundtrip() {
        roundtrip(Message::Frame {
            stream: StreamId::new(SiteId::new(2), 5),
            seq: 42,
            captured_micros: 123_456_789,
            payload: Bytes::from_static(b"synthetic 3d points"),
        });
    }

    #[test]
    fn empty_payload_frame_roundtrip() {
        roundtrip(Message::Frame {
            stream: StreamId::new(SiteId::new(0), 0),
            seq: 0,
            captured_micros: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn incremental_decoding_waits_for_full_message() {
        let mut full = BytesMut::new();
        encode(
            &Message::Frame {
                stream: StreamId::new(SiteId::new(1), 2),
                seq: 9,
                captured_micros: 77,
                payload: Bytes::from_static(&[0xAB; 100]),
            },
            &mut full,
        );
        let mut partial = BytesMut::new();
        for (i, &b) in full.iter().enumerate() {
            partial.put_u8(b);
            let result = decode(&mut partial).expect("no error");
            if i + 1 < full.len() {
                assert!(result.is_none(), "decoded early at byte {i}");
            } else {
                assert!(result.is_some(), "failed to decode complete message");
            }
        }
    }

    #[test]
    fn multiple_messages_decode_in_order() {
        let mut buf = BytesMut::new();
        encode(
            &Message::Hello {
                site: SiteId::new(1),
            },
            &mut buf,
        );
        encode(&Message::Bye, &mut buf);
        assert_eq!(
            decode(&mut buf).unwrap(),
            Some(Message::Hello {
                site: SiteId::new(1)
            })
        );
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::Bye));
        assert_eq!(decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_MESSAGE_BYTES + 1) as u32);
        buf.put_u8(TAG_BYE);
        assert!(matches!(decode(&mut buf), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(decode(&mut buf), Err(WireError::UnknownTag { tag: 99 }));
    }

    #[test]
    fn truncated_frame_body_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(TAG_FRAME);
        buf.put_u8(0); // far too short for a frame header
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn frame_payload_length_is_validated() {
        let mut buf = BytesMut::new();
        // Claim a 10-byte payload but provide none.
        let body_len = 1 + 4 + 4 + 8 + 8 + 4;
        buf.put_u32_le(body_len as u32);
        buf.put_u8(TAG_FRAME);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(10);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }
}
