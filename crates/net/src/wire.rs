//! Wire protocol: length-prefixed binary framing for RP-to-RP links and
//! the coordinator control plane.
//!
//! Every message is `[u32 LE length][u8 tag][body…]` where `length` counts
//! the tag and body. Integers are little-endian. The codec is incremental:
//! feed bytes as they arrive, decode complete messages as they become
//! available.
//!
//! Since the process-separable RP redesign, *every* coordinator action is
//! a message on this protocol — there is no shared-memory side channel:
//!
//! * link lifecycle: [`Message::OpenLink`]/[`Message::CloseLink`] orders
//!   (the RP dials or write-shuts its own sockets) answered by
//!   [`Message::LinkUp`]/[`Message::LinkDown`] notifications from the
//!   receiving side;
//! * frame injection: [`Message::Publish`] orders executed by origin RPs,
//!   acknowledged with [`Message::BatchDone`];
//! * delivery accounting: [`Message::StatsRequest`] answered by
//!   [`Message::StatsReport`];
//! * coordinator recovery: [`Message::ResyncQuery`] answered by
//!   [`Message::ResyncReply`] on a freshly re-attached control channel;
//! * teardown: [`Message::Shutdown`].

use std::net::SocketAddr;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use teeve_pubsub::{ChildLink, ForwardingEntry, SitePlan};
use teeve_telemetry::{LogHistogram, BUCKETS};
use teeve_types::{Quality, SiteId, StreamId};

/// Maximum accepted message size (tag + body), guarding against corrupted
/// length prefixes: a 3DTI frame at the paper's raw rate is ≈1.5 MB, so
/// 8 MiB leaves ample headroom.
pub const MAX_MESSAGE_BYTES: usize = 8 * 1024 * 1024;

const TAG_HELLO: u8 = 1;
const TAG_FRAME: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_END: u8 = 4;
const TAG_RECONFIGURE: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_ATTACH: u8 = 7;
const TAG_OPEN_LINK: u8 = 8;
const TAG_CLOSE_LINK: u8 = 9;
const TAG_LINK_UP: u8 = 10;
const TAG_LINK_DOWN: u8 = 11;
const TAG_PUBLISH: u8 = 12;
const TAG_BATCH_DONE: u8 = 13;
const TAG_STATS_REQUEST: u8 = 14;
const TAG_STATS_REPORT: u8 = 15;
const TAG_SHUTDOWN: u8 = 16;
const TAG_RESYNC_QUERY: u8 = 17;
const TAG_RESYNC_REPLY: u8 = 18;

/// One stream's delivery counters at one RP, as carried by
/// [`Message::StatsReport`]. The reporting RP is identified by the control
/// channel the report arrives on, so entries only name the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDelivery {
    /// The delivered stream.
    pub stream: StreamId,
    /// Frames of `stream` delivered at the reporting RP.
    pub delivered: u64,
    /// Frames of `delivered` that arrived below full quality (tagged
    /// with a rung > 0 by the degrade-don't-reject path).
    pub delivered_degraded: u64,
    /// Sum of observed end-to-end latencies, in microseconds.
    pub latency_sum_micros: u64,
    /// The full end-to-end latency *distribution* at this RP, in
    /// microseconds. Carried sparsely on the wire (non-empty buckets
    /// only) and merged losslessly coordinator-side, so cluster-wide
    /// p50/p99 are true percentiles, not sum/count approximations.
    pub latency: LogHistogram,
}

/// A protocol message between rendezvous points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Connection preamble: identifies the connecting (upstream) RP.
    Hello {
        /// The connecting site.
        site: SiteId,
    },
    /// One 3D video frame travelling down a multicast tree.
    Frame {
        /// The stream the frame belongs to.
        stream: StreamId,
        /// The quality rung the frame is carried at. Relays forward at
        /// the coarser of this tag and their own planned rung, sizing
        /// the payload down accordingly, so quality only ever degrades
        /// along a path.
        quality: Quality,
        /// Frame sequence number at the origin.
        seq: u64,
        /// Capture timestamp, microseconds since the cluster epoch.
        captured_micros: u64,
        /// Frame payload (synthetic 3D data).
        payload: Bytes,
    },
    /// Immediate end of the whole connection from this peer.
    ///
    /// **Legacy / abort path only.** Graceful termination is per-stream
    /// [`End`](Self::End) cascading followed by a write-shutdown: a
    /// per-connection `Bye` handshake deadlocks on cyclic site graphs.
    /// `Bye` survives for unilateral teardown — a coordinator aborting a
    /// control channel, or a peer dropping a link without draining it.
    Bye,
    /// End of one stream: the sender will never transmit another frame of
    /// `stream` on this connection. Cascades along the stream's multicast
    /// tree, which is acyclic — unlike the site-level connection graph, so
    /// per-stream termination cannot deadlock where a per-connection
    /// handshake would.
    End {
        /// The finished stream.
        stream: StreamId,
    },
    /// Control-plane order from the coordinator: replace the receiving
    /// RP's forwarding table with `site_plan`, which belongs to plan
    /// revision `revision`. The RP answers with [`Ack`](Self::Ack) once
    /// the table is swapped, marking its epoch boundary.
    Reconfigure {
        /// The plan revision the new table belongs to.
        revision: u64,
        /// The RP's complete forwarding state under the new revision.
        site_plan: SitePlan,
    },
    /// Epoch-boundary acknowledgement: the sending RP now forwards under
    /// `revision` and will never again emit a frame routed by an older
    /// table.
    Ack {
        /// The revision the RP switched to.
        revision: u64,
    },
    /// Coordinator preamble: marks this connection as the RP's control
    /// channel. All RP-originated control traffic ([`LinkUp`](Self::LinkUp),
    /// [`LinkDown`](Self::LinkDown), [`Ack`](Self::Ack),
    /// [`BatchDone`](Self::BatchDone), [`StatsReport`](Self::StatsReport))
    /// is sent on the most recently attached connection.
    Attach,
    /// Coordinator order: dial `addr`, open with the `Hello` preamble, and
    /// register the connection as the data link to `child`. The receiving
    /// RP owns the socket; the coordinator learns the outcome from the
    /// child's [`LinkUp`](Self::LinkUp).
    OpenLink {
        /// The downstream RP to connect to.
        child: SiteId,
        /// The child's listener address.
        addr: SocketAddr,
    },
    /// Coordinator order: write-shut and drop the data link to `child`.
    /// The child observes the disconnect and reports
    /// [`LinkDown`](Self::LinkDown).
    CloseLink {
        /// The downstream RP to disconnect from.
        child: SiteId,
    },
    /// Control notification from an RP: an inbound data connection
    /// attributed itself (via `Hello`) to `peer`. Replaces the old
    /// coordinator's shared-memory poll of the RP's inbound set.
    LinkUp {
        /// The upstream RP that connected.
        peer: SiteId,
    },
    /// Control notification from an RP: the inbound data connection from
    /// `peer` disconnected.
    LinkDown {
        /// The upstream RP that disconnected.
        peer: SiteId,
    },
    /// Coordinator order to an origin RP: inject `frames` synthetic frames
    /// of `stream` (sequence numbers `base_seq..base_seq + frames`) into
    /// the overlay, pacing by `interval_micros` when nonzero. Answered
    /// with [`BatchDone`](Self::BatchDone) once the last frame is sent.
    Publish {
        /// The stream to publish; the receiving RP must originate it.
        stream: StreamId,
        /// First sequence number of the batch.
        base_seq: u64,
        /// Number of frames to publish.
        frames: u64,
        /// Synthetic payload size per frame, in bytes.
        payload_bytes: u32,
        /// Pause between frames in microseconds (0 = unpaced).
        interval_micros: u64,
    },
    /// Origin RP acknowledgement: every frame of the
    /// [`Publish`](Self::Publish) batch ending at `next_seq` has been
    /// forwarded to the stream's children.
    BatchDone {
        /// The published stream.
        stream: StreamId,
        /// One past the last published sequence number.
        next_seq: u64,
    },
    /// Coordinator probe: report current delivery counters. `probe`
    /// correlates request and response on the control channel.
    StatsRequest {
        /// Caller-chosen correlation token, echoed by the report.
        probe: u64,
    },
    /// RP response to [`StatsRequest`](Self::StatsRequest): the RP's
    /// complete delivery accounting so far. Replaces the old shared
    /// in-memory `Stats`; the coordinator folds these into its
    /// cluster-wide report.
    StatsReport {
        /// The echoed correlation token.
        probe: u64,
        /// Total frames delivered at this RP.
        total: u64,
        /// Worst observed end-to-end latency in microseconds.
        max_latency_micros: u64,
        /// Per-stream delivery counters.
        streams: Vec<StreamDelivery>,
    },
    /// Reconnected-coordinator probe: describe your current forwarding
    /// state. Sent on a freshly re-attached control channel after a
    /// coordinator restart; `probe` correlates request and reply so a
    /// straggler from an aborted resync round is discarded.
    ResyncQuery {
        /// Caller-chosen correlation token, echoed by the reply.
        probe: u64,
    },
    /// RP response to [`ResyncQuery`](Self::ResyncQuery): the revision
    /// of the RP's last-applied forwarding table and the upstream peers
    /// currently attributed to its inbound links. A reply describes the
    /// RP only at the moment it was sent — a backlog `Reconfigure` may
    /// land after it — so the coordinator must close the round with a
    /// re-dictation barrier rather than trusting replies outright.
    ResyncReply {
        /// The echoed correlation token.
        probe: u64,
        /// Revision of the RP's last-applied forwarding table.
        revision: u64,
        /// Upstream sites with live inbound data connections.
        inbound: Vec<SiteId>,
    },
    /// Coordinator order: cascade `End` markers for locally originated
    /// streams, write-shut every outbound link, and exit. The terminal
    /// message of an RP's lifecycle.
    Shutdown,
}

/// Error produced while decoding a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded [`MAX_MESSAGE_BYTES`].
    Oversized {
        /// The claimed message size.
        claimed: usize,
    },
    /// The message tag is unknown.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The message body was shorter than its fields require.
    Truncated,
    /// An `OpenLink` carried a byte sequence that does not parse as a
    /// socket address.
    BadAddress,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { claimed } => {
                write!(f, "message of {claimed} bytes exceeds limit")
            }
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::Truncated => write!(f, "message body truncated"),
            WireError::BadAddress => write!(f, "unparseable socket address"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `message` onto the end of `dst`.
pub fn encode(message: &Message, dst: &mut BytesMut) {
    match message {
        Message::Hello { site } => {
            dst.put_u32_le(1 + 4);
            dst.put_u8(TAG_HELLO);
            dst.put_u32_le(site.index() as u32);
        }
        Message::Frame {
            stream,
            quality,
            seq,
            captured_micros,
            payload,
        } => {
            let body = 1 + 4 + 4 + 1 + 8 + 8 + 4 + payload.len();
            dst.put_u32_le(body as u32);
            dst.put_u8(TAG_FRAME);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
            dst.put_u8(quality.rung() as u8);
            dst.put_u64_le(*seq);
            dst.put_u64_le(*captured_micros);
            dst.put_u32_le(payload.len() as u32);
            dst.put_slice(payload);
        }
        Message::Bye => {
            dst.put_u32_le(1);
            dst.put_u8(TAG_BYE);
        }
        Message::End { stream } => {
            dst.put_u32_le(1 + 4 + 4);
            dst.put_u8(TAG_END);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
        }
        Message::Reconfigure {
            revision,
            site_plan,
        } => {
            let body = 1 + 8 + site_plan_bytes(site_plan);
            dst.put_u32_le(body as u32);
            dst.put_u8(TAG_RECONFIGURE);
            dst.put_u64_le(*revision);
            encode_site_plan(site_plan, dst);
        }
        Message::Ack { revision } => {
            dst.put_u32_le(1 + 8);
            dst.put_u8(TAG_ACK);
            dst.put_u64_le(*revision);
        }
        Message::Attach => {
            dst.put_u32_le(1);
            dst.put_u8(TAG_ATTACH);
        }
        Message::OpenLink { child, addr } => {
            let text = addr.to_string();
            dst.put_u32_le((1 + 4 + 4 + text.len()) as u32);
            dst.put_u8(TAG_OPEN_LINK);
            dst.put_u32_le(child.index() as u32);
            dst.put_u32_le(text.len() as u32);
            dst.put_slice(text.as_bytes());
        }
        Message::CloseLink { child } => {
            dst.put_u32_le(1 + 4);
            dst.put_u8(TAG_CLOSE_LINK);
            dst.put_u32_le(child.index() as u32);
        }
        Message::LinkUp { peer } => {
            dst.put_u32_le(1 + 4);
            dst.put_u8(TAG_LINK_UP);
            dst.put_u32_le(peer.index() as u32);
        }
        Message::LinkDown { peer } => {
            dst.put_u32_le(1 + 4);
            dst.put_u8(TAG_LINK_DOWN);
            dst.put_u32_le(peer.index() as u32);
        }
        Message::Publish {
            stream,
            base_seq,
            frames,
            payload_bytes,
            interval_micros,
        } => {
            dst.put_u32_le(1 + 4 + 4 + 8 + 8 + 4 + 8);
            dst.put_u8(TAG_PUBLISH);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
            dst.put_u64_le(*base_seq);
            dst.put_u64_le(*frames);
            dst.put_u32_le(*payload_bytes);
            dst.put_u64_le(*interval_micros);
        }
        Message::BatchDone { stream, next_seq } => {
            dst.put_u32_le(1 + 4 + 4 + 8);
            dst.put_u8(TAG_BATCH_DONE);
            dst.put_u32_le(stream.origin().index() as u32);
            dst.put_u32_le(stream.local_index());
            dst.put_u64_le(*next_seq);
        }
        Message::StatsRequest { probe } => {
            dst.put_u32_le(1 + 8);
            dst.put_u8(TAG_STATS_REQUEST);
            dst.put_u64_le(*probe);
        }
        Message::StatsReport {
            probe,
            total,
            max_latency_micros,
            streams,
        } => {
            let body = 1 + 8 + 8 + 8 + 4 + streams.iter().map(delivery_bytes).sum::<usize>();
            dst.put_u32_le(body as u32);
            dst.put_u8(TAG_STATS_REPORT);
            dst.put_u64_le(*probe);
            dst.put_u64_le(*total);
            dst.put_u64_le(*max_latency_micros);
            dst.put_u32_le(streams.len() as u32);
            for entry in streams {
                dst.put_u32_le(entry.stream.origin().index() as u32);
                dst.put_u32_le(entry.stream.local_index());
                dst.put_u64_le(entry.delivered);
                dst.put_u64_le(entry.delivered_degraded);
                dst.put_u64_le(entry.latency_sum_micros);
                // The latency histogram travels sparsely: its exact
                // sum/min/max sidecar, then only the non-empty buckets.
                dst.put_u64_le(entry.latency.sum());
                dst.put_u64_le(entry.latency.min());
                dst.put_u64_le(entry.latency.max());
                let pairs: Vec<(u8, u64)> = entry.latency.nonzero_buckets().collect();
                dst.put_u8(pairs.len() as u8);
                for (index, count) in pairs {
                    dst.put_u8(index);
                    dst.put_u64_le(count);
                }
            }
        }
        Message::ResyncQuery { probe } => {
            dst.put_u32_le(1 + 8);
            dst.put_u8(TAG_RESYNC_QUERY);
            dst.put_u64_le(*probe);
        }
        Message::ResyncReply {
            probe,
            revision,
            inbound,
        } => {
            dst.put_u32_le((1 + 8 + 8 + 4 + 4 * inbound.len()) as u32);
            dst.put_u8(TAG_RESYNC_REPLY);
            dst.put_u64_le(*probe);
            dst.put_u64_le(*revision);
            dst.put_u32_le(inbound.len() as u32);
            for peer in inbound {
                dst.put_u32_le(peer.index() as u32);
            }
        }
        Message::Shutdown => {
            dst.put_u32_le(1);
            dst.put_u8(TAG_SHUTDOWN);
        }
    }
}

/// Encoded size of one [`StreamDelivery`] entry: the fixed counters,
/// the histogram's sum/min/max sidecar, and its sparse bucket pairs —
/// entries are variable-width, so the decoder bounds-checks per entry.
fn delivery_bytes(entry: &StreamDelivery) -> usize {
    let nonzero = entry.latency.nonzero_buckets().count();
    4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + nonzero * (1 + 8)
}

/// Encoded size of a [`SitePlan`] body, in bytes.
fn site_plan_bytes(site_plan: &SitePlan) -> usize {
    // site + entry count, then per entry: stream (origin + local) +
    // parent flag/value + quality rung + child count + children.
    4 + 4
        + site_plan
            .entries
            .iter()
            .map(|e| 4 + 4 + 1 + 4 + 1 + 4 + 5 * e.children.len())
            .sum::<usize>()
}

/// Encodes a forwarding table: `[site][entry count]` then per entry
/// `[stream origin][stream local][parent flag + site][quality rung]`
/// `[child count][children…]`. A missing parent (the RP originates the
/// stream) is flag 0 with a zero placeholder, keeping every entry
/// fixed-width up to its child list.
fn encode_site_plan(site_plan: &SitePlan, dst: &mut BytesMut) {
    dst.put_u32_le(site_plan.site.index() as u32);
    dst.put_u32_le(site_plan.entries.len() as u32);
    for entry in &site_plan.entries {
        dst.put_u32_le(entry.stream.origin().index() as u32);
        dst.put_u32_le(entry.stream.local_index());
        match entry.parent {
            Some(parent) => {
                dst.put_u8(1);
                dst.put_u32_le(parent.index() as u32);
            }
            None => {
                dst.put_u8(0);
                dst.put_u32_le(0);
            }
        }
        dst.put_u8(entry.quality.rung() as u8);
        dst.put_u32_le(entry.children.len() as u32);
        for child in &entry.children {
            dst.put_u32_le(child.site.index() as u32);
            dst.put_u8(child.quality.rung() as u8);
        }
    }
}

/// Decodes the [`SitePlan`] body of a `Reconfigure`.
fn decode_site_plan(body: &mut BytesMut) -> Result<SitePlan, WireError> {
    if body.len() < 8 {
        return Err(WireError::Truncated);
    }
    let site = SiteId::new(body.get_u32_le());
    let entry_count = body.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1024));
    for _ in 0..entry_count {
        if body.len() < 4 + 4 + 1 + 4 + 1 + 4 {
            return Err(WireError::Truncated);
        }
        let origin = SiteId::new(body.get_u32_le());
        let local = body.get_u32_le();
        let has_parent = body.get_u8() != 0;
        let parent_raw = body.get_u32_le();
        let parent = has_parent.then(|| SiteId::new(parent_raw));
        let quality = Quality::new(body.get_u8());
        let child_count = body.get_u32_le() as usize;
        // checked_mul: a corrupt count must not wrap the bounds check on
        // 32-bit targets and drive the reads past the buffer.
        if child_count
            .checked_mul(5)
            .is_none_or(|need| body.len() < need)
        {
            return Err(WireError::Truncated);
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let site = SiteId::new(body.get_u32_le());
            let quality = Quality::new(body.get_u8());
            children.push(ChildLink { site, quality });
        }
        entries.push(ForwardingEntry {
            stream: StreamId::new(origin, local),
            parent,
            children,
            quality,
        });
    }
    Ok(SitePlan { site, entries })
}

/// Attempts to decode one complete message from the front of `src`.
///
/// Returns `Ok(None)` when more bytes are needed; consumed bytes are
/// removed from `src` only when a full message was decoded.
///
/// # Errors
///
/// Returns an error on oversized lengths, unknown tags, or truncated
/// bodies (the connection should then be dropped).
pub fn decode(src: &mut BytesMut) -> Result<Option<Message>, WireError> {
    if src.len() < 4 {
        return Ok(None);
    }
    let length = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize;
    if length > MAX_MESSAGE_BYTES {
        return Err(WireError::Oversized { claimed: length });
    }
    if src.len() < 4 + length {
        return Ok(None);
    }
    src.advance(4);
    let mut body = src.split_to(length);
    if body.is_empty() {
        return Err(WireError::Truncated);
    }
    let tag = body.get_u8();
    match tag {
        TAG_HELLO => {
            if body.len() < 4 {
                return Err(WireError::Truncated);
            }
            let site = SiteId::new(body.get_u32_le());
            Ok(Some(Message::Hello { site }))
        }
        TAG_FRAME => {
            if body.len() < 4 + 4 + 1 + 8 + 8 + 4 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            let quality = Quality::new(body.get_u8());
            let seq = body.get_u64_le();
            let captured_micros = body.get_u64_le();
            let payload_len = body.get_u32_le() as usize;
            if body.len() < payload_len {
                return Err(WireError::Truncated);
            }
            let payload = body.split_to(payload_len).freeze();
            Ok(Some(Message::Frame {
                stream: StreamId::new(origin, local),
                quality,
                seq,
                captured_micros,
                payload,
            }))
        }
        TAG_BYE => Ok(Some(Message::Bye)),
        TAG_RECONFIGURE => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            let revision = body.get_u64_le();
            let site_plan = decode_site_plan(&mut body)?;
            Ok(Some(Message::Reconfigure {
                revision,
                site_plan,
            }))
        }
        TAG_ACK => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::Ack {
                revision: body.get_u64_le(),
            }))
        }
        TAG_END => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            Ok(Some(Message::End {
                stream: StreamId::new(origin, local),
            }))
        }
        TAG_ATTACH => Ok(Some(Message::Attach)),
        TAG_OPEN_LINK => {
            if body.len() < 4 + 4 {
                return Err(WireError::Truncated);
            }
            let child = SiteId::new(body.get_u32_le());
            let addr_len = body.get_u32_le() as usize;
            if body.len() < addr_len {
                return Err(WireError::Truncated);
            }
            let text = body.split_to(addr_len);
            let addr = std::str::from_utf8(&text)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(WireError::BadAddress)?;
            Ok(Some(Message::OpenLink { child, addr }))
        }
        TAG_CLOSE_LINK => {
            if body.len() < 4 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::CloseLink {
                child: SiteId::new(body.get_u32_le()),
            }))
        }
        TAG_LINK_UP => {
            if body.len() < 4 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::LinkUp {
                peer: SiteId::new(body.get_u32_le()),
            }))
        }
        TAG_LINK_DOWN => {
            if body.len() < 4 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::LinkDown {
                peer: SiteId::new(body.get_u32_le()),
            }))
        }
        TAG_PUBLISH => {
            if body.len() < 4 + 4 + 8 + 8 + 4 + 8 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            Ok(Some(Message::Publish {
                stream: StreamId::new(origin, local),
                base_seq: body.get_u64_le(),
                frames: body.get_u64_le(),
                payload_bytes: body.get_u32_le(),
                interval_micros: body.get_u64_le(),
            }))
        }
        TAG_BATCH_DONE => {
            if body.len() < 4 + 4 + 8 {
                return Err(WireError::Truncated);
            }
            let origin = SiteId::new(body.get_u32_le());
            let local = body.get_u32_le();
            Ok(Some(Message::BatchDone {
                stream: StreamId::new(origin, local),
                next_seq: body.get_u64_le(),
            }))
        }
        TAG_STATS_REQUEST => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::StatsRequest {
                probe: body.get_u64_le(),
            }))
        }
        TAG_STATS_REPORT => {
            if body.len() < 8 + 8 + 8 + 4 {
                return Err(WireError::Truncated);
            }
            let probe = body.get_u64_le();
            let total = body.get_u64_le();
            let max_latency_micros = body.get_u64_le();
            let count = body.get_u32_le() as usize;
            let mut streams = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                // Entries are variable-width (sparse histogram tail), so
                // each one is bounds-checked as it is read.
                if body.len() < 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 1 {
                    return Err(WireError::Truncated);
                }
                let origin = SiteId::new(body.get_u32_le());
                let local = body.get_u32_le();
                let delivered = body.get_u64_le();
                let delivered_degraded = body.get_u64_le();
                let latency_sum_micros = body.get_u64_le();
                let hist_sum = body.get_u64_le();
                let hist_min = body.get_u64_le();
                let hist_max = body.get_u64_le();
                let nonzero = body.get_u8() as usize;
                if nonzero > BUCKETS || body.len() < nonzero * (1 + 8) {
                    return Err(WireError::Truncated);
                }
                let mut pairs = Vec::with_capacity(nonzero);
                for _ in 0..nonzero {
                    let index = body.get_u8();
                    let bucket_count = body.get_u64_le();
                    pairs.push((index, bucket_count));
                }
                let latency = LogHistogram::from_parts(&pairs, hist_sum, hist_min, hist_max)
                    .ok_or(WireError::Truncated)?;
                streams.push(StreamDelivery {
                    stream: StreamId::new(origin, local),
                    delivered,
                    delivered_degraded,
                    latency_sum_micros,
                    latency,
                });
            }
            Ok(Some(Message::StatsReport {
                probe,
                total,
                max_latency_micros,
                streams,
            }))
        }
        TAG_RESYNC_QUERY => {
            if body.len() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(Some(Message::ResyncQuery {
                probe: body.get_u64_le(),
            }))
        }
        TAG_RESYNC_REPLY => {
            if body.len() < 8 + 8 + 4 {
                return Err(WireError::Truncated);
            }
            let probe = body.get_u64_le();
            let revision = body.get_u64_le();
            let count = body.get_u32_le() as usize;
            // checked_mul: a corrupt count must not wrap the bounds check
            // on 32-bit targets and drive the reads past the buffer.
            if count.checked_mul(4).is_none_or(|need| body.len() < need) {
                return Err(WireError::Truncated);
            }
            let mut inbound = Vec::with_capacity(count);
            for _ in 0..count {
                inbound.push(SiteId::new(body.get_u32_le()));
            }
            Ok(Some(Message::ResyncReply {
                probe,
                revision,
                inbound,
            }))
        }
        TAG_SHUTDOWN => Ok(Some(Message::Shutdown)),
        other => Err(WireError::UnknownTag { tag: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let decoded = decode(&mut buf).expect("decodes").expect("complete");
        assert_eq!(decoded, msg);
        assert!(buf.is_empty(), "decoder must consume the full message");
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Message::Hello {
            site: SiteId::new(7),
        });
    }

    #[test]
    fn bye_roundtrip() {
        roundtrip(Message::Bye);
    }

    #[test]
    fn end_roundtrip() {
        roundtrip(Message::End {
            stream: StreamId::new(SiteId::new(3), 11),
        });
    }

    #[test]
    fn ack_roundtrip() {
        roundtrip(Message::Ack {
            revision: u64::MAX - 3,
        });
    }

    #[test]
    fn reconfigure_roundtrip() {
        roundtrip(Message::Reconfigure {
            revision: 17,
            site_plan: SitePlan {
                site: SiteId::new(2),
                entries: vec![
                    ForwardingEntry {
                        stream: StreamId::new(SiteId::new(0), 1),
                        parent: Some(SiteId::new(0)),
                        children: vec![
                            ChildLink {
                                site: SiteId::new(1),
                                quality: Quality::new(1),
                            },
                            ChildLink::full(SiteId::new(3)),
                        ],
                        quality: Quality::new(2),
                    },
                    ForwardingEntry {
                        stream: StreamId::new(SiteId::new(2), 0),
                        parent: None,
                        children: vec![ChildLink::full(SiteId::new(0))],
                        quality: Quality::FULL,
                    },
                ],
            },
        });
    }

    #[test]
    fn empty_table_reconfigure_roundtrip() {
        roundtrip(Message::Reconfigure {
            revision: 0,
            site_plan: SitePlan {
                site: SiteId::new(9),
                entries: Vec::new(),
            },
        });
    }

    #[test]
    fn truncated_reconfigure_child_list_is_rejected() {
        let mut buf = BytesMut::new();
        // Revision + site + one entry claiming two children but carrying
        // none.
        let body_len = 1 + 8 + 4 + 4 + (4 + 4 + 1 + 4 + 1 + 4);
        buf.put_u32_le(body_len as u32);
        buf.put_u8(TAG_RECONFIGURE);
        buf.put_u64_le(3); // revision
        buf.put_u32_le(1); // site
        buf.put_u32_le(1); // entry count
        buf.put_u32_le(0); // stream origin
        buf.put_u32_le(0); // stream local
        buf.put_u8(1); // has parent
        buf.put_u32_le(0); // parent
        buf.put_u8(0); // quality rung
        buf.put_u32_le(2); // two children claimed, zero present
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_ack_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u8(TAG_ACK);
        buf.put_u32_le(0); // u64 revision missing its upper half
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_end_body_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u8(TAG_END);
        buf.put_u32_le(0); // missing the local index
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn frame_roundtrip() {
        roundtrip(Message::Frame {
            stream: StreamId::new(SiteId::new(2), 5),
            quality: Quality::new(1),
            seq: 42,
            captured_micros: 123_456_789,
            payload: Bytes::from_static(b"synthetic 3d points"),
        });
    }

    #[test]
    fn empty_payload_frame_roundtrip() {
        roundtrip(Message::Frame {
            stream: StreamId::new(SiteId::new(0), 0),
            quality: Quality::FULL,
            seq: 0,
            captured_micros: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn incremental_decoding_waits_for_full_message() {
        let mut full = BytesMut::new();
        encode(
            &Message::Frame {
                stream: StreamId::new(SiteId::new(1), 2),
                quality: Quality::FULL,
                seq: 9,
                captured_micros: 77,
                payload: Bytes::from_static(&[0xAB; 100]),
            },
            &mut full,
        );
        let mut partial = BytesMut::new();
        for (i, &b) in full.iter().enumerate() {
            partial.put_u8(b);
            let result = decode(&mut partial).expect("no error");
            if i + 1 < full.len() {
                assert!(result.is_none(), "decoded early at byte {i}");
            } else {
                assert!(result.is_some(), "failed to decode complete message");
            }
        }
    }

    #[test]
    fn multiple_messages_decode_in_order() {
        let mut buf = BytesMut::new();
        encode(
            &Message::Hello {
                site: SiteId::new(1),
            },
            &mut buf,
        );
        encode(&Message::Bye, &mut buf);
        assert_eq!(
            decode(&mut buf).unwrap(),
            Some(Message::Hello {
                site: SiteId::new(1)
            })
        );
        assert_eq!(decode(&mut buf).unwrap(), Some(Message::Bye));
        assert_eq!(decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_MESSAGE_BYTES + 1) as u32);
        buf.put_u8(TAG_BYE);
        assert!(matches!(decode(&mut buf), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u8(99);
        assert_eq!(decode(&mut buf), Err(WireError::UnknownTag { tag: 99 }));
    }

    #[test]
    fn truncated_frame_body_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u8(TAG_FRAME);
        buf.put_u8(0); // far too short for a frame header
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn control_plane_roundtrips() {
        roundtrip(Message::Attach);
        roundtrip(Message::Shutdown);
        roundtrip(Message::OpenLink {
            child: SiteId::new(4),
            addr: "127.0.0.1:45123".parse().unwrap(),
        });
        roundtrip(Message::OpenLink {
            child: SiteId::new(0),
            addr: "[::1]:9".parse().unwrap(),
        });
        roundtrip(Message::CloseLink {
            child: SiteId::new(1),
        });
        roundtrip(Message::LinkUp {
            peer: SiteId::new(2),
        });
        roundtrip(Message::LinkDown {
            peer: SiteId::new(3),
        });
        roundtrip(Message::Publish {
            stream: StreamId::new(SiteId::new(1), 2),
            base_seq: 77,
            frames: 12,
            payload_bytes: 4096,
            interval_micros: 5_000,
        });
        roundtrip(Message::BatchDone {
            stream: StreamId::new(SiteId::new(1), 2),
            next_seq: 89,
        });
        roundtrip(Message::StatsRequest { probe: 41 });
        roundtrip(Message::ResyncQuery { probe: 7 });
        roundtrip(Message::ResyncReply {
            probe: 7,
            revision: u64::MAX - 1,
            inbound: vec![SiteId::new(0), SiteId::new(3), SiteId::new(12)],
        });
        roundtrip(Message::ResyncReply {
            probe: 0,
            revision: 0,
            inbound: Vec::new(),
        });
        let mut spread = LogHistogram::new();
        for sample in [0u64, 130, 88_123, 88_123, u64::MAX] {
            spread.record(sample);
        }
        roundtrip(Message::StatsReport {
            probe: 41,
            total: 1_000_000,
            max_latency_micros: 88_123,
            streams: vec![
                StreamDelivery {
                    stream: StreamId::new(SiteId::new(0), 0),
                    delivered: 999_000,
                    delivered_degraded: 12,
                    latency_sum_micros: u64::MAX / 3,
                    latency: spread,
                },
                StreamDelivery {
                    stream: StreamId::new(SiteId::new(7), 3),
                    delivered: 1_000,
                    delivered_degraded: 1_000,
                    latency_sum_micros: 0,
                    latency: LogHistogram::new(),
                },
            ],
        });
        roundtrip(Message::StatsReport {
            probe: 0,
            total: 0,
            max_latency_micros: 0,
            streams: Vec::new(),
        });
    }

    #[test]
    fn malformed_open_link_address_is_rejected() {
        let text = b"not an address";
        let mut buf = BytesMut::new();
        buf.put_u32_le((1 + 4 + 4 + text.len()) as u32);
        buf.put_u8(TAG_OPEN_LINK);
        buf.put_u32_le(2);
        buf.put_u32_le(text.len() as u32);
        buf.put_slice(text);
        assert_eq!(decode(&mut buf), Err(WireError::BadAddress));
    }

    #[test]
    fn truncated_open_link_address_is_rejected() {
        let mut buf = BytesMut::new();
        // Claims a 20-byte address but the body carries none.
        buf.put_u32_le(1 + 4 + 4);
        buf.put_u8(TAG_OPEN_LINK);
        buf.put_u32_le(2);
        buf.put_u32_le(20);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_stats_report_entries_are_rejected() {
        let mut buf = BytesMut::new();
        // Header claims two delivery entries, body carries none.
        buf.put_u32_le(1 + 8 + 8 + 8 + 4);
        buf.put_u8(TAG_STATS_REPORT);
        buf.put_u64_le(1); // probe
        buf.put_u64_le(10); // total
        buf.put_u64_le(5); // max latency
        buf.put_u32_le(2); // entry count
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_stats_report_histogram_tail_is_rejected() {
        let mut buf = BytesMut::new();
        // One entry whose histogram claims three bucket pairs but the
        // body ends after the pair count.
        let entry_fixed = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 1;
        buf.put_u32_le((1 + 8 + 8 + 8 + 4 + entry_fixed) as u32);
        buf.put_u8(TAG_STATS_REPORT);
        buf.put_u64_le(1); // probe
        buf.put_u64_le(10); // total
        buf.put_u64_le(5); // max latency
        buf.put_u32_le(1); // entry count
        buf.put_u32_le(0); // stream origin
        buf.put_u32_le(0); // stream local
        buf.put_u64_le(10); // delivered
        buf.put_u64_le(0); // degraded
        buf.put_u64_le(50); // latency sum
        buf.put_u64_le(50); // hist sum
        buf.put_u64_le(1); // hist min
        buf.put_u64_le(9); // hist max
        buf.put_u8(3); // three pairs claimed, zero present
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn out_of_range_histogram_bucket_is_rejected() {
        let mut buf = BytesMut::new();
        // One entry carrying a single bucket pair with index 65 — past
        // the last valid log2 bucket (64).
        let entry = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + (1 + 8);
        buf.put_u32_le((1 + 8 + 8 + 8 + 4 + entry) as u32);
        buf.put_u8(TAG_STATS_REPORT);
        buf.put_u64_le(1); // probe
        buf.put_u64_le(10); // total
        buf.put_u64_le(5); // max latency
        buf.put_u32_le(1); // entry count
        buf.put_u32_le(0); // stream origin
        buf.put_u32_le(0); // stream local
        buf.put_u64_le(10); // delivered
        buf.put_u64_le(0); // degraded
        buf.put_u64_le(50); // latency sum
        buf.put_u64_le(50); // hist sum
        buf.put_u64_le(1); // hist min
        buf.put_u64_le(9); // hist max
        buf.put_u8(1); // one pair
        buf.put_u8(65); // invalid bucket index
        buf.put_u64_le(1);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_resync_reply_inbound_list_is_rejected() {
        let mut buf = BytesMut::new();
        // Header claims three inbound peers, body carries one.
        buf.put_u32_le(1 + 8 + 8 + 4 + 4);
        buf.put_u8(TAG_RESYNC_REPLY);
        buf.put_u64_le(9); // probe
        buf.put_u64_le(4); // revision
        buf.put_u32_le(3); // three peers claimed
        buf.put_u32_le(1); // only one present
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn frame_payload_length_is_validated() {
        let mut buf = BytesMut::new();
        // Claim a 10-byte payload but provide none.
        let body_len = 1 + 4 + 4 + 1 + 8 + 8 + 4;
        buf.put_u32_le(body_len as u32);
        buf.put_u8(TAG_FRAME);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u8(0); // quality rung
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(10);
        assert_eq!(decode(&mut buf), Err(WireError::Truncated));
    }
}
