//! Property tests for the wire protocol: encode → decode round-trips over
//! the **full** [`Message`] enum (including every control message of the
//! process-separable RP redesign), incremental-decode behavior on
//! arbitrary prefixes, and truncation/oversize fuzzing.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use teeve_net::wire::{decode, encode, Message, StreamDelivery, WireError, MAX_MESSAGE_BYTES};
use teeve_pubsub::{ForwardingEntry, SitePlan};
use teeve_types::{SiteId, StreamId};

fn arb_site() -> impl Strategy<Value = SiteId> {
    (0u32..512).prop_map(SiteId::new)
}

fn arb_stream() -> impl Strategy<Value = StreamId> {
    (0u32..512, 0u32..16).prop_map(|(origin, local)| StreamId::new(SiteId::new(origin), local))
}

fn arb_entry() -> impl Strategy<Value = ForwardingEntry> {
    (
        arb_stream(),
        (0u32..2, arb_site()),
        proptest::collection::vec(arb_site(), 0..5usize),
    )
        .prop_map(|(stream, (has_parent, parent), children)| ForwardingEntry {
            stream,
            parent: (has_parent == 1).then_some(parent),
            children,
        })
}

fn arb_site_plan() -> impl Strategy<Value = SitePlan> {
    (
        arb_site(),
        proptest::collection::vec(arb_entry(), 0..6usize),
    )
        .prop_map(|(site, entries)| SitePlan { site, entries })
}

fn arb_addr() -> impl Strategy<Value = std::net::SocketAddr> {
    (any::<bool>(), 0u64..u64::MAX, 1u16..u16::MAX).prop_map(|(v6, ip, port)| {
        if v6 {
            std::net::SocketAddr::new(
                std::net::IpAddr::V6(std::net::Ipv6Addr::from(u128::from(ip) << 17 | 1)),
                port,
            )
        } else {
            std::net::SocketAddr::new(
                std::net::IpAddr::V4(std::net::Ipv4Addr::from(ip as u32)),
                port,
            )
        }
    })
}

fn arb_delivery() -> impl Strategy<Value = StreamDelivery> {
    (arb_stream(), 0u64..u64::MAX, 0u64..u64::MAX).prop_map(
        |(stream, delivered, latency_sum_micros)| StreamDelivery {
            stream,
            delivered,
            latency_sum_micros,
        },
    )
}

/// Uniformly draws one of the 16 protocol messages with arbitrary field
/// values.
fn arb_message() -> impl Strategy<Value = Message> {
    (
        (0usize..16, arb_site(), arb_stream(), arb_addr()),
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        proptest::collection::vec(0u8..255, 0..64usize),
        (
            arb_site_plan(),
            proptest::collection::vec(arb_delivery(), 0..8usize),
            0u32..65_536,
        ),
    )
        .prop_map(
            |((variant, site, stream, addr), (a, b, c), payload, (site_plan, streams, small))| {
                match variant {
                    0 => Message::Hello { site },
                    1 => Message::Frame {
                        stream,
                        seq: a,
                        captured_micros: b,
                        payload: Bytes::from(payload),
                    },
                    2 => Message::Bye,
                    3 => Message::End { stream },
                    4 => Message::Reconfigure {
                        revision: a,
                        site_plan,
                    },
                    5 => Message::Ack { revision: a },
                    6 => Message::Attach,
                    7 => Message::OpenLink { child: site, addr },
                    8 => Message::CloseLink { child: site },
                    9 => Message::LinkUp { peer: site },
                    10 => Message::LinkDown { peer: site },
                    11 => Message::Publish {
                        stream,
                        base_seq: a,
                        frames: b,
                        payload_bytes: small,
                        interval_micros: c,
                    },
                    12 => Message::BatchDone {
                        stream,
                        next_seq: a,
                    },
                    13 => Message::StatsRequest { probe: a },
                    14 => Message::StatsReport {
                        probe: a,
                        total: b,
                        max_latency_micros: c,
                        streams,
                    },
                    _ => Message::Shutdown,
                }
            },
        )
}

proptest! {
    /// Every message round-trips exactly, consuming its full encoding.
    #[test]
    fn every_message_roundtrips(message in arb_message()) {
        let mut buf = BytesMut::new();
        encode(&message, &mut buf);
        let decoded = decode(&mut buf);
        prop_assert_eq!(decoded, Ok(Some(message)));
        prop_assert!(buf.is_empty(), "decoder must consume the full message");
    }

    /// Feeding any strict prefix of an encoding yields "need more bytes",
    /// never an error or a phantom message.
    #[test]
    fn strict_prefixes_decode_to_none(message in arb_message(), cut in 1usize..64) {
        let mut full = BytesMut::new();
        encode(&message, &mut full);
        let keep = full.len() - cut.min(full.len() - 1).max(1);
        let mut partial = BytesMut::from(&full[..keep]);
        prop_assert_eq!(decode(&mut partial), Ok(None));
    }

    /// A length prefix understating the body (the frame cut mid-message
    /// by a corrupt sender) is rejected as an error, never silently
    /// decoded.
    #[test]
    fn understated_lengths_are_rejected(message in arb_message(), cut in 1usize..64) {
        let mut full = BytesMut::new();
        encode(&message, &mut full);
        let length = u32::from_le_bytes([full[0], full[1], full[2], full[3]]) as usize;
        let cut = cut.min(length - 1).max(1);
        let shortened = length - cut;
        let mut corrupt = BytesMut::new();
        corrupt.extend_from_slice(&(shortened as u32).to_le_bytes());
        corrupt.extend_from_slice(&full[4..4 + shortened]);
        let result = decode(&mut corrupt);
        prop_assert!(
            matches!(result, Err(WireError::Truncated | WireError::BadAddress)),
            "cut of {cut} bytes must error, got {result:?}"
        );
    }

    /// A length prefix beyond the protocol maximum is rejected before any
    /// allocation.
    #[test]
    fn oversized_lengths_are_rejected(excess in 1usize..1_000_000) {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&((MAX_MESSAGE_BYTES + excess) as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        prop_assert!(matches!(
            decode(&mut buf),
            Err(WireError::Oversized { .. })
        ));
    }

    /// Back-to-back encodings decode in order from one buffer, exactly as
    /// a socket reader sees them.
    #[test]
    fn message_streams_decode_in_order(messages in proptest::collection::vec(arb_message(), 1..8usize)) {
        let mut buf = BytesMut::new();
        for message in &messages {
            encode(message, &mut buf);
        }
        for message in &messages {
            let decoded = decode(&mut buf);
            prop_assert_eq!(decoded, Ok(Some(message.clone())));
        }
        prop_assert_eq!(decode(&mut buf), Ok(None));
        prop_assert!(buf.is_empty());
    }
}
