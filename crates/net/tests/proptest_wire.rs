//! Property tests for the wire protocol: encode → decode round-trips over
//! the **full** [`Message`] enum (including every control message of the
//! process-separable RP redesign), incremental-decode behavior on
//! arbitrary prefixes, and truncation/oversize fuzzing.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use teeve_net::wire::{decode, encode, Message, StreamDelivery, WireError, MAX_MESSAGE_BYTES};
use teeve_pubsub::{ChildLink, ForwardingEntry, SitePlan};
use teeve_types::{Quality, SiteId, StreamId};

fn arb_site() -> impl Strategy<Value = SiteId> {
    (0u32..512).prop_map(SiteId::new)
}

fn arb_stream() -> impl Strategy<Value = StreamId> {
    (0u32..512, 0u32..16).prop_map(|(origin, local)| StreamId::new(SiteId::new(origin), local))
}

fn arb_quality() -> impl Strategy<Value = Quality> {
    (0u8..8).prop_map(Quality::new)
}

fn arb_child() -> impl Strategy<Value = ChildLink> {
    (arb_site(), arb_quality()).prop_map(|(site, quality)| ChildLink { site, quality })
}

fn arb_entry() -> impl Strategy<Value = ForwardingEntry> {
    (
        arb_stream(),
        (0u32..2, arb_site()),
        proptest::collection::vec(arb_child(), 0..5usize),
        arb_quality(),
    )
        .prop_map(
            |(stream, (has_parent, parent), children, quality)| ForwardingEntry {
                stream,
                parent: (has_parent == 1).then_some(parent),
                children,
                quality,
            },
        )
}

fn arb_site_plan() -> impl Strategy<Value = SitePlan> {
    (
        arb_site(),
        proptest::collection::vec(arb_entry(), 0..6usize),
    )
        .prop_map(|(site, entries)| SitePlan { site, entries })
}

fn arb_addr() -> impl Strategy<Value = std::net::SocketAddr> {
    (any::<bool>(), 0u64..u64::MAX, 1u16..u16::MAX).prop_map(|(v6, ip, port)| {
        if v6 {
            std::net::SocketAddr::new(
                std::net::IpAddr::V6(std::net::Ipv6Addr::from(u128::from(ip) << 17 | 1)),
                port,
            )
        } else {
            std::net::SocketAddr::new(
                std::net::IpAddr::V4(std::net::Ipv4Addr::from(ip as u32)),
                port,
            )
        }
    })
}

fn arb_delivery() -> impl Strategy<Value = StreamDelivery> {
    (
        (arb_stream(), 0u64..u64::MAX),
        (0u64..u64::MAX, 0u64..u64::MAX),
        proptest::collection::vec(any::<u64>(), 0..12usize),
    )
        .prop_map(
            |((stream, delivered), (delivered_degraded, latency_sum_micros), samples)| {
                // The histogram is built from real recorded samples (its
                // sparse wire form only represents reachable states); the
                // scalar latency sum stays independent, as on a live RP
                // whose counters saturate differently.
                let mut latency = teeve_telemetry::LogHistogram::new();
                for sample in samples {
                    latency.record(sample);
                }
                StreamDelivery {
                    stream,
                    delivered,
                    delivered_degraded,
                    latency_sum_micros,
                    latency,
                }
            },
        )
}

/// Uniformly draws one of the 18 protocol messages with arbitrary field
/// values.
fn arb_message() -> impl Strategy<Value = Message> {
    (
        (0usize..18, arb_site(), arb_stream(), arb_addr()),
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        proptest::collection::vec(0u8..255, 0..64usize),
        (
            arb_site_plan(),
            proptest::collection::vec(arb_delivery(), 0..8usize),
            0u32..65_536,
            arb_quality(),
        ),
    )
        .prop_map(
            |(
                (variant, site, stream, addr),
                (a, b, c),
                payload,
                (site_plan, streams, small, quality),
            )| {
                match variant {
                    0 => Message::Hello { site },
                    1 => Message::Frame {
                        stream,
                        quality,
                        seq: a,
                        captured_micros: b,
                        payload: Bytes::from(payload),
                    },
                    2 => Message::Bye,
                    3 => Message::End { stream },
                    4 => Message::Reconfigure {
                        revision: a,
                        site_plan,
                    },
                    5 => Message::Ack { revision: a },
                    6 => Message::Attach,
                    7 => Message::OpenLink { child: site, addr },
                    8 => Message::CloseLink { child: site },
                    9 => Message::LinkUp { peer: site },
                    10 => Message::LinkDown { peer: site },
                    11 => Message::Publish {
                        stream,
                        base_seq: a,
                        frames: b,
                        payload_bytes: small,
                        interval_micros: c,
                    },
                    12 => Message::BatchDone {
                        stream,
                        next_seq: a,
                    },
                    13 => Message::StatsRequest { probe: a },
                    14 => Message::StatsReport {
                        probe: a,
                        total: b,
                        max_latency_micros: c,
                        streams,
                    },
                    15 => Message::ResyncQuery { probe: a },
                    16 => Message::ResyncReply {
                        probe: a,
                        revision: b,
                        // Reuse the drawn site plan's child links as an
                        // arbitrary inbound peer set.
                        inbound: site_plan
                            .entries
                            .iter()
                            .flat_map(|e| e.children.iter().map(|c| c.site))
                            .collect(),
                    },
                    _ => Message::Shutdown,
                }
            },
        )
}

proptest! {
    /// Every message round-trips exactly, consuming its full encoding.
    #[test]
    fn every_message_roundtrips(message in arb_message()) {
        let mut buf = BytesMut::new();
        encode(&message, &mut buf);
        let decoded = decode(&mut buf);
        prop_assert_eq!(decoded, Ok(Some(message)));
        prop_assert!(buf.is_empty(), "decoder must consume the full message");
    }

    /// Feeding any strict prefix of an encoding yields "need more bytes",
    /// never an error or a phantom message.
    #[test]
    fn strict_prefixes_decode_to_none(message in arb_message(), cut in 1usize..64) {
        let mut full = BytesMut::new();
        encode(&message, &mut full);
        let keep = full.len() - cut.min(full.len() - 1).max(1);
        let mut partial = BytesMut::from(&full[..keep]);
        prop_assert_eq!(decode(&mut partial), Ok(None));
    }

    /// A length prefix understating the body (the frame cut mid-message
    /// by a corrupt sender) is rejected as an error, never silently
    /// decoded.
    #[test]
    fn understated_lengths_are_rejected(message in arb_message(), cut in 1usize..64) {
        let mut full = BytesMut::new();
        encode(&message, &mut full);
        let length = u32::from_le_bytes([full[0], full[1], full[2], full[3]]) as usize;
        let cut = cut.min(length - 1).max(1);
        let shortened = length - cut;
        let mut corrupt = BytesMut::new();
        corrupt.extend_from_slice(&(shortened as u32).to_le_bytes());
        corrupt.extend_from_slice(&full[4..4 + shortened]);
        let result = decode(&mut corrupt);
        prop_assert!(
            matches!(result, Err(WireError::Truncated | WireError::BadAddress)),
            "cut of {cut} bytes must error, got {result:?}"
        );
    }

    /// A length prefix beyond the protocol maximum is rejected before any
    /// allocation.
    #[test]
    fn oversized_lengths_are_rejected(excess in 1usize..1_000_000) {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&((MAX_MESSAGE_BYTES + excess) as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        prop_assert!(matches!(
            decode(&mut buf),
            Err(WireError::Oversized { .. })
        ));
    }

    /// Quality-only plan deltas survive the wire codec: re-stamping rung
    /// assignments on a fixed forest yields a delta that is provably
    /// socket-free, and pushing the target tables through
    /// `Reconfigure` encode → decode reproduces them bit-for-bit —
    /// including every quality rung — so a live fleet converges on
    /// exactly the re-stamped plan.
    #[test]
    fn quality_only_deltas_roundtrip_through_the_codec(
        rungs in proptest::collection::vec(0u8..3, 1..16usize),
    ) {
        use teeve_overlay::{OverlayManager, ProblemInstance};
        use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
        use teeve_types::{CostMatrix, CostMs, Degree};

        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let mut builder = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(8))
            .streams_per_site(&[2, 1, 0, 0]);
        for (subscriber, origin, local) in
            [(1, 0, 0), (2, 0, 0), (3, 0, 0), (1, 0, 1), (2, 1, 0), (3, 1, 0)]
        {
            builder = builder.subscribe(
                SiteId::new(subscriber),
                StreamId::new(SiteId::new(origin), local),
            );
        }
        let problem = builder.build().expect("valid universe");
        let mut manager = OverlayManager::new(problem.clone());
        for request in problem.requests() {
            manager.subscribe(request.subscriber, request.stream).unwrap();
        }
        let before = DisseminationPlan::from_forest(
            &problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        );

        // Re-stamp delivered entries with the drawn rungs (cycled).
        let mut after = before.clone();
        let mut draws = rungs.iter().copied().cycle();
        for site in (0..4).map(SiteId::new) {
            for stream in before.deliveries_to(site) {
                let rung = draws.next().expect("cycled");
                after.set_quality(site, stream, Quality::new(rung));
            }
        }
        after.set_revision(before.revision() + 1);
        let delta = PlanDelta::diff(&before, &after);
        if delta.is_empty() {
            return Ok(()); // every draw was rung 0: nothing to move
        }
        prop_assert!(delta.is_quality_only());
        // Receiver-side rung moves are reported once each; the parent-side
        // ChildLink mirror rides in the same delta without double counting.
        prop_assert!(!delta.quality_changes().is_empty());
        prop_assert!(delta.quality_changes().len() <= delta.len());

        // Every touched table round-trips through the wire bit-for-bit.
        for &site in &delta.touched_sites() {
            let message = Message::Reconfigure {
                revision: delta.to_revision(),
                site_plan: after.site_plan(site).clone(),
            };
            let mut buf = BytesMut::new();
            encode(&message, &mut buf);
            prop_assert_eq!(decode(&mut buf), Ok(Some(message)));
        }

        // And applying the delta reproduces the re-stamped plan exactly.
        let mut patched = before.clone();
        delta.apply(&mut patched).unwrap();
        prop_assert_eq!(patched, after);
    }

    /// The incremental decoder is split-invariant: feeding an encoded
    /// message stream in arbitrary chunk sizes — exactly how a reactor
    /// read loop buffers whatever the kernel returns — yields the same
    /// message sequence as decoding the whole buffer at once. This is
    /// the property that makes reactor-hosted RPs protocol-identical to
    /// threaded ones regardless of TCP segmentation.
    #[test]
    fn chunked_decoding_is_split_invariant(
        messages in proptest::collection::vec(arb_message(), 1..6usize),
        splits in proptest::collection::vec(1usize..97, 1..32usize),
    ) {
        let mut wire = BytesMut::new();
        for message in &messages {
            encode(message, &mut wire);
        }
        let wire = wire.freeze();

        // Reference: one decode pass over the complete buffer.
        let mut whole_buf = BytesMut::from(&wire[..]);
        let mut whole = Vec::new();
        while let Some(message) = decode(&mut whole_buf).expect("valid stream") {
            whole.push(message);
        }
        prop_assert_eq!(whole.len(), messages.len());

        // Incremental: drive the same bytes in drawn-size chunks
        // (cycled), draining every complete message after each chunk.
        let mut chunked = Vec::new();
        let mut buf = BytesMut::new();
        let mut cursor = 0usize;
        let mut sizes = splits.iter().copied().cycle();
        while cursor < wire.len() {
            let take = sizes.next().expect("cycled").min(wire.len() - cursor);
            buf.extend_from_slice(&wire[cursor..cursor + take]);
            cursor += take;
            loop {
                match decode(&mut buf) {
                    Ok(Some(message)) => chunked.push(message),
                    Ok(None) => break,
                    Err(e) => prop_assert!(false, "chunked decode error {e:?}"),
                }
            }
        }
        prop_assert_eq!(chunked, whole);
        prop_assert!(buf.is_empty(), "no residual bytes after the stream");
    }

    /// Corrupt-input parity across feeding disciplines: a byte stream
    /// the whole-buffer decoder rejects is rejected identically by the
    /// chunked decoder (same error, no phantom messages first), so a
    /// reactor-hosted RP drops a corrupt link exactly where a threaded
    /// one does.
    #[test]
    fn chunked_decoding_rejects_the_same_corrupt_streams(
        message in arb_message(),
        cut in 1usize..64,
        splits in proptest::collection::vec(1usize..13, 1..8usize),
    ) {
        // Corrupt by understating the length prefix, as in
        // `understated_lengths_are_rejected`.
        let mut full = BytesMut::new();
        encode(&message, &mut full);
        let length = u32::from_le_bytes([full[0], full[1], full[2], full[3]]) as usize;
        let cut = cut.min(length - 1).max(1);
        let shortened = length - cut;
        let mut corrupt = Vec::new();
        corrupt.extend_from_slice(&(shortened as u32).to_le_bytes());
        corrupt.extend_from_slice(&full[4..4 + shortened]);

        let mut whole_buf = BytesMut::from(&corrupt[..]);
        let whole_err = match decode(&mut whole_buf) {
            Err(e) => e,
            other => return Err(TestCaseError::fail(
                format!("corrupt stream must error whole, got {other:?}"),
            )),
        };

        let mut buf = BytesMut::new();
        let mut cursor = 0usize;
        let mut sizes = splits.iter().copied().cycle();
        let mut chunked_err = None;
        'feed: while cursor < corrupt.len() {
            let take = sizes.next().expect("cycled").min(corrupt.len() - cursor);
            buf.extend_from_slice(&corrupt[cursor..cursor + take]);
            cursor += take;
            loop {
                match decode(&mut buf) {
                    Ok(Some(phantom)) => prop_assert!(
                        false,
                        "chunked decode produced a phantom message {phantom:?}"
                    ),
                    Ok(None) => break,
                    Err(e) => {
                        chunked_err = Some(e);
                        break 'feed;
                    }
                }
            }
        }
        prop_assert_eq!(chunked_err, Some(whole_err));
    }

    /// Back-to-back encodings decode in order from one buffer, exactly as
    /// a socket reader sees them.
    #[test]
    fn message_streams_decode_in_order(messages in proptest::collection::vec(arb_message(), 1..8usize)) {
        let mut buf = BytesMut::new();
        for message in &messages {
            encode(message, &mut buf);
        }
        for message in &messages {
            let decoded = decode(&mut buf);
            prop_assert_eq!(decoded, Ok(Some(message.clone())));
        }
        prop_assert_eq!(decode(&mut buf), Ok(None));
        prop_assert!(buf.is_empty());
    }
}
