//! End-to-end churn-trace test for the closed adaptation loop: a live
//! TCP fleet under bandwidth pressure.
//!
//! The acceptance path of the degrade-don't-reject redesign, on real
//! sockets:
//!
//! 1. a `SessionRuntime` epoch establishes FOV demand and a `LiveCluster`
//!    executes the resulting plan;
//! 2. a bandwidth-pressure epoch (only a `BandwidthSample` event) emits a
//!    **quality-only** `PlanDelta`;
//! 3. the running fleet applies it with **zero** sockets opened or
//!    closed;
//! 4. frames published afterwards are delivered at the degraded rungs
//!    with exact per-(site, stream) accounting;
//! 5. runtime metrics report the pressured subscriptions as
//!    `served_degraded` — not dropped — and delta ≡ rebuild equivalence
//!    holds with the quality stamps included.

use std::time::Duration;

use teeve_net::{ClusterConfig, LiveCluster};
use teeve_pubsub::{subscription_universe, DisseminationPlan, Session};
use teeve_runtime::{RuntimeConfig, RuntimeEvent, SessionRuntime, TraceConfig};
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};

fn quick_config() -> ClusterConfig {
    ClusterConfig {
        frames_per_stream: 3,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    }
}

#[test]
fn socket_quality_only_delta_drives_a_live_fleet_without_socket_churn() {
    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(10))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    // Epoch 0: site 0's display watches site 1 — top-FOV streams, all at
    // full quality. Launch the live fleet on that plan.
    let setup = runtime.apply_epoch(&[RuntimeEvent::Viewpoint {
        display: DisplayId::new(SiteId::new(0), 0),
        target: SiteId::new(1),
    }]);
    assert!(setup.report.accepted >= 2);
    assert_eq!(setup.report.served_degraded, 0);
    let streams = runtime.plan().deliveries_to(SiteId::new(0));
    assert!(streams.len() >= 2, "need several streams under pressure");

    let base = runtime.plan().clone();
    let mut cluster = LiveCluster::launch(&base, &quick_config()).expect("launch");
    cluster.publish(3).expect("full-quality batch");
    assert_eq!(cluster.connections_opened(), 0);

    // Epoch 1: bandwidth pressure at site 0 — 12 Mbps cannot carry the
    // demand at full 8 Mbps rungs. No membership churn, so the emitted
    // delta must move only quality.
    let pressured = runtime.apply_epoch(&[RuntimeEvent::BandwidthSample {
        site: SiteId::new(0),
        bits_per_sec: 12_000_000.0,
    }]);
    assert!(pressured.delta.is_quality_only(), "no structural changes");
    assert!(!pressured.delta.quality_changes().is_empty());
    // Degrade, don't reject: everything is still served, below full.
    assert_eq!(pressured.report.dropped_subscriptions, 0);
    assert!(pressured.report.served_degraded > 0);
    assert_eq!(
        runtime.plan().deliveries_to(SiteId::new(0)).len(),
        streams.len(),
        "no subscription was lost to the pressure"
    );

    // Delta ≡ rebuild equivalence, quality stamps included.
    let mut shadow = base.clone();
    pressured.delta.apply(&mut shadow).expect("delta applies");
    assert_eq!(&shadow, runtime.plan(), "shadow diverged from runtime");
    let mut rebuilt = DisseminationPlan::from_forest(
        runtime.universe(),
        &runtime.forest_snapshot(),
        runtime.session().profile(),
    );
    rebuilt.set_revision(shadow.revision());
    for site in SiteId::all(4) {
        for stream in rebuilt.deliveries_to(site) {
            rebuilt.set_quality(site, stream, runtime.quality_of(site, stream));
        }
    }
    assert_eq!(shadow, rebuilt, "delta ≡ rebuild with quality stamps");

    // The live fleet applies the quality-only delta with zero sockets
    // opened or closed — pure `Reconfigure`/`Ack` traffic.
    let report = cluster.apply_delta(&pressured.delta).expect("live apply");
    assert!(report.is_socket_free());
    assert!(report.established.is_empty() && report.closed.is_empty());
    assert!(report.quality_changes > 0);
    assert_eq!(cluster.connections_opened(), 0);
    assert_eq!(cluster.connections_closed(), 0);
    assert_eq!(cluster.revision(), runtime.plan().revision());

    // Frames published now are delivered at the degraded rungs, with
    // exact accounting: 3 full-quality frames from the first batch, 4
    // degraded ones from the second, per stream.
    cluster.publish(4).expect("degraded batch");
    let final_report = cluster.shutdown();
    assert_eq!(final_report.final_revision, runtime.plan().revision());
    for &stream in &streams {
        let key = (SiteId::new(0), stream);
        assert_eq!(final_report.delivered[&key], 3 + 4, "all frames arrive");
        let quality = runtime.plan().quality_of(SiteId::new(0), stream).unwrap();
        let expected_degraded = if quality.is_full() { 0 } else { 4 };
        assert_eq!(
            final_report.delivered_degraded[&key], expected_degraded,
            "{stream} must be accounted at rung {quality}"
        );
    }
    // The 12 Mbps budget genuinely forced degradation somewhere.
    assert!(streams.iter().any(|&s| !runtime
        .plan()
        .quality_of(SiteId::new(0), s)
        .unwrap()
        .is_full()));
}

#[test]
fn socket_churn_trace_with_pressure_keeps_fleet_and_runtime_in_lockstep() {
    // A longer seeded churn trace — retargets, clears, bandwidth samples
    // (weighted up) — driven epoch by epoch into a live TCP fleet via
    // `drive_epochs`: every delta (structural, quality-only, or mixed)
    // must apply to running RPs, and per-epoch revisions stay in
    // lock-step.
    use rand::SeedableRng;

    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + ((i * 5 + j) % 4) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(8))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    let trace = TraceConfig {
        epochs: 8,
        events_per_epoch: 3,
        retarget_weight: 4,
        clear_weight: 1,
        leave_weight: 0,
        join_weight: 0,
        bandwidth_weight: 4,
    }
    .generate(4, 1, &mut rand_chacha::ChaCha8Rng::seed_from_u64(2008));

    let mut cluster = LiveCluster::launch(runtime.plan(), &quick_config()).expect("launch");
    let outcomes = runtime
        .drive_epochs(&trace, &mut cluster)
        .expect("every delta applies to the live fleet");
    assert_eq!(outcomes.len(), trace.len());
    assert_eq!(cluster.revision(), runtime.plan().revision());
    assert_eq!(cluster.plan(), runtime.plan(), "fleet state in lock-step");

    // Deliver one final batch on whatever the trace converged to, then
    // confirm the quality accounting matches the final plan.
    let deliveries: usize = (0..4)
        .map(|s| runtime.plan().deliveries_to(SiteId::new(s as u32)).len())
        .sum();
    if deliveries > 0 {
        cluster.publish(2).expect("final batch");
    }
    let report = cluster.shutdown();
    for ((site, stream), &degraded) in &report.delivered_degraded {
        if degraded == 0 {
            continue;
        }
        // Quality is monotone along a path: a degraded delivery needs a
        // degraded plan entry at the receiver *or somewhere upstream*
        // (a degraded relay forwards frames already sized down).
        let plan = runtime.plan();
        let mut cursor = Some(*site);
        let mut explained = false;
        while let Some(at) = cursor {
            let entry = plan.site_plan(at).entry(*stream).expect("path entry");
            if !entry.quality.is_full() {
                explained = true;
                break;
            }
            cursor = entry.parent;
        }
        assert!(
            explained,
            "degraded frames at {site}/{stream} with a fully-full path"
        );
    }
}
