//! Hosting-mode parity: a reactor-hosted fleet must be bit-identical to
//! the thread-per-connection fleet in everything the coordinator can
//! observe.
//!
//! Both hosting modes speak the same wire protocol and forward through
//! the same per-rung frame encoder, so a seeded churn trace — retargets,
//! clears, bandwidth pressure — driven into both must produce the same
//! delivery accounting, the same link churn counts, and the same final
//! revision. Latency distributions are exempt (they measure the host's
//! scheduling, not the protocol).

use std::time::Duration;

use rand::SeedableRng;
use teeve_net::{ClusterConfig, ClusterReport, LiveCluster, Reactor};
use teeve_pubsub::{subscription_universe, Session};
use teeve_runtime::{RuntimeConfig, SessionRuntime, TraceConfig};
use teeve_types::{CostMatrix, CostMs, Degree};

fn quick_config() -> ClusterConfig {
    ClusterConfig {
        frames_per_stream: 3,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    }
}

/// Runs the one seeded churn trace on a fresh fleet — threaded when
/// `reactor` is `None`, event-driven otherwise — and returns the final
/// report. Everything upstream of the sockets (session, trace, deltas)
/// is deterministic from the seed, so two calls see identical inputs.
fn churned_report(reactor: Option<&Reactor>) -> ClusterReport {
    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + ((i * 5 + j) % 4) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(8))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();
    let trace = TraceConfig {
        epochs: 6,
        events_per_epoch: 3,
        retarget_weight: 4,
        clear_weight: 1,
        leave_weight: 0,
        join_weight: 0,
        bandwidth_weight: 3,
    }
    .generate(4, 1, &mut rand_chacha::ChaCha8Rng::seed_from_u64(2008));

    let mut cluster = match reactor {
        Some(reactor) => LiveCluster::launch_reactor(runtime.plan(), &quick_config(), reactor)
            .expect("reactor launch"),
        None => LiveCluster::launch(runtime.plan(), &quick_config()).expect("threaded launch"),
    };
    runtime
        .drive_epochs(&trace, &mut cluster)
        .expect("every delta applies to the live fleet");
    assert_eq!(cluster.revision(), runtime.plan().revision());
    cluster.publish(3).expect("final batch delivers");
    cluster.shutdown()
}

#[test]
fn socket_reactor_fleet_matches_threaded_delivery_accounting() {
    let threaded = churned_report(None);
    let reactor = Reactor::new(2).expect("reactor starts");
    let evented = churned_report(Some(&reactor));

    // The protocol-visible outcome must be bit-identical across hosting
    // modes: per-(site, stream) delivery and degradation counts, the
    // reconfiguration-driven socket churn, and the final revision.
    assert_eq!(evented.delivered, threaded.delivered, "delivery counts");
    assert_eq!(
        evented.delivered_degraded, threaded.delivered_degraded,
        "degradation accounting"
    );
    assert_eq!(evented.final_revision, threaded.final_revision);
    assert_eq!(evented.connections_opened, threaded.connections_opened);
    assert_eq!(evented.connections_closed, threaded.connections_closed);
    // Graceful runs harvest every RP's stats in both modes.
    assert_eq!(threaded.missing_reports, 0);
    assert_eq!(evented.missing_reports, 0);
    // The trace genuinely exercised the protocol: frames flowed and
    // reconfigurations opened links.
    assert!(threaded.total_delivered() > 0, "trace must deliver frames");
    assert!(
        threaded.connections_opened > 0,
        "trace must churn the overlay"
    );

    // The reactor fleet shut down clean: no RPs left registered.
    assert_eq!(
        reactor.telemetry().gauge("reactor.nodes.registered").get(),
        0
    );
    reactor.shutdown();
}
