//! Coordinator crash/reconnect acceptance on real sockets: an 8-site
//! fleet survives losing its coordinator mid-churn.
//!
//! 1. a live fleet is driven through a publish + quality-churn + publish
//!    sequence, then its coordinator dies (`detach` — control
//!    connections drop, no `Shutdown` cascades);
//! 2. every RP notices (`CoordinatorLost`) and keeps forwarding by its
//!    last-dictated table: frames hand-published during the gap deliver
//!    across the whole dissemination subtree;
//! 3. a reconnect with a *stale* plan is refused — re-dictating it would
//!    rewind the fleet's ack barrier — and leaves the fleet untouched;
//! 4. a reconnect with the latest recovered plan resyncs: its first
//!    dictation is the re-dictation of the latest revision, no RP's
//!    table revision ever regresses, and no data socket is touched;
//! 5. post-resync publishes account exactly — the gap deliveries were
//!    baselined at the barrier — and the final cumulative per-(site,
//!    stream) counts are exact across the coordinator kill.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use teeve_net::wire::{decode, encode, Message};
use teeve_net::{ClusterConfig, ClusterError, Coordinator, RpNode, RpNodeHandle};
use teeve_pubsub::{subscription_universe, Session};
use teeve_runtime::{RuntimeConfig, RuntimeEvent, SessionRuntime};
use teeve_telemetry::FlightEventKind;
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};

const SITES: usize = 8;

/// A bare control client: the minimum needed to stand in for a
/// coordinator against one RP (drive a gap publish, poll stats) without
/// any coordinator state.
struct RawControl {
    conn: TcpStream,
    buf: BytesMut,
}

impl RawControl {
    fn attach(addr: SocketAddr) -> RawControl {
        let conn = TcpStream::connect(addr).expect("raw control connect");
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(Some(Duration::from_millis(50))).ok();
        let mut raw = RawControl {
            conn,
            buf: BytesMut::new(),
        };
        raw.send(&Message::Attach);
        raw
    }

    fn send(&mut self, message: &Message) {
        let mut out = BytesMut::new();
        encode(message, &mut out);
        self.conn.write_all(&out).expect("raw control write");
    }

    fn wait<T>(&mut self, what: &str, mut pred: impl FnMut(&Message) -> Option<T>) -> T {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut chunk = [0u8; 64 * 1024];
        loop {
            while let Some(message) = decode(&mut self.buf).expect("decodable control traffic") {
                if let Some(found) = pred(&message) {
                    return found;
                }
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            match self.conn.read(&mut chunk) {
                Ok(0) => panic!("control channel closed waiting for {what}"),
                Ok(read) => self.buf.extend_from_slice(&chunk[..read]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => panic!("control read failed waiting for {what}: {e}"),
            }
        }
    }
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn recorded(node: &RpNodeHandle, pred: impl Fn(&FlightEventKind) -> bool) -> bool {
    node.flight_recorder()
        .events()
        .iter()
        .any(|e| pred(&e.kind))
}

#[test]
fn socket_fleet_survives_coordinator_kill_and_resyncs_exactly() {
    let costs = CostMatrix::from_fn(SITES, |i, j| CostMs::new(3 + ((i * 3 + j) % 4) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(10))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    // Epoch 0: a ring of viewpoints — every site's display watches its
    // successor, so all 8 sites both originate and receive streams.
    let ring: Vec<RuntimeEvent> = (0..SITES as u32)
        .map(|s| RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(s), 0),
            target: SiteId::new((s + 1) % SITES as u32),
        })
        .collect();
    let setup = runtime.apply_epoch(&ring);
    assert!(setup.report.accepted >= SITES, "ring demand must admit");
    let base = runtime.plan().clone();

    let mut nodes = Vec::new();
    let mut addrs = Vec::new();
    for s in SiteId::all(SITES) {
        let node = RpNode::bind(s, Duration::from_millis(200)).expect("bind");
        addrs.push(node.local_addr());
        nodes.push(node.spawn());
    }
    let config = ClusterConfig {
        frames_per_stream: 3,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    };
    let mut coordinator = Coordinator::connect(&base, &addrs, &config).expect("connect");
    coordinator.publish(3).expect("pre-churn batch");

    // Mid-churn: bandwidth pressure at site 0 emits a quality-only delta
    // the live fleet applies, then another batch delivers degraded.
    let pressured = runtime.apply_epoch(&[RuntimeEvent::BandwidthSample {
        site: SiteId::new(0),
        bits_per_sec: 12_000_000.0,
    }]);
    assert!(
        pressured.delta.is_quality_only(),
        "pressure moves only rungs"
    );
    let applied = coordinator
        .apply_delta(&pressured.delta)
        .expect("live apply");
    assert!(applied.is_socket_free());
    coordinator.publish(2).expect("mid-churn batch");
    let revision = runtime.plan().revision();
    assert_eq!(coordinator.revision(), revision);

    // The coordinator dies mid-run: control connections drop, nothing
    // else. Every RP notices the EOF and detaches its control channel.
    coordinator.detach();
    for node in &nodes {
        wait_until("RP notices the dead coordinator", || {
            recorded(node, |k| matches!(k, FlightEventKind::CoordinatorLost))
        });
    }

    // The headless fleet still delivers: hand-publish a batch at one
    // origin over a bare socket and watch it land at *every* site in the
    // stream's dissemination subtree, by their own stats.
    let receiver = SiteId::new(0);
    let stream = runtime.plan().deliveries_to(receiver)[0];
    let origin = stream.origin();
    let gap_frames = 4u64;
    let mut origin_ctl = RawControl::attach(addrs[origin.index()]);
    origin_ctl.send(&Message::Publish {
        stream,
        base_seq: 1_000,
        frames: gap_frames,
        payload_bytes: 512,
        interval_micros: 0,
    });
    origin_ctl.wait("gap batch completion", |m| match m {
        Message::BatchDone {
            stream: done,
            next_seq,
        } if *done == stream && *next_seq >= 1_000 + gap_frames => Some(()),
        _ => None,
    });
    drop(origin_ctl);
    let gap_goal = 3 + 2 + gap_frames; // both coordinated batches + the gap batch
    let mut probe = 10_000u64;
    for site in SiteId::all(SITES) {
        if !runtime.plan().deliveries_to(site).contains(&stream) {
            continue;
        }
        let mut ctl = RawControl::attach(addrs[site.index()]);
        loop {
            probe += 1;
            ctl.send(&Message::StatsRequest { probe });
            let sent = probe;
            let delivered = ctl.wait("gap stats report", |m| match m {
                Message::StatsReport {
                    probe: p, streams, ..
                } if *p >= sent => Some(
                    streams
                        .iter()
                        .find(|d| d.stream == stream)
                        .map_or(0, |d| d.delivered),
                ),
                _ => None,
            });
            if delivered >= gap_goal {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // A reconnect with a stale plan (the pre-pressure revision) is
    // refused: re-dictating it would rewind the barrier of the RPs that
    // already acked the pressure delta. The refusal detaches — the fleet
    // must survive it.
    match Coordinator::reconnect(&base, &addrs, &config) {
        Ok(_) => panic!("a stale reconnect plan must be refused"),
        Err(err) => assert!(
            matches!(err, ClusterError::Control { .. }),
            "refusal names the ahead RP: {err:?}"
        ),
    }

    // Reconnect with the latest dictated plan: resync rebuilds the view,
    // re-dictates `revision` as the barrier, touches no data socket.
    let mut reconnected =
        Coordinator::reconnect(runtime.plan(), &addrs, &config).expect("reconnect");
    assert_eq!(reconnected.revision(), revision);
    assert_eq!(reconnected.connections_opened(), 0, "resync opens nothing");
    assert_eq!(reconnected.connections_closed(), 0, "resync closes nothing");

    // The first dictation after reconnect is the re-dictation of the
    // latest revision — bracketed by ResyncStart/ResyncComplete, with no
    // other Reconfigure before it.
    let events = reconnected.flight_recorder().events();
    let start = events
        .iter()
        .position(|e| matches!(e.kind, FlightEventKind::ResyncStart))
        .expect("ResyncStart recorded");
    let dictation = events
        .iter()
        .position(
            |e| matches!(e.kind, FlightEventKind::Reconfigure { revision: r, .. } if r == revision),
        )
        .expect("re-dictation recorded");
    let complete = events
        .iter()
        .position(|e| {
            matches!(
                e.kind,
                FlightEventKind::ResyncComplete { sites, revision: r }
                    if sites == SITES as u64 && r == revision
            )
        })
        .expect("ResyncComplete recorded");
    assert!(start < dictation && dictation < complete);
    assert!(
        events[..dictation]
            .iter()
            .all(|e| !matches!(e.kind, FlightEventKind::Reconfigure { .. })),
        "nothing may be dictated before the barrier re-dictation"
    );
    let telemetry = reconnected.telemetry().snapshot();
    assert_eq!(telemetry.histograms["coordinator.resync_micros"].count(), 1);

    // RP side: every node served the resync query, and its sequence of
    // applied table revisions never regressed — the re-dictation lands
    // each node at the latest revision (nodes the quality delta never
    // touched catch up from the install revision here).
    for node in &nodes {
        assert!(recorded(node, |k| matches!(
            k,
            FlightEventKind::ResyncStart
        )));
        let revisions: Vec<u64> = node
            .flight_recorder()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FlightEventKind::Reconfigure { revision, .. } => Some(revision),
                _ => None,
            })
            .collect();
        assert!(
            revisions.windows(2).all(|w| w[0] <= w[1]),
            "table watermark regressed at {}: {revisions:?}",
            node.site()
        );
        assert_eq!(revisions.last(), Some(&revision), "barrier re-dictated");
    }

    // Post-resync delivery accounting is exact: the gap deliveries were
    // baselined at the barrier, so this publish blocks on exactly its
    // own frames — and the final cumulative per-(site, stream) counts
    // add up across the coordinator kill.
    reconnected.publish(2).expect("post-resync batch");
    let final_report = reconnected.shutdown();
    assert_eq!(final_report.missing_reports, 0, "all RPs survived the kill");
    assert_eq!(final_report.final_revision, revision);
    for site in SiteId::all(SITES) {
        for s in runtime.plan().deliveries_to(site) {
            let expected = 3 + 2 + 2 + if s == stream { gap_frames } else { 0 };
            assert_eq!(
                final_report.delivered[&(site, s)],
                expected,
                "exact accounting at {site}/{s} across the kill"
            );
        }
    }
    for node in nodes {
        node.stop();
        node.join();
    }
}
