//! End-to-end telemetry acceptance: one registry and flight recorder
//! observing a live TCP fleet through churn, runtime → coordinator →
//! wire.
//!
//! 1. a `SessionRuntime` with telemetry attached drives a `LiveCluster`
//!    through a seeded churn trace — its epoch-phase spans must sum to
//!    the recorded reconvergence times;
//! 2. delivery latency percentiles are read from the merged wire-carried
//!    histograms, and they agree with the scalar counters;
//! 3. a poisoned fleet dumps a non-empty flight-recorder JSON naming the
//!    failed reconfigure;
//! 4. a reactor-hosted fleet reports its hosting economics — live
//!    connection and registered-RP gauges, threads-per-RP amortization,
//!    wakeup batch sizes — and its lifecycle flight events.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_net::{ClusterConfig, Coordinator, LiveCluster, Reactor, RpNode};
use teeve_overlay::{OverlayManager, ProblemInstance};
use teeve_pubsub::{subscription_universe, DisseminationPlan, PlanDelta, Session, StreamProfile};
use teeve_runtime::{RuntimeConfig, SessionRuntime, TraceConfig};
use teeve_telemetry::{FlightRecorder, MetricsRegistry};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

#[test]
fn socket_telemetry_observes_a_churning_fleet_end_to_end() {
    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + ((i * 5 + j) % 4) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(8))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    // One registry + recorder observes the runtime across the whole run.
    let registry = MetricsRegistry::new();
    let recorder = FlightRecorder::new();
    runtime.attach_telemetry(&registry, recorder.clone());

    let trace = TraceConfig {
        epochs: 6,
        events_per_epoch: 3,
        retarget_weight: 4,
        clear_weight: 1,
        leave_weight: 0,
        join_weight: 0,
        bandwidth_weight: 3,
    }
    .generate(4, 1, &mut ChaCha8Rng::seed_from_u64(2008));

    let config = ClusterConfig {
        frames_per_stream: 3,
        payload_bytes: 512,
        frame_interval: Some(Duration::from_millis(2)),
        timeout: Duration::from_secs(20),
    };
    let mut cluster = LiveCluster::launch(runtime.plan(), &config).expect("launch");
    let outcomes = runtime
        .drive_epochs(&trace, &mut cluster)
        .expect("every delta applies to the live fleet");

    // (a) Epoch-phase spans sum to the recorded reconvergence, exactly
    // per epoch (the marks telescope)…
    for outcome in &outcomes {
        assert_eq!(
            outcome.report.phases.total(),
            outcome.report.reconverge,
            "phase spans must partition the epoch"
        );
    }
    // …and in the registry's histograms, up to one microsecond of
    // truncation per phase per epoch.
    let snapshot = registry.snapshot();
    let reconverge = &snapshot.histograms["runtime.reconverge_micros"];
    assert_eq!(reconverge.count(), outcomes.len() as u64);
    let phase_sum: u64 = [
        "runtime.phase.event_drain_micros",
        "runtime.phase.repair_micros",
        "runtime.phase.refit_micros",
        "runtime.phase.derive_micros",
        "runtime.phase.delta_micros",
    ]
    .iter()
    .map(|name| {
        let hist = &snapshot.histograms[*name];
        assert_eq!(hist.count(), outcomes.len() as u64, "{name} per epoch");
        hist.sum()
    })
    .sum();
    let drift = reconverge.sum().abs_diff(phase_sum);
    assert!(
        drift <= 5 * outcomes.len() as u64,
        "phase micros must sum to ~reconverge micros (drift {drift})"
    );

    // The coordinator recorded its own control-plane spans: at least the
    // initial install's Reconfigure→Ack round-trips, one per site.
    let coord = cluster.telemetry().snapshot();
    let rtt = &coord.histograms["coordinator.reconfigure_rtt_micros"];
    assert!(
        rtt.count() >= 4,
        "one RTT sample per initially installed RP"
    );
    assert!(!cluster.flight_recorder().is_empty());

    // (b) Publish a final paced batch, then read true delivery-latency
    // percentiles from the merged wire-carried histograms.
    let deliveries: usize = (0..4)
        .map(|s| runtime.plan().deliveries_to(SiteId::new(s)).len())
        .sum();
    assert!(deliveries > 0, "churned plan still delivers something");
    cluster.publish(3).expect("final batch");
    let report = cluster.shutdown();
    assert_eq!(report.missing_reports, 0, "healthy run loses no reports");

    let merged = report.merged_latency();
    assert_eq!(merged.count(), report.total_delivered());
    assert!(merged.max() > 0, "paced localhost latency is nonzero");
    assert_eq!(merged.max(), report.max_latency_micros);
    let (p50, p99) = (merged.p50(), merged.p99());
    assert!(p50 <= p99 && p99 <= merged.max());
    // Per-pair histograms agree with the scalar counters they ride with.
    for (key, hist) in &report.latency {
        assert_eq!(hist.count(), report.delivered[key]);
        assert_eq!(hist.sum(), report.latency_sum_micros[key]);
    }
}

#[test]
fn socket_reactor_telemetry_reports_hosting_economics() {
    // (d) A reactor observed by a caller-supplied registry + recorder:
    // while a fleet runs on it, the gauges report the hosting economics
    // the fleet-scale bench tracks; after teardown they read zero and
    // the recorder holds the lifecycle events.
    let registry = MetricsRegistry::new();
    let recorder = FlightRecorder::new();
    let reactor =
        Reactor::with_telemetry(2, registry.clone(), recorder.clone()).expect("reactor starts");
    assert_eq!(registry.gauge("reactor.threads").get(), 2);

    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
    let problem = ProblemInstance::builder(costs, CostMs::new(50))
        .symmetric_capacities(Degree::new(4))
        .streams_per_site(&[1, 0, 0])
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
        .build()
        .unwrap();
    let mut manager = OverlayManager::new(problem.clone());
    manager
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
        .unwrap();
    manager
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
        .unwrap();
    let plan = DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    let config = ClusterConfig {
        frames_per_stream: 3,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    };
    let mut cluster = LiveCluster::launch_reactor(&plan, &config, &reactor).expect("launch");

    // While the fleet is up: every RP registered, its control connection
    // (and any data links) live, and the thread amortization measured.
    // 3 RPs on 2 loop threads: 2000/3 = 666 milli-threads per RP.
    assert_eq!(registry.gauge("reactor.nodes.registered").get(), 3);
    assert!(registry.gauge("reactor.connections.live").get() >= 3);
    let per_rp_milli = registry.gauge("reactor.threads_per_rp_milli").get();
    assert!(
        per_rp_milli <= 2 * 1000 / 3 + 1,
        "2 threads over 3 RPs must amortize below one thread per RP, got {per_rp_milli}"
    );

    cluster.publish(3).expect("batch delivers");
    let report = cluster.shutdown();
    assert_eq!(report.total_delivered(), 6);

    // After a graceful shutdown the level gauges return to zero…
    assert_eq!(registry.gauge("reactor.nodes.registered").get(), 0);
    assert_eq!(registry.gauge("reactor.connections.live").get(), 0);
    // …the wakeup histogram saw the event loops actually running…
    let snapshot = registry.snapshot();
    let wakeups = &snapshot.histograms["reactor.wakeup_batch"];
    assert!(wakeups.count() > 0, "event loops must have polled");
    assert!(wakeups.max() >= 1, "wakeups carried readiness records");
    // …and dropping the reactor completes the flight-recorder story.
    drop(reactor);
    assert_eq!(registry.gauge("reactor.threads").get(), 0);
    let kinds: Vec<_> = recorder.events().into_iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&teeve_telemetry::FlightEventKind::ReactorStart { threads: 2 }));
    assert!(kinds.contains(&teeve_telemetry::FlightEventKind::ReactorStop { threads: 2 }));
}

#[test]
fn socket_poisoned_fleet_dumps_a_flight_recording_naming_the_reconfigure() {
    // Site 2's RP dies before a delta that must open a link to it; the
    // poisoned coordinator's flight dump is the postmortem.
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
    let problem = ProblemInstance::builder(costs, CostMs::new(50))
        .symmetric_capacities(Degree::new(6))
        .streams_per_site(&[1, 0, 0])
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
        .build()
        .unwrap();
    let mut manager = OverlayManager::new(problem.clone());
    manager
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
        .unwrap();
    let plan_a = DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );

    let mut nodes = Vec::new();
    let mut addrs = Vec::new();
    for s in SiteId::all(3) {
        let node = RpNode::bind(s, Duration::from_millis(200)).expect("bind");
        addrs.push(node.local_addr());
        nodes.push(node.spawn());
    }
    let config = ClusterConfig {
        frames_per_stream: 2,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_secs(5),
    };
    let mut coordinator = Coordinator::connect(&plan_a, &addrs, &config).expect("connect");
    coordinator.publish(2).expect("healthy batch");

    // The surviving RPs' own recorders saw the install and link churn.
    assert!(nodes[0].flight_recorder().recorded() > 0);

    let victim = nodes.remove(2);
    victim.stop();
    victim.join();
    manager
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
        .unwrap();
    let mut plan_b = DisseminationPlan::from_forest(
        &problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    plan_b.set_revision(1);
    let delta = PlanDelta::diff(&plan_a, &plan_b);

    coordinator.apply_delta(&delta).unwrap_err();
    assert!(coordinator.is_poisoned());

    // (c) The dump is non-empty JSON naming the failed reconfigure.
    let dump = coordinator.flight_json().expect("dump serializes");
    assert!(
        dump.contains("Poisoned"),
        "dump names the poisoning: {dump}"
    );
    assert!(
        dump.contains("\"revision\":1"),
        "dump names the failed revision: {dump}"
    );

    // Shutdown names the dead RP's lost report, in the count and in the
    // flight stream.
    let events_before = coordinator.flight_recorder().clone();
    let report = coordinator.shutdown();
    assert!(report.missing_reports >= 1);
    assert!(events_before.events().iter().any(|e| matches!(
        e.kind,
        teeve_telemetry::FlightEventKind::StatsLost { site: 2 }
    )));
    for node in nodes {
        node.stop();
        node.join();
    }
}
