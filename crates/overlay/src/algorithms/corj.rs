//! CO-RJ: the correlation-aware extension of Random Join (paper
//! Section 4.4).

use rand::seq::SliceRandom;
use rand::RngCore;
use teeve_types::SiteId;

use super::ConstructionAlgorithm;
use crate::join::ForestState;
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// **CO-RJ** — Random Join with criticality-based victim swapping.
///
/// Streams from one site are semantically correlated (the same scene from
/// different angles), so losing one of many streams from a site degrades a
/// scene, while losing a site's *only* subscribed stream loses the scene
/// entirely. CO-RJ quantifies this with the criticality
/// `Q_{i→j} = 1 / u_{i→j}` of node `i` losing a stream from site `j`.
///
/// Whenever a request `r_i(s_j^p)` is rejected due to tree saturation,
/// CO-RJ looks for a *victim*: a less critical stream `s_k^q` such that
///
/// 1. `Q_{i→k} < Q_{i→j}` (the victim is less critical to lose),
/// 2. `RP_i` is a **leaf** in the victim's tree `T_k` (detaching it harms
///    nobody else),
/// 3. `RP_i`'s parent `RP_h` in `T_k` is already a member of the target
///    tree `T_j` (it holds the wanted stream), and
/// 4. connecting `RP_i` under `RP_h` in `T_j` stays within `B_cost`.
///
/// If such a victim exists, the edge `h → i` is moved from `T_k` to `T_j`:
/// `RP_i` loses `s_k^q` instead of `s_j^p`, at zero degree cost (`RP_h`
/// trades one child edge for another).
///
/// Among multiple eligible victims the one with the smallest criticality
/// (largest `u_{i→k}`) is chosen, ties broken by group index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorrelatedRandomJoin;

impl ConstructionAlgorithm for CorrelatedRandomJoin {
    fn name(&self) -> &str {
        "CO-RJ"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let mut state = ForestState::new(problem);
        let mut requests: Vec<(usize, SiteId)> = problem
            .groups()
            .iter()
            .enumerate()
            .flat_map(|(g, group)| group.subscribers().iter().map(move |&s| (g, s)))
            .collect();
        requests.shuffle(rng);
        for (g, requester) in requests {
            if state.try_join(g, requester).is_rejected() {
                // The swap trades one existing edge h→i for another, so it
                // leaves both d_in(i) and d_out(h) unchanged — it is a
                // legal recovery for *either* rejection cause (inbound
                // saturation or tree saturation).
                let _ = try_swap(&mut state, g, requester);
            }
        }
        ConstructionOutcome::new(self.name(), problem, state.into_forest())
    }
}

/// Attempts the CO-RJ victim swap for a saturated request. On success the
/// requester now receives the target stream and has given up the returned
/// less critical one (callers tracking per-subscription state — e.g. the
/// overlay manager's rate admission — drop the victim's bookkeeping).
pub(crate) fn try_swap<P: std::borrow::Borrow<ProblemInstance>>(
    state: &mut ForestState<P>,
    target_group: usize,
    requester: SiteId,
) -> Option<teeve_types::StreamId> {
    let problem = state.problem();
    let target_source = state.tree(target_group).source();
    let u_target = problem.request_count(requester, target_source);
    if u_target == 0 {
        return None;
    }
    let bound = problem.cost_bound();

    // Maximize u_{i→k} (minimize criticality), tie-break by group index.
    let mut best: Option<(u32, usize)> = None;
    for k_idx in 0..problem.group_count() {
        if k_idx == target_group {
            continue;
        }
        let victim_tree = state.tree(k_idx);
        if !victim_tree.is_member(requester) || victim_tree.source() == requester {
            continue;
        }
        // Condition 2: the requester must be a leaf in the victim tree.
        if !victim_tree.is_leaf(requester) {
            continue;
        }
        // Condition 1: strictly smaller criticality.
        let u_victim = problem.request_count(requester, victim_tree.source());
        if u_victim <= u_target {
            continue;
        }
        let parent = victim_tree
            .parent_of(requester)
            .expect("a non-source member has a parent");
        // Condition 3: the parent already holds the target stream.
        let target_tree = state.tree(target_group);
        let Some(parent_cost) = target_tree.cost_from_source(parent) else {
            continue;
        };
        // Condition 4: the new path respects the latency bound.
        let path = parent_cost.saturating_add(problem.cost(parent, requester));
        if path >= bound {
            continue;
        }
        let better = match best {
            None => true,
            Some((best_u, best_idx)) => {
                (u_victim, std::cmp::Reverse(k_idx)) > (best_u, std::cmp::Reverse(best_idx))
            }
        };
        if better {
            best = Some((u_victim, k_idx));
        }
    }

    let (_, victim_idx) = best?;
    let victim_stream = state.tree(victim_idx).stream();
    let parent = state
        .tree(victim_idx)
        .parent_of(requester)
        .expect("victim membership verified above");
    let edge = problem.cost(parent, requester);
    state.detach_leaf(victim_idx, requester);
    state.attach(target_group, requester, parent, edge);
    Some(victim_stream)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::contended_problem;
    use super::super::RandomJoin;
    use super::*;
    use crate::problem::NodeCapacity;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_types::{CostMatrix, CostMs, Degree, StreamId};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    /// Reproduces the paper's **Figure 7** worked example.
    ///
    /// Sites A=0 … G=6. E subscribes to two streams from A (`s_a^1`,
    /// `s_a^2`) and four from G (`s_g^6..s_g^9`), so
    /// `Q_{E→G} = 1/4 < Q_{E→A} = 1/2`. E has joined the tree of `s_g^8`
    /// as a leaf under F; F is already in the tree of `s_a^2`; connecting
    /// E to F there costs 9 < 10. When `s_a^2` is saturated for E, CO-RJ
    /// must remove F→E from the `s_g^8` tree and add F→E in the `s_a^2`
    /// tree.
    #[test]
    fn figure7_example_swaps_streams() {
        let (a, d, e, f, g) = (site(0), site(3), site(4), site(5), site(6));
        let costs = CostMatrix::from_fn(7, |i, j| {
            let pair = (i.min(j), i.max(j));
            let ms = match pair {
                (0, 3) => 4, // A-D
                (3, 5) => 3, // D-F
                (4, 5) => 2, // F-E  (total A→F→E = 4+3+2 = 9 < 10)
                (5, 6) => 3, // G-F
                _ => 20,
            };
            CostMs::new(ms)
        });
        let problem = ProblemInstance::builder(costs, CostMs::new(10))
            .symmetric_capacities(Degree::new(20))
            .streams_per_site(&[2, 0, 0, 0, 0, 0, 4])
            // E's subscription: 2 streams from A, 4 from G.
            .subscribe(e, stream(0, 0))
            .subscribe(e, stream(0, 1)) // s_a^2
            .subscribe(e, stream(6, 0))
            .subscribe(e, stream(6, 1))
            .subscribe(e, stream(6, 2)) // s_g^8
            .subscribe(e, stream(6, 3))
            // Enough other subscribers so F and D legitimately join trees.
            .subscribe(d, stream(0, 1))
            .subscribe(f, stream(0, 1))
            .subscribe(f, stream(6, 2))
            .build()
            .unwrap();

        let target_group = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(0, 1))
            .unwrap();
        let victim_group = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(6, 2))
            .unwrap();

        let mut state = ForestState::new(&problem);
        // Tree of s_a^2: A → D → F (F's path cost 7).
        state.attach(target_group, d, a, CostMs::new(4));
        state.attach(target_group, f, d, CostMs::new(3));
        // Tree of s_g^8: G → F → E (E is a leaf under F).
        state.attach(victim_group, f, g, CostMs::new(3));
        state.attach(victim_group, e, f, CostMs::new(2));

        let din_e = state.in_degree(e);
        let dout_f = state.out_degree(f);

        assert_eq!(
            try_swap(&mut state, target_group, e),
            Some(stream(6, 2)),
            "swap must succeed and name the victim"
        );

        // E now receives s_a^2 through F at cost 7 + 2 = 9 …
        let target_tree = state.tree(target_group);
        assert!(target_tree.is_member(e));
        assert_eq!(target_tree.parent_of(e), Some(f));
        assert_eq!(target_tree.cost_from_source(e), Some(CostMs::new(9)));
        // … and has lost s_g^8.
        assert!(!state.tree(victim_group).is_member(e));
        // Degrees are unchanged: F traded one child edge for another.
        assert_eq!(state.in_degree(e), din_e);
        assert_eq!(state.out_degree(f), dout_f);
    }

    #[test]
    fn swap_refuses_more_critical_victims() {
        // E subscribes 1 stream from A and 1 from G: equal criticality, so
        // condition (1) fails and no swap happens.
        let (a, e, f, g) = (site(0), site(1), site(2), site(3));
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 0, 0, 1])
            .subscribe(e, stream(0, 0))
            .subscribe(e, stream(3, 0))
            .subscribe(f, stream(0, 0))
            .subscribe(f, stream(3, 0))
            .build()
            .unwrap();
        let target = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(0, 0))
            .unwrap();
        let victim = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(3, 0))
            .unwrap();
        let mut state = ForestState::new(&problem);
        state.attach(target, f, a, CostMs::new(2));
        state.attach(victim, f, g, CostMs::new(2));
        state.attach(victim, e, f, CostMs::new(2));
        assert!(try_swap(&mut state, target, e).is_none());
        assert!(state.tree(victim).is_member(e), "victim tree untouched");
    }

    #[test]
    fn swap_refuses_non_leaf_victims() {
        // E relays the victim stream to another site, so detaching it would
        // orphan a subtree; condition (2) must reject the swap.
        let (a, e, f, g, h) = (site(0), site(1), site(2), site(3), site(4));
        let costs = CostMatrix::from_fn(5, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 0, 0, 4, 0])
            .subscribe(e, stream(0, 0))
            .subscribe(e, stream(3, 0))
            .subscribe(e, stream(3, 1))
            .subscribe(e, stream(3, 2))
            .subscribe(e, stream(3, 3))
            .subscribe(f, stream(0, 0))
            .subscribe(f, stream(3, 0))
            .subscribe(h, stream(3, 0))
            .build()
            .unwrap();
        let target = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(0, 0))
            .unwrap();
        let victim = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(3, 0))
            .unwrap();
        let mut state = ForestState::new(&problem);
        state.attach(target, f, a, CostMs::new(2));
        state.attach(victim, f, g, CostMs::new(2));
        state.attach(victim, e, f, CostMs::new(2));
        state.attach(victim, h, e, CostMs::new(2)); // E now relays to H
        assert!(try_swap(&mut state, target, e).is_none());
    }

    #[test]
    fn swap_respects_latency_bound() {
        let (a, d, e, f, g) = (site(0), site(3), site(4), site(5), site(6));
        let costs = CostMatrix::from_fn(7, |i, j| {
            let pair = (i.min(j), i.max(j));
            let ms = match pair {
                (0, 3) => 4,
                (3, 5) => 3,
                (4, 5) => 4, // F-E edge too expensive: 4+3+4 = 11 > 10
                (5, 6) => 3,
                _ => 20,
            };
            CostMs::new(ms)
        });
        let problem = ProblemInstance::builder(costs, CostMs::new(10))
            .symmetric_capacities(Degree::new(20))
            .streams_per_site(&[1, 0, 0, 0, 0, 0, 4])
            .subscribe(e, stream(0, 0))
            .subscribe(e, stream(6, 0))
            .subscribe(e, stream(6, 1))
            .subscribe(e, stream(6, 2))
            .subscribe(e, stream(6, 3))
            .subscribe(d, stream(0, 0))
            .subscribe(f, stream(0, 0))
            .subscribe(f, stream(6, 2))
            .build()
            .unwrap();
        let target = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(0, 0))
            .unwrap();
        let victim = problem
            .groups()
            .iter()
            .position(|grp| grp.stream() == stream(6, 2))
            .unwrap();
        let mut state = ForestState::new(&problem);
        state.attach(target, d, a, CostMs::new(4));
        state.attach(target, f, d, CostMs::new(3));
        state.attach(victim, f, g, CostMs::new(3));
        state.attach(victim, e, f, CostMs::new(4));
        assert!(
            try_swap(&mut state, target, e).is_none(),
            "bound must be enforced"
        );
    }

    #[test]
    fn corj_produces_valid_forests() {
        let problem = contended_problem();
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let outcome = CorrelatedRandomJoin.construct(&problem, &mut rng);
            validate_forest(&problem, outcome.forest()).expect("invariants hold");
        }
    }

    /// CO-RJ's whole purpose: on workloads with skewed per-site-pair
    /// subscription counts, its criticality-weighted rejection `X′` should
    /// be no worse than plain RJ's, in expectation.
    #[test]
    fn corj_improves_weighted_rejection_over_rj() {
        // 5 sites; each site subscribes heavily to its "neighbor" site and
        // sparsely (one stream) to the others; capacity is tight.
        let costs = CostMatrix::from_fn(5, |i, j| CostMs::new(2 + ((i + 2 * j) % 3) as u32));
        let mut b = ProblemInstance::builder(costs, CostMs::new(20))
            .capacities(vec![NodeCapacity::symmetric(Degree::new(6)); 5])
            .streams_per_site(&[6, 6, 6, 6, 6]);
        for sub in 0..5u32 {
            let favorite = (sub + 1) % 5;
            for origin in 0..5u32 {
                if origin == sub {
                    continue;
                }
                let count = if origin == favorite { 5 } else { 1 };
                for q in 0..count {
                    b = b.subscribe(site(sub), stream(origin, q));
                }
            }
        }
        let problem = b.build().unwrap();

        let (mut rj_total, mut corj_total) = (0.0, 0.0);
        for seed in 0..40 {
            rj_total += RandomJoin
                .construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed))
                .metrics()
                .weighted_rejection();
            corj_total += CorrelatedRandomJoin
                .construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed))
                .metrics()
                .weighted_rejection();
        }
        let (rj, corj) = (rj_total / 40.0, corj_total / 40.0);
        assert!(
            corj <= rj + 1e-9,
            "CO-RJ X' ({corj:.4}) should not exceed RJ X' ({rj:.4})"
        );
    }
}
