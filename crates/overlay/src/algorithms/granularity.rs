//! Gran-LTF: the granularity spectrum between tree-based construction and
//! Random Join (paper Section 5.3).

use rand::RngCore;

use super::{construct_in_batches, ConstructionAlgorithm};
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// **Gran-LTF**: sorts all multicast groups in descending size order (like
/// LTF), then constructs them `g` trees at a time; within each batch of `g`
/// trees, requests are processed in random order.
///
/// The granularity `g` interpolates between the two ends of the algorithm
/// spectrum:
///
/// * `g = 1` — exactly LTF (trees one by one);
/// * `g = F` — exactly RJ up to the (irrelevant) sort: one batch containing
///   every request of the forest.
///
/// The paper's granularity analysis (Figure 9) sweeps `g` and finds that
/// rejection generally *decreases* as granularity grows, confirming the
/// advantage of the randomized end of the spectrum.
///
/// # Examples
///
/// ```
/// use teeve_overlay::GranLtf;
///
/// let algo = GranLtf::new(4);
/// assert_eq!(algo.granularity(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranLtf {
    granularity: usize,
}

impl GranLtf {
    /// Creates a Gran-LTF with granularity `g` (trees constructed at once).
    ///
    /// # Panics
    ///
    /// Panics if `g` is zero.
    pub fn new(g: usize) -> Self {
        assert!(g >= 1, "granularity must be at least 1");
        GranLtf { granularity: g }
    }

    /// Returns the granularity `g`.
    pub fn granularity(&self) -> usize {
        self.granularity
    }
}

impl ConstructionAlgorithm for GranLtf {
    fn name(&self) -> &str {
        "Gran-LTF"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let mut order: Vec<usize> = (0..problem.group_count()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(problem.groups()[g].len()));
        let batches: Vec<Vec<usize>> = order
            .chunks(self.granularity)
            .map(<[usize]>::to_vec)
            .collect();
        construct_in_batches(self.name(), problem, &batches, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::contended_problem;
    use super::super::{LargestTreeFirst, RandomJoin};
    use super::*;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn granularity_one_matches_ltf() {
        let problem = contended_problem();
        for seed in 0..5 {
            let g1 = GranLtf::new(1).construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed));
            let ltf = LargestTreeFirst.construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed));
            assert_eq!(g1.forest(), ltf.forest(), "seed {seed}");
        }
    }

    /// `g = F` is RJ modulo the initial sort, which only permutes group
    /// indices inside the single batch; since LTF's sort is deterministic
    /// and the batch is shuffled afterwards, the *distribution* matches RJ.
    /// We check the weaker deterministic property the paper states: one
    /// batch containing all requests.
    #[test]
    fn granularity_f_behaves_like_rj() {
        let problem = contended_problem();
        let f = problem.group_count();
        let mut totals = (0.0, 0.0);
        for seed in 0..30 {
            totals.0 += GranLtf::new(f)
                .construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed))
                .metrics()
                .rejection_ratio();
            totals.1 += RandomJoin
                .construct(&problem, &mut ChaCha8Rng::seed_from_u64(seed))
                .metrics()
                .rejection_ratio();
        }
        let (gran, rj) = (totals.0 / 30.0, totals.1 / 30.0);
        assert!(
            (gran - rj).abs() < 0.05,
            "Gran-LTF(F) mean {gran:.3} should track RJ mean {rj:.3}"
        );
    }

    #[test]
    fn oversized_granularity_is_one_batch() {
        let problem = contended_problem();
        let huge = GranLtf::new(10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = huge.construct(&problem, &mut rng);
        validate_forest(&problem, outcome.forest()).expect("valid");
    }

    #[test]
    fn all_granularities_produce_valid_forests() {
        let problem = contended_problem();
        for g in 1..=problem.group_count() {
            let mut rng = ChaCha8Rng::seed_from_u64(g as u64);
            let outcome = GranLtf::new(g).construct(&problem, &mut rng);
            validate_forest(&problem, outcome.forest())
                .unwrap_or_else(|e| panic!("granularity {g}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn rejects_zero_granularity() {
        let _ = GranLtf::new(0);
    }
}
