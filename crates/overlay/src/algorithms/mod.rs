//! The spectrum of forest-construction heuristics (paper Section 4.3).
//!
//! All algorithms share the same inner loop — the basic node join of
//! Section 4.3.1 — and differ only in the *order* in which the requests of
//! the forest are processed:
//!
//! * the tree-based algorithms ([`LargestTreeFirst`], [`SmallestTreeFirst`],
//!   [`MinimumCapacityTreeFirst`]) build trees one by one (granularity 1);
//! * [`GranLtf`] builds `g` trees at a time (the granularity spectrum of
//!   Section 5.3);
//! * [`RandomJoin`] randomizes all requests of the whole forest
//!   (granularity `F`);
//! * [`CorrelatedRandomJoin`] (CO-RJ, Section 4.4) extends RJ with
//!   criticality-based victim swapping on saturation.

mod corj;
mod granularity;
mod tree_based;

pub(crate) use corj::try_swap as corj_try_swap;
pub use corj::CorrelatedRandomJoin;
pub use granularity::GranLtf;
pub use tree_based::{LargestTreeFirst, MinimumCapacityTreeFirst, SmallestTreeFirst};

use rand::seq::SliceRandom;
use rand::RngCore;
use teeve_types::SiteId;

use crate::join::ForestState;
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// A static overlay construction algorithm: consumes a problem instance and
/// produces a dissemination forest plus metrics.
///
/// Algorithms take the RNG as `&mut dyn RngCore` so they can be used as
/// trait objects (e.g. to sweep a list of algorithms in the benchmark
/// harness).
pub trait ConstructionAlgorithm {
    /// A short, stable display name ("RJ", "LTF", …).
    fn name(&self) -> &str;

    /// Runs the algorithm. Within each batch of trees the request order is
    /// randomized with `rng`, as the paper prescribes for every heuristic.
    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome;
}

/// Shared engine: processes the given batches of multicast groups in order;
/// within a batch, all requests of all its groups are shuffled together and
/// joined one by one.
///
/// * Tree-based algorithms pass one group per batch.
/// * Gran-LTF passes `g` groups per batch.
/// * RJ passes a single batch containing every group.
pub(crate) fn construct_in_batches(
    name: &str,
    problem: &ProblemInstance,
    batches: &[Vec<usize>],
    rng: &mut dyn RngCore,
) -> ConstructionOutcome {
    let mut state = ForestState::new(problem);
    for batch in batches {
        let mut requests: Vec<(usize, SiteId)> = batch
            .iter()
            .flat_map(|&g| {
                problem.groups()[g]
                    .subscribers()
                    .iter()
                    .map(move |&s| (g, s))
            })
            .collect();
        requests.shuffle(rng);
        for (g, s) in requests {
            let _ = state.try_join(g, s);
        }
    }
    ConstructionOutcome::new(name, problem, state.into_forest())
}

/// **Random Join (RJ)** — the paper's randomized algorithm (Section 4.3.3):
/// all requests of the whole forest are shuffled together, with no
/// prioritization of any tree.
///
/// The paper's headline finding is that this simplest algorithm generally
/// achieves the lowest rejection ratio, because randomizing across trees
/// load-balances the shared per-node bandwidth.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 1, 1])
///     .subscribe(SiteId::new(0), StreamId::new(SiteId::new(1), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(1), 0))
///     .build()?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let outcome = RandomJoin::default().construct(&problem, &mut rng);
/// assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomJoin;

impl ConstructionAlgorithm for RandomJoin {
    fn name(&self) -> &str {
        "RJ"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let all: Vec<usize> = (0..problem.group_count()).collect();
        construct_in_batches(self.name(), problem, std::slice::from_ref(&all), rng)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

    use crate::problem::ProblemInstance;

    /// A small but contended instance: 4 sites, 3 streams each, everyone
    /// subscribes to everything, capacities too small to satisfy all.
    pub fn contended_problem() -> ProblemInstance {
        let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(2 + ((i + j) % 3) as u32));
        let mut b = ProblemInstance::builder(costs, CostMs::new(30))
            .symmetric_capacities(Degree::new(5))
            .streams_per_site(&[3, 3, 3, 3]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..3u32 {
                    b = b.subscribe(SiteId::new(sub), StreamId::new(SiteId::new(origin), q));
                }
            }
        }
        b.build().unwrap()
    }

    /// A loose instance every algorithm should fully satisfy.
    pub fn easy_problem() -> ProblemInstance {
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let mut b = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(30))
            .streams_per_site(&[2, 2, 2, 2]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub == origin {
                    continue;
                }
                b = b.subscribe(SiteId::new(sub), StreamId::new(SiteId::new(origin), 0));
            }
        }
        b.build().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{contended_problem, easy_problem};
    use super::*;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rj_satisfies_easy_problems_completely() {
        let problem = easy_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        assert_eq!(
            outcome.metrics().accepted_requests,
            problem.total_requests()
        );
    }

    #[test]
    fn rj_output_is_always_valid() {
        let problem = contended_problem();
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let outcome = RandomJoin.construct(&problem, &mut rng);
            validate_forest(&problem, outcome.forest()).expect("invariants hold");
        }
    }

    #[test]
    fn rj_is_deterministic_given_a_seed() {
        let problem = contended_problem();
        let a = RandomJoin.construct(&problem, &mut ChaCha8Rng::seed_from_u64(5));
        let b = RandomJoin.construct(&problem, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a.forest(), b.forest());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn rj_rejects_some_requests_under_contention() {
        let problem = contended_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert!(outcome.metrics().rejected_requests > 0);
        assert!(outcome.metrics().rejection_ratio() > 0.0);
        assert!(outcome.metrics().rejection_ratio() < 1.0);
    }

    #[test]
    fn accepted_plus_rejected_covers_all_requests() {
        let problem = contended_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let accepted = outcome.accepted_requests(&problem).count();
        let rejected = outcome.rejected_requests(&problem).count();
        assert_eq!(accepted + rejected, problem.total_requests());
        assert_eq!(accepted, outcome.metrics().accepted_requests);
        assert_eq!(rejected, outcome.metrics().rejected_requests);
    }

    #[test]
    fn algorithms_are_object_safe() {
        let algos: Vec<Box<dyn ConstructionAlgorithm>> = vec![
            Box::new(RandomJoin),
            Box::new(LargestTreeFirst),
            Box::new(SmallestTreeFirst),
            Box::new(MinimumCapacityTreeFirst),
            Box::new(GranLtf::new(2)),
            Box::new(CorrelatedRandomJoin),
        ];
        let problem = easy_problem();
        for algo in &algos {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let outcome = algo.construct(&problem, &mut rng);
            assert_eq!(outcome.algorithm(), algo.name());
            validate_forest(&problem, outcome.forest()).expect("valid forest");
        }
    }
}
