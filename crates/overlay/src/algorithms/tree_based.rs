//! The tree-based algorithms: LTF, STF, and MCTF (paper Section 4.3.2).
//!
//! All three construct the multicast trees *one by one* — only after all
//! requests of one tree are processed does construction move to the next —
//! and differ in the order trees are taken.

use rand::RngCore;

use super::{construct_in_batches, ConstructionAlgorithm};
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// Sorts group indices by a key and wraps each in its own single-tree batch.
fn singleton_batches_by<K: Ord>(
    problem: &ProblemInstance,
    key: impl Fn(usize) -> K,
) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..problem.group_count()).collect();
    // Stable sort + stream-ordered groups keep construction deterministic.
    order.sort_by_key(|&g| key(g));
    order.into_iter().map(|g| vec![g]).collect()
}

/// Returns the aggregate forwarding capacity of group `g`:
/// `Σ_{v ∈ G(s) ∪ {source}} (O_v − m_v)`, where `m_v` is the number of
/// streams originating at `v` subscribed by at least one other RP.
fn aggregate_forwarding_capacity(problem: &ProblemInstance, g: usize) -> i64 {
    let group = &problem.groups()[g];
    group
        .subscribers()
        .iter()
        .copied()
        .chain(std::iter::once(group.source()))
        .map(|v| {
            i64::from(problem.capacity(v).outbound.count())
                - i64::from(problem.subscribed_local_streams(v))
        })
        .sum()
}

/// **Largest Tree First (LTF)**: trees are constructed from the largest
/// multicast group to the smallest.
///
/// The intuition: if the last few trees cannot be constructed due to
/// saturation, only the smallest groups' requests are lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LargestTreeFirst;

impl ConstructionAlgorithm for LargestTreeFirst {
    fn name(&self) -> &str {
        "LTF"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let batches =
            singleton_batches_by(problem, |g| std::cmp::Reverse(problem.groups()[g].len()));
        construct_in_batches(self.name(), problem, &batches, rng)
    }
}

/// **Smallest Tree First (STF)**: the reverse of LTF, studied as a control
/// for the hypothesis that LTF should beat it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmallestTreeFirst;

impl ConstructionAlgorithm for SmallestTreeFirst {
    fn name(&self) -> &str {
        "STF"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let batches = singleton_batches_by(problem, |g| problem.groups()[g].len());
        construct_in_batches(self.name(), problem, &batches, rng)
    }
}

/// **Minimum Capacity Tree First (MCTF)**: trees are ordered by ascending
/// aggregate forwarding capacity — the "hardest" trees (least spare
/// capacity among their members) are built first, while resources remain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimumCapacityTreeFirst;

impl ConstructionAlgorithm for MinimumCapacityTreeFirst {
    fn name(&self) -> &str {
        "MCTF"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let batches = singleton_batches_by(problem, |g| aggregate_forwarding_capacity(problem, g));
        construct_in_batches(self.name(), problem, &batches, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{contended_problem, easy_problem};
    use super::*;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mean_rejected_requests(
        algo: &dyn ConstructionAlgorithm,
        problem: &ProblemInstance,
        seeds: std::ops::Range<u64>,
    ) -> f64 {
        let mut total = 0.0;
        let len = (seeds.end - seeds.start) as f64;
        for seed in seeds {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total += algo
                .construct(problem, &mut rng)
                .metrics()
                .rejected_requests as f64;
        }
        total / len
    }

    #[test]
    fn all_tree_based_algorithms_produce_valid_forests() {
        let problem = contended_problem();
        let algos: [&dyn ConstructionAlgorithm; 3] = [
            &LargestTreeFirst,
            &SmallestTreeFirst,
            &MinimumCapacityTreeFirst,
        ];
        for algo in algos {
            for seed in 0..5 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let outcome = algo.construct(&problem, &mut rng);
                validate_forest(&problem, outcome.forest())
                    .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            }
        }
    }

    #[test]
    fn tree_based_algorithms_satisfy_easy_problems() {
        let problem = easy_problem();
        for algo in [
            &LargestTreeFirst as &dyn ConstructionAlgorithm,
            &SmallestTreeFirst,
            &MinimumCapacityTreeFirst,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            let outcome = algo.construct(&problem, &mut rng);
            assert_eq!(
                outcome.metrics().rejection_ratio(),
                0.0,
                "{} rejected requests on an easy problem",
                algo.name()
            );
        }
    }

    #[test]
    fn names_are_the_paper_acronyms() {
        assert_eq!(LargestTreeFirst.name(), "LTF");
        assert_eq!(SmallestTreeFirst.name(), "STF");
        assert_eq!(MinimumCapacityTreeFirst.name(), "MCTF");
    }

    /// LTF and STF are genuinely different algorithms: on a contended
    /// instance with heterogeneous group sizes, the tree construction
    /// order changes the outcome. (Whether LTF *beats* STF is the paper's
    /// empirical Section 5.2 claim, evaluated in the fig8 harness over 200
    /// workload samples — with the reservation mechanism active, tiny
    /// hand-built instances do not reliably show the gap.)
    #[test]
    fn tree_order_changes_outcomes() {
        // A problem with *heterogeneous* group sizes, where order matters:
        // popular streams (large groups) and niche streams (single-sub).
        use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
        let costs = CostMatrix::from_fn(6, |i, j| CostMs::new(2 + ((i * j) % 4) as u32));
        let mut b = crate::problem::ProblemInstance::builder(costs, CostMs::new(25))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[4, 4, 4, 4, 4, 4]);
        for origin in 0..6u32 {
            for q in 0..4u32 {
                let stream = StreamId::new(SiteId::new(origin), q);
                for sub in 0..6u32 {
                    if sub == origin {
                        continue;
                    }
                    // Stream 0 is popular (all subscribe); stream q>0 only
                    // reaches subscriber (origin+q).
                    if q == 0 || sub == (origin + q) % 6 {
                        b = b.subscribe(SiteId::new(sub), stream);
                    }
                }
            }
        }
        let problem = b.build().unwrap();
        let ltf = mean_rejected_requests(&LargestTreeFirst, &problem, 0..40);
        let stf = mean_rejected_requests(&SmallestTreeFirst, &problem, 0..40);
        assert!(
            (ltf - stf).abs() > 1e-9,
            "expected LTF ({ltf:.2} rejected) to differ from STF ({stf:.2})"
        );
    }

    #[test]
    fn mctf_orders_by_aggregate_capacity() {
        let problem = contended_problem();
        // Sanity: the helper is finite and consistent.
        for g in 0..problem.group_count() {
            let cap = super::aggregate_forwarding_capacity(&problem, g);
            // 4 members with O=5, m=3 each: (5-3) * 4 = 8.
            assert_eq!(cap, 8);
        }
    }
}
