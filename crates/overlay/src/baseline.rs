//! The conventional **all-to-all unicast** baseline the paper abandons
//! (Sections 1 and 5.4).
//!
//! Under unicast dissemination every subscriber is served directly by the
//! stream's source: no relaying, every tree is a star. The source's
//! out-degree must therefore carry *every* copy of each of its streams,
//! which is exactly the burden Figure 10's "fraction used for relaying"
//! shows the multicast overlay moving onto other nodes.

use rand::seq::SliceRandom;
use rand::RngCore;
use teeve_types::SiteId;

use crate::algorithms::ConstructionAlgorithm;
use crate::forest::{Forest, MulticastTree};
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// The all-to-all unicast baseline: sources serve every accepted
/// subscriber directly.
///
/// A request is accepted iff the source has spare out-degree, the
/// subscriber spare in-degree, and the *direct* edge meets the latency
/// bound. Requests are processed in a randomized order, like every
/// algorithm in the paper, so saturation hits a random subset rather than
/// a fixed one.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, UnicastBaseline};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// // One source with out-degree 1 cannot serve two unicast subscribers…
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .capacities(vec![
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(1)),
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
///     ])
///     .streams_per_site(&[1, 0, 0])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
///     .build()?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let outcome = UnicastBaseline.construct(&problem, &mut rng);
/// // …so unicast rejects one request that the overlay would relay.
/// assert_eq!(outcome.metrics().rejected_requests, 1);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnicastBaseline;

impl ConstructionAlgorithm for UnicastBaseline {
    fn name(&self) -> &str {
        "Unicast"
    }

    fn construct(&self, problem: &ProblemInstance, rng: &mut dyn RngCore) -> ConstructionOutcome {
        let n = problem.site_count();
        let mut out_degree = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        let mut trees: Vec<MulticastTree> = problem
            .groups()
            .iter()
            .map(|g| MulticastTree::new(g.stream(), n))
            .collect();

        let mut requests: Vec<(usize, SiteId)> = problem
            .groups()
            .iter()
            .enumerate()
            .flat_map(|(g, group)| group.subscribers().iter().map(move |&s| (g, s)))
            .collect();
        requests.shuffle(rng);

        for (g, subscriber) in requests {
            let source = problem.groups()[g].source();
            let edge = problem.cost(source, subscriber);
            let fits = out_degree[source.index()] < problem.capacity(source).outbound.count()
                && in_degree[subscriber.index()] < problem.capacity(subscriber).inbound.count()
                && edge < problem.cost_bound();
            if fits {
                out_degree[source.index()] += 1;
                in_degree[subscriber.index()] += 1;
                trees[g].attach(subscriber, source, edge);
            }
        }

        ConstructionOutcome::new(self.name(), problem, Forest::new(trees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::RandomJoin;
    use crate::problem::NodeCapacity;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_types::{CostMatrix, CostMs, Degree, StreamId};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    /// Everyone subscribes to every stream of every other site.
    fn dense_problem(n: u32, streams: u32, capacity: u32) -> ProblemInstance {
        let costs = CostMatrix::from_fn(n as usize, |_, _| CostMs::new(5));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(capacity))
            .streams_per_site(&vec![streams; n as usize]);
        for sub in 0..n {
            for origin in 0..n {
                if sub != origin {
                    for q in 0..streams {
                        b = b.subscribe(site(sub), stream(origin, q));
                    }
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn unicast_trees_are_stars() {
        let problem = dense_problem(4, 2, 20);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = UnicastBaseline.construct(&problem, &mut rng);
        for tree in outcome.forest().trees() {
            assert!(tree.depth() <= 1, "unicast must not relay");
        }
    }

    #[test]
    fn unicast_respects_all_invariants() {
        let problem = dense_problem(5, 3, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = UnicastBaseline.construct(&problem, &mut rng);
        assert!(validate_forest(&problem, outcome.forest()).is_ok());
    }

    #[test]
    fn unicast_never_relays_so_sources_carry_everything() {
        let problem = dense_problem(4, 2, 20);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = UnicastBaseline.construct(&problem, &mut rng);
        for i in 0..4 {
            assert_eq!(outcome.forest().relay_degree(site(i)), 0);
        }
    }

    #[test]
    fn multicast_beats_unicast_on_tight_sources() {
        // A single publisher with out-degree 4 facing 3 streams × 4
        // subscribers = 12 direct deliveries. Unicast can serve only 4;
        // the overlay sends each stream once and lets the (amply
        // provisioned) subscribers relay the rest.
        let n = 5u32;
        let costs = CostMatrix::from_fn(n as usize, |_, _| CostMs::new(5));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(
                (0..n)
                    .map(|i| NodeCapacity {
                        inbound: Degree::new(10),
                        outbound: Degree::new(if i == 0 { 4 } else { 12 }),
                    })
                    .collect(),
            )
            .streams_per_site(&[3, 0, 0, 0, 0]);
        for sub in 1..n {
            for q in 0..3 {
                b = b.subscribe(site(sub), stream(0, q));
            }
        }
        let problem = b.build().unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let unicast = UnicastBaseline.construct(&problem, &mut rng);
        let multicast = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(unicast.metrics().rejected_requests, 12 - 4);
        assert_eq!(multicast.metrics().rejected_requests, 0);
        // The burden moved off the source: subscribers relay.
        assert!((1..n).any(|i| multicast.forest().relay_degree(site(i)) > 0));
    }

    #[test]
    fn unicast_respects_latency_bound() {
        // Distant pair: direct edge exceeds the bound, request rejected.
        let costs = CostMatrix::from_fn(3, |i, j| {
            if (i, j) == (0, 2) || (i, j) == (2, 0) {
                CostMs::new(90)
            } else {
                CostMs::new(5)
            }
        });
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let outcome = UnicastBaseline.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejected_requests, 1);
        let tree = outcome.forest().tree_for(stream(0, 0)).unwrap();
        assert!(tree.is_member(site(1)));
        assert!(!tree.is_member(site(2)));
    }
}
