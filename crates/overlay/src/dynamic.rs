//! Incremental overlay maintenance — the dynamic counterpart of the static
//! construction problem.
//!
//! The paper solves the *static* overlay construction problem and leaves
//! live operation ("experiments of larger scales with real deployment") to
//! future work. This module provides the natural next step: an
//! [`OverlayManager`] that keeps a forest consistent while subscriptions
//! come and go, without rebuilding from scratch:
//!
//! * **subscribe** — joins the requester into the stream's tree with the
//!   same basic node join (and optional CO-RJ-style victim swapping);
//! * **unsubscribe** — detaches the requester; if it was relaying, its
//!   orphaned subtree is re-joined node by node (closest-to-source first),
//!   and anything that no longer fits is reported as dropped.
//!
//! Every mutation maintains the full invariant set of the static problem
//! (degree bounds, latency bound, well-formed trees), checkable at any
//! point with [`validate_forest`](crate::validate_forest).

use std::fmt;
use std::sync::Arc;

use teeve_types::{SiteId, StreamId};

use crate::algorithms::corj_try_swap;
use crate::join::{ForestState, JoinOutcome};
use crate::problem::ProblemInstance;

/// Error produced by dynamic overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// The stream has no multicast group in the underlying problem: it was
    /// never part of the session's subscription universe.
    UnknownStream {
        /// The offending stream.
        stream: StreamId,
    },
    /// The subscriber is not a declared subscriber of the stream's group.
    NotASubscriber {
        /// The requesting site.
        site: SiteId,
        /// The requested stream.
        stream: StreamId,
    },
    /// The subscriber is the stream's origin.
    OwnStream {
        /// The requesting site.
        site: SiteId,
        /// The requested stream.
        stream: StreamId,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::UnknownStream { stream } => {
                write!(f, "stream {stream} is not part of this session")
            }
            DynamicError::NotASubscriber { site, stream } => {
                write!(f, "{site} never subscribed to {stream}")
            }
            DynamicError::OwnStream { site, stream } => {
                write!(f, "{site} originates {stream} and cannot subscribe to it")
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// Result of one dynamic subscription attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeResult {
    /// The subscriber now receives the stream through the given parent.
    Joined {
        /// The forwarding parent.
        parent: SiteId,
    },
    /// The subscriber already received the stream; nothing changed.
    AlreadyJoined,
    /// No feasible parent exists (bandwidth or latency); the request was
    /// rejected, as in the static problem.
    Rejected,
}

/// Result of one unsubscribe operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnsubscribeResult {
    /// Downstream sites that were re-attached to the tree, with their new
    /// parents.
    pub reattached: Vec<(SiteId, SiteId)>,
    /// Downstream sites that could not be re-attached and lost the stream.
    pub dropped: Vec<SiteId>,
}

/// Maintains a dissemination forest under subscription churn.
///
/// The manager *owns* its subscription universe behind an
/// [`Arc<ProblemInstance>`]: unlike the static construction algorithms
/// (which borrow a problem for the duration of one `construct` call), an
/// overlay manager lives as long as its session does, and a multi-session
/// service holds many of them in one registry — none of which a borrow
/// lifetime would permit.
///
/// # Examples
///
/// ```
/// use teeve_overlay::{OverlayManager, ProblemInstance, SubscribeResult};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 1, 1])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
///     .build()?;
///
/// let mut manager = OverlayManager::new(problem);
/// let s = StreamId::new(SiteId::new(0), 0);
/// assert!(matches!(
///     manager.subscribe(SiteId::new(1), s)?,
///     SubscribeResult::Joined { .. }
/// ));
/// let result = manager.unsubscribe(SiteId::new(1), s)?;
/// assert!(result.dropped.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OverlayManager {
    state: ForestState<Arc<ProblemInstance>>,
    /// Enable CO-RJ victim swapping on saturated joins.
    correlation_aware: bool,
}

impl OverlayManager {
    /// Creates a manager over an empty forest (all trees contain only
    /// their sources). The problem instance declares the subscription
    /// *universe*: which site may subscribe to which stream, and the
    /// capacities and bound. Accepts a `ProblemInstance` by value or an
    /// already-shared `Arc<ProblemInstance>` (callers keeping their own
    /// handle on the universe pass a clone of the `Arc`).
    pub fn new(problem: impl Into<Arc<ProblemInstance>>) -> Self {
        OverlayManager {
            state: ForestState::new(problem.into()),
            correlation_aware: false,
        }
    }

    /// Enables CO-RJ-style victim swapping for saturated subscriptions.
    #[must_use]
    pub fn with_correlation_swapping(mut self) -> Self {
        self.correlation_aware = true;
        self
    }

    /// Returns the shared subscription universe this manager operates over.
    pub fn problem(&self) -> &ProblemInstance {
        self.state.problem()
    }

    /// Returns the underlying construction state (degrees, trees).
    pub fn state(&self) -> &ForestState<Arc<ProblemInstance>> {
        &self.state
    }

    /// Returns whether `site` currently receives `stream`.
    pub fn is_subscribed(&self, site: SiteId, stream: StreamId) -> bool {
        self.group_index(stream)
            .map(|g| self.state.tree(g).is_member(site) && stream.origin() != site)
            .unwrap_or(false)
    }

    fn group_index(&self, stream: StreamId) -> Option<usize> {
        self.state
            .problem()
            .groups()
            .iter()
            .position(|g| g.stream() == stream)
    }

    fn check_request(&self, site: SiteId, stream: StreamId) -> Result<usize, DynamicError> {
        if stream.origin() == site {
            return Err(DynamicError::OwnStream { site, stream });
        }
        let group = self
            .group_index(stream)
            .ok_or(DynamicError::UnknownStream { stream })?;
        if !self.state.problem().groups()[group]
            .subscribers()
            .contains(&site)
        {
            return Err(DynamicError::NotASubscriber { site, stream });
        }
        Ok(group)
    }

    /// Joins `site` into `stream`'s tree.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is outside the session universe, the
    /// site is not a declared subscriber, or it originates the stream.
    pub fn subscribe(
        &mut self,
        site: SiteId,
        stream: StreamId,
    ) -> Result<SubscribeResult, DynamicError> {
        let group = self.check_request(site, stream)?;
        if self.state.tree(group).is_member(site) {
            return Ok(SubscribeResult::AlreadyJoined);
        }
        match self.state.try_join(group, site) {
            JoinOutcome::Joined { parent } => Ok(SubscribeResult::Joined { parent }),
            JoinOutcome::RejectedInbound | JoinOutcome::RejectedSaturated
                if self.correlation_aware =>
            {
                if corj_try_swap(&mut self.state, group, site) {
                    let parent = self
                        .state
                        .tree(group)
                        .parent_of(site)
                        .expect("swap attached the site");
                    Ok(SubscribeResult::Joined { parent })
                } else {
                    Ok(SubscribeResult::Rejected)
                }
            }
            _ => Ok(SubscribeResult::Rejected),
        }
    }

    /// Removes `site` from `stream`'s tree. If `site` was relaying, its
    /// orphaned descendants are detached and re-joined closest-to-source
    /// first; descendants that no longer fit are dropped (and reported).
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is outside the session universe, the
    /// site is not a declared subscriber, or it originates the stream.
    pub fn unsubscribe(
        &mut self,
        site: SiteId,
        stream: StreamId,
    ) -> Result<UnsubscribeResult, DynamicError> {
        let group = self.check_request(site, stream)?;
        if !self.state.tree(group).is_member(site) {
            return Ok(UnsubscribeResult::default());
        }

        // Collect the subtree below `site` (excluding `site`), then detach
        // leaf-by-leaf (deepest first).
        let subtree = self.collect_subtree(group, site);
        for &descendant in subtree.iter().rev() {
            self.state.detach_leaf(group, descendant);
        }
        self.state.detach_leaf(group, site);

        // Re-join descendants closest-to-source first, so earlier rejoins
        // can serve as relays for later ones.
        let mut result = UnsubscribeResult::default();
        for &descendant in &subtree {
            match self.state.try_join(group, descendant) {
                JoinOutcome::Joined { parent } => {
                    result.reattached.push((descendant, parent));
                }
                _ => result.dropped.push(descendant),
            }
        }
        Ok(result)
    }

    /// Returns the descendants of `site` in group `group`, ordered
    /// shallowest first (BFS).
    fn collect_subtree(&self, group: usize, site: SiteId) -> Vec<SiteId> {
        let tree = self.state.tree(group);
        let mut order = Vec::new();
        let mut frontier = vec![site];
        while let Some(node) = frontier.pop() {
            for child in tree.children(node) {
                order.push(child);
                frontier.push(child);
            }
        }
        // BFS order by recorded cost (shallower costs first) keeps rejoin
        // deterministic and relay-friendly.
        order.sort_by_key(|&s| tree.cost_from_source(s).expect("descendants are members"));
        order
    }

    /// Returns a snapshot of the forest in its current state, leaving the
    /// manager usable. Epoch-driven callers (the session runtime) derive a
    /// dissemination plan from every snapshot while churn continues.
    pub fn forest_snapshot(&self) -> crate::forest::Forest {
        self.state.forest_snapshot()
    }

    /// Consumes the manager, returning the forest in its current state.
    pub fn into_forest(self) -> crate::forest::Forest {
        self.state.into_forest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_forest;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn problem() -> ProblemInstance {
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(3))
            .streams_per_site(&[2, 2, 2, 2])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn subscribe_and_unsubscribe_round_trip() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        assert!(matches!(
            m.subscribe(site(1), s).unwrap(),
            SubscribeResult::Joined { .. }
        ));
        assert!(m.is_subscribed(site(1), s));
        assert_eq!(
            m.subscribe(site(1), s).unwrap(),
            SubscribeResult::AlreadyJoined
        );
        let r = m.unsubscribe(site(1), s).unwrap();
        assert!(r.reattached.is_empty());
        assert!(r.dropped.is_empty());
        assert!(!m.is_subscribed(site(1), s));
        // Degrees returned to zero.
        assert_eq!(m.state().out_degree(site(0)), 0);
        assert_eq!(m.state().in_degree(site(1)), 0);
    }

    #[test]
    fn unsubscribing_a_relay_reattaches_descendants() {
        // Force a chain: source capacity 1 so site 2 must relay through 1.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        m.subscribe(site(1), s).unwrap();
        m.subscribe(site(2), s).unwrap();
        assert_eq!(m.state().tree(0).parent_of(site(2)), Some(site(1)));

        // Site 1 leaves; site 2 must be re-attached… but the source's only
        // out slot is now free again, so site 2 re-joins under the source.
        let r = m.unsubscribe(site(1), s).unwrap();
        assert_eq!(r.reattached, vec![(site(2), site(0))]);
        assert!(r.dropped.is_empty());
        assert!(m.is_subscribed(site(2), s));
        validate_forest(&p, &m.into_forest()).expect("valid after churn");
    }

    #[test]
    fn descendants_that_no_longer_fit_are_dropped() {
        // Source can serve exactly one child; relay 1 carries 2 and 3.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
                crate::problem::NodeCapacity {
                    inbound: Degree::new(4),
                    outbound: Degree::new(0),
                },
                crate::problem::NodeCapacity {
                    inbound: Degree::new(4),
                    outbound: Degree::new(0),
                },
            ])
            .streams_per_site(&[1, 0, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        m.subscribe(site(1), s).unwrap();
        m.subscribe(site(2), s).unwrap();
        m.subscribe(site(3), s).unwrap();

        // Relay 1 leaves. The freed source slot can take one of {2, 3};
        // the other has out-degree 0 peers only and must be dropped.
        let r = m.unsubscribe(site(1), s).unwrap();
        assert_eq!(r.reattached.len(), 1);
        assert_eq!(r.dropped.len(), 1);
        validate_forest(&p, &m.into_forest()).expect("valid after drop");
    }

    #[test]
    fn rejects_foreign_and_own_streams() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        assert_eq!(
            m.subscribe(site(0), stream(0, 0)).unwrap_err(),
            DynamicError::OwnStream {
                site: site(0),
                stream: stream(0, 0)
            }
        );
        assert_eq!(
            m.subscribe(site(1), stream(2, 0)).unwrap_err(),
            DynamicError::UnknownStream {
                stream: stream(2, 0)
            }
        );
        // Site 3 never declared interest in stream(1, 0).
        assert_eq!(
            m.subscribe(site(3), stream(1, 0)).unwrap_err(),
            DynamicError::NotASubscriber {
                site: site(3),
                stream: stream(1, 0)
            }
        );
    }

    #[test]
    fn unsubscribe_of_non_member_is_a_no_op() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let r = m.unsubscribe(site(1), stream(0, 0)).unwrap();
        assert_eq!(r, UnsubscribeResult::default());
    }

    #[test]
    fn correlation_swapping_rescues_saturated_joins() {
        // Site 3 subscribes 1 stream from site 0 and 2 from site 1:
        // criticality favors keeping the site-0 stream.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(8)),
                crate::problem::NodeCapacity::symmetric(Degree::new(8)),
                crate::problem::NodeCapacity {
                    inbound: Degree::new(2),
                    outbound: Degree::new(8),
                },
            ])
            .streams_per_site(&[1, 2, 0, 0])
            .subscribe(site(3), stream(0, 0))
            .subscribe(site(3), stream(1, 0))
            .subscribe(site(3), stream(1, 1))
            .subscribe(site(1), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone()).with_correlation_swapping();
        // Site 1 takes the source's only slot for the critical stream, so
        // it holds s0.0 and can later serve as the swap parent.
        m.subscribe(site(1), stream(0, 0)).unwrap();
        // Fill site 3's inbound with the two site-1 streams.
        m.subscribe(site(3), stream(1, 0)).unwrap();
        m.subscribe(site(3), stream(1, 1)).unwrap();
        // Inbound is now full (2 of 2); the critical site-0 stream would be
        // rejected, but swapping evicts one of the site-1 streams.
        let result = m.subscribe(site(3), stream(0, 0)).unwrap();
        assert!(
            matches!(result, SubscribeResult::Joined { .. }),
            "swap should rescue the critical stream, got {result:?}"
        );
        assert!(m.is_subscribed(site(3), stream(0, 0)));
        let still: usize = [stream(1, 0), stream(1, 1)]
            .iter()
            .filter(|&&s| m.is_subscribed(site(3), s))
            .count();
        assert_eq!(still, 1, "exactly one site-1 stream was sacrificed");
        validate_forest(&p, &m.into_forest()).expect("valid after swap");
    }

    #[test]
    fn churn_preserves_invariants() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let streams0 = stream(0, 0);
        for _ in 0..5 {
            for s in [site(1), site(2), site(3)] {
                let _ = m.subscribe(s, streams0);
            }
            let _ = m.unsubscribe(site(2), streams0);
            let _ = m.subscribe(site(2), streams0);
            let _ = m.unsubscribe(site(1), streams0);
        }
        validate_forest(&p, &m.clone().into_forest()).expect("valid under churn");
    }
}
