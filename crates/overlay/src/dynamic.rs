//! Incremental overlay maintenance — the dynamic counterpart of the static
//! construction problem.
//!
//! The paper solves the *static* overlay construction problem and leaves
//! live operation ("experiments of larger scales with real deployment") to
//! future work. This module provides the natural next step: an
//! [`OverlayManager`] that keeps a forest consistent while subscriptions
//! come and go, without rebuilding from scratch:
//!
//! * **subscribe** — joins the requester into the stream's tree with the
//!   same basic node join (and optional CO-RJ-style victim swapping);
//! * **unsubscribe** — detaches the requester; if it was relaying, its
//!   orphaned subtree is re-joined node by node (closest-to-source first),
//!   and anything that no longer fits is reported as dropped.
//!
//! Every mutation maintains the full invariant set of the static problem
//! (degree bounds, latency bound, well-formed trees), checkable at any
//! point with [`validate_forest`](crate::validate_forest).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use teeve_types::{Quality, QualityLadder, SiteId, StreamId};

use crate::algorithms::corj_try_swap;
use crate::join::{ForestState, JoinOutcome};
use crate::problem::ProblemInstance;
use crate::quality::fit_qualities;

/// Error produced by dynamic overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// The stream has no multicast group in the underlying problem: it was
    /// never part of the session's subscription universe.
    UnknownStream {
        /// The offending stream.
        stream: StreamId,
    },
    /// The subscriber is not a declared subscriber of the stream's group.
    NotASubscriber {
        /// The requesting site.
        site: SiteId,
        /// The requested stream.
        stream: StreamId,
    },
    /// The subscriber is the stream's origin.
    OwnStream {
        /// The requesting site.
        site: SiteId,
        /// The requested stream.
        stream: StreamId,
    },
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::UnknownStream { stream } => {
                write!(f, "stream {stream} is not part of this session")
            }
            DynamicError::NotASubscriber { site, stream } => {
                write!(f, "{site} never subscribed to {stream}")
            }
            DynamicError::OwnStream { site, stream } => {
                write!(f, "{site} originates {stream} and cannot subscribe to it")
            }
        }
    }
}

impl std::error::Error for DynamicError {}

/// Result of one dynamic subscription attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeResult {
    /// The subscriber now receives the stream through the given parent.
    Joined {
        /// The forwarding parent.
        parent: SiteId,
    },
    /// The subscriber already received the stream; nothing changed.
    AlreadyJoined,
    /// No feasible parent exists (bandwidth or latency); the request was
    /// rejected, as in the static problem.
    Rejected,
}

/// Result of one unsubscribe operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnsubscribeResult {
    /// Downstream sites that were re-attached to the tree, with their new
    /// parents.
    pub reattached: Vec<(SiteId, SiteId)>,
    /// Downstream sites that could not be re-attached and lost the stream.
    pub dropped: Vec<SiteId>,
}

/// Result of one score-carrying subscription attempt through the
/// degrade-don't-reject admission path
/// ([`OverlayManager::subscribe_scored`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredAdmission {
    /// The structural outcome (joined, already joined, or rejected).
    pub result: SubscribeResult,
    /// The quality the subscription is served at ([`Quality::FULL`]
    /// when rate admission is disabled or the budget is ample).
    pub quality: Quality,
    /// Already-admitted streams at this site whose quality changed to fit
    /// the budget: degraded — CO-RJ style — to make room for the
    /// newcomer, or promoted when the refit found slack.
    pub changed: Vec<(StreamId, Quality)>,
    /// The subscription a CO-RJ victim swap sacrificed to admit this one
    /// (the site no longer receives it). Callers tracking granted state
    /// must release the victim, or it silently stops being delivered.
    pub victim: Option<StreamId>,
}

/// Per-site rate bookkeeping behind the degrade-don't-reject admission
/// path: budgets, and the quality/score of every admitted subscription.
#[derive(Debug, Clone)]
struct RateAdmission {
    ladder: QualityLadder,
    /// Per-site inbound bit-rate budget; `None` = unconstrained.
    budgets: Vec<Option<u64>>,
    /// `(receiver, stream)` → (FOV contribution score, granted quality).
    admitted: BTreeMap<(SiteId, StreamId), (f64, Quality)>,
}

impl RateAdmission {
    /// The admitted `(stream, score)` pairs of one site, for fitting.
    fn site_streams(&self, site: SiteId) -> Vec<(StreamId, f64)> {
        self.admitted
            .range((site, StreamId::new(SiteId::new(0), 0))..)
            .take_while(|((s, _), _)| *s == site)
            .map(|(&(_, stream), &(score, _))| (stream, score))
            .collect()
    }

    /// Re-fits `site`'s admitted streams (plus `extra`, if any) into its
    /// budget and commits the result, returning the quality changes of
    /// already-admitted streams. The caller has verified feasibility.
    fn commit_fit(
        &mut self,
        site: SiteId,
        extra: Option<(StreamId, f64)>,
    ) -> Vec<(StreamId, Quality)> {
        let mut streams = self.site_streams(site);
        if let Some((stream, score)) = extra {
            streams.push((stream, score));
        }
        let fit = fit_qualities(&self.ladder, self.budgets[site.index()], &streams);
        let mut changed = Vec::new();
        for (stream, score) in streams {
            let quality = fit.qualities[&stream];
            let previous = self.admitted.insert((site, stream), (score, quality));
            if let Some((_, old)) = previous {
                if old != quality {
                    changed.push((stream, quality));
                }
            }
        }
        changed
    }
}

/// Maintains a dissemination forest under subscription churn.
///
/// The manager *owns* its subscription universe behind an
/// [`Arc<ProblemInstance>`]: unlike the static construction algorithms
/// (which borrow a problem for the duration of one `construct` call), an
/// overlay manager lives as long as its session does, and a multi-session
/// service holds many of them in one registry — none of which a borrow
/// lifetime would permit.
///
/// # Examples
///
/// ```
/// use teeve_overlay::{OverlayManager, ProblemInstance, SubscribeResult};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 1, 1])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
///     .build()?;
///
/// let mut manager = OverlayManager::new(problem);
/// let s = StreamId::new(SiteId::new(0), 0);
/// assert!(matches!(
///     manager.subscribe(SiteId::new(1), s)?,
///     SubscribeResult::Joined { .. }
/// ));
/// let result = manager.unsubscribe(SiteId::new(1), s)?;
/// assert!(result.dropped.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OverlayManager {
    state: ForestState<Arc<ProblemInstance>>,
    /// Enable CO-RJ victim swapping on saturated joins.
    correlation_aware: bool,
    /// Rate-aware degrade-don't-reject admission, when enabled.
    rate: Option<RateAdmission>,
}

impl OverlayManager {
    /// Creates a manager over an empty forest (all trees contain only
    /// their sources). The problem instance declares the subscription
    /// *universe*: which site may subscribe to which stream, and the
    /// capacities and bound. Accepts a `ProblemInstance` by value or an
    /// already-shared `Arc<ProblemInstance>` (callers keeping their own
    /// handle on the universe pass a clone of the `Arc`).
    pub fn new(problem: impl Into<Arc<ProblemInstance>>) -> Self {
        OverlayManager {
            state: ForestState::new(problem.into()),
            correlation_aware: false,
            rate: None,
        }
    }

    /// Enables CO-RJ-style victim swapping for saturated subscriptions.
    #[must_use]
    pub fn with_correlation_swapping(mut self) -> Self {
        self.correlation_aware = true;
        self
    }

    /// Enables the rate-aware degrade-don't-reject admission path: every
    /// subscription is granted a [`Quality`] rung on the shared `ladder`,
    /// and when a receiving site's bit-rate budget (see
    /// [`set_rate_budget`](Self::set_rate_budget)) cannot carry a new
    /// stream at full quality, admission degrades — first the newcomer,
    /// then the site's lowest-scored already-admitted streams — and only
    /// rejects once every stream sits at the ladder floor.
    ///
    /// Budgets start unconstrained; until one is set, every subscription
    /// is granted [`Quality::FULL`] exactly as without this call.
    #[must_use]
    pub fn with_rate_admission(mut self, ladder: QualityLadder) -> Self {
        let n = self.state.problem().site_count();
        self.rate = Some(RateAdmission {
            ladder,
            budgets: vec![None; n],
            admitted: BTreeMap::new(),
        });
        self
    }

    /// Returns true when the degrade-don't-reject admission path is
    /// enabled.
    pub fn has_rate_admission(&self) -> bool {
        self.rate.is_some()
    }

    /// Sets (or clears) `site`'s inbound bit-rate budget. Takes effect on
    /// the next [`subscribe_scored`](Self::subscribe_scored) or
    /// [`refit_site`](Self::refit_site) call — already-granted qualities
    /// are not touched here.
    ///
    /// # Panics
    ///
    /// Panics if rate admission is not enabled or `site` is out of range.
    pub fn set_rate_budget(&mut self, site: SiteId, budget_bps: Option<u64>) {
        let rate = self
            .rate
            .as_mut()
            .expect("rate admission not enabled; call with_rate_admission first");
        rate.budgets[site.index()] = budget_bps;
    }

    /// Returns `site`'s inbound bit-rate budget (`None` when unlimited or
    /// rate admission is disabled).
    pub fn rate_budget(&self, site: SiteId) -> Option<u64> {
        self.rate
            .as_ref()
            .and_then(|rate| rate.budgets[site.index()])
    }

    /// Returns the quality `site` currently receives `stream` at:
    /// [`Quality::FULL`] unless the rate-admission path granted (or later
    /// degraded to) a lower rung.
    pub fn quality_of(&self, site: SiteId, stream: StreamId) -> Quality {
        self.rate
            .as_ref()
            .and_then(|rate| rate.admitted.get(&(site, stream)))
            .map(|&(_, quality)| quality)
            .unwrap_or(Quality::FULL)
    }

    /// Updates the stored FOV contribution score of an admitted
    /// subscription (a display re-targeted without unsubscribing), so
    /// later refits and victim selections rank it correctly. A no-op for
    /// unknown subscriptions or without rate admission.
    pub fn rescore(&mut self, site: SiteId, stream: StreamId, score: f64) {
        if let Some(rate) = self.rate.as_mut() {
            if let Some(entry) = rate.admitted.get_mut(&(site, stream)) {
                entry.0 = score;
            }
        }
    }

    /// Re-fits every admitted stream of `site` into its current budget
    /// from scratch — degrading under a tightened budget, *promoting*
    /// back toward full quality under a loosened one — and returns the
    /// quality changes. The assignment is the deterministic
    /// [`fit_qualities`] greedy, clamped at the ladder floor (a budget
    /// too small for even the floor keeps everything at the floor; the
    /// transport layer surfaces the shortfall).
    pub fn refit_site(&mut self, site: SiteId) -> Vec<(StreamId, Quality)> {
        match self.rate.as_mut() {
            Some(rate) => rate.commit_fit(site, None),
            None => Vec::new(),
        }
    }

    /// Returns the shared subscription universe this manager operates over.
    pub fn problem(&self) -> &ProblemInstance {
        self.state.problem()
    }

    /// Returns the underlying construction state (degrees, trees).
    pub fn state(&self) -> &ForestState<Arc<ProblemInstance>> {
        &self.state
    }

    /// Returns whether `site` currently receives `stream`.
    pub fn is_subscribed(&self, site: SiteId, stream: StreamId) -> bool {
        self.group_index(stream)
            .map(|g| self.state.tree(g).is_member(site) && stream.origin() != site)
            .unwrap_or(false)
    }

    fn group_index(&self, stream: StreamId) -> Option<usize> {
        self.state
            .problem()
            .groups()
            .iter()
            .position(|g| g.stream() == stream)
    }

    fn check_request(&self, site: SiteId, stream: StreamId) -> Result<usize, DynamicError> {
        if stream.origin() == site {
            return Err(DynamicError::OwnStream { site, stream });
        }
        let group = self
            .group_index(stream)
            .ok_or(DynamicError::UnknownStream { stream })?;
        if !self.state.problem().groups()[group]
            .subscribers()
            .contains(&site)
        {
            return Err(DynamicError::NotASubscriber { site, stream });
        }
        Ok(group)
    }

    /// Joins `site` into `stream`'s tree without a contribution score:
    /// new admissions are ranked at the default full score, and — unlike
    /// [`subscribe_scored`](Self::subscribe_scored) — an idempotent
    /// re-subscribe leaves an existing stored score untouched, so a
    /// score-less caller can never corrupt the degrade path's victim
    /// ordering.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is outside the session universe, the
    /// site is not a declared subscriber, or it originates the stream.
    pub fn subscribe(
        &mut self,
        site: SiteId,
        stream: StreamId,
    ) -> Result<SubscribeResult, DynamicError> {
        self.subscribe_inner(site, stream, None)
            .map(|admission| admission.result)
    }

    /// Joins `site` into `stream`'s tree, carrying the subscription's FOV
    /// contribution `score` through the degrade-don't-reject admission
    /// path.
    ///
    /// With rate admission enabled
    /// ([`with_rate_admission`](Self::with_rate_admission)) and a budget
    /// set for `site`, saturation degrades instead of rejecting: the
    /// newcomer is first tried at lower rungs, then the site's
    /// lowest-scored already-admitted streams yield budget one rung at a
    /// time (the CO-RJ idea, with *degrade* in place of *drop*), and the
    /// request is rejected only when every stream — newcomer included —
    /// sits at the ladder floor and the demand still exceeds the budget.
    /// Count-based saturation (the paper's degree bounds) and the latency
    /// bound still reject structurally, after the optional CO-RJ victim
    /// swap.
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is outside the session universe, the
    /// site is not a declared subscriber, or it originates the stream.
    pub fn subscribe_scored(
        &mut self,
        site: SiteId,
        stream: StreamId,
        score: f64,
    ) -> Result<ScoredAdmission, DynamicError> {
        self.subscribe_inner(site, stream, Some(score))
    }

    /// The shared admission path; `score: None` (the score-less
    /// [`subscribe`](Self::subscribe)) admits at the default full score
    /// but never overwrites a stored one.
    fn subscribe_inner(
        &mut self,
        site: SiteId,
        stream: StreamId,
        score: Option<f64>,
    ) -> Result<ScoredAdmission, DynamicError> {
        let group = self.check_request(site, stream)?;
        let admit_score = score.unwrap_or(1.0);
        let rejected = |quality| ScoredAdmission {
            result: SubscribeResult::Rejected,
            quality,
            changed: Vec::new(),
            victim: None,
        };
        if self.state.tree(group).is_member(site) {
            // Known member: a scored call refreshes the stored score so
            // later refits and victim selections rank it correctly; a
            // score-less call leaves it alone.
            if let Some(rate) = self.rate.as_mut() {
                let entry = rate
                    .admitted
                    .entry((site, stream))
                    .or_insert((admit_score, Quality::FULL));
                if let Some(score) = score {
                    entry.0 = score;
                }
            }
            return Ok(ScoredAdmission {
                result: SubscribeResult::AlreadyJoined,
                quality: self.quality_of(site, stream),
                changed: Vec::new(),
                victim: None,
            });
        }

        // Rate feasibility first, so a ladder-exhausted rejection never
        // mutates the forest (no join to undo, no swap to revert).
        if let Some(rate) = self.rate.as_ref() {
            if rate.budgets[site.index()].is_some() {
                let mut streams = rate.site_streams(site);
                streams.push((stream, admit_score));
                let fit = fit_qualities(&rate.ladder, rate.budgets[site.index()], &streams);
                if !fit.fits {
                    return Ok(rejected(Quality::FULL));
                }
            }
        }

        // Structural join: degree bounds and the latency bound, with the
        // CO-RJ victim swap as the saturation fallback.
        let mut victim = None;
        let parent = match self.state.try_join(group, site) {
            JoinOutcome::Joined { parent } => parent,
            JoinOutcome::RejectedInbound | JoinOutcome::RejectedSaturated
                if self.correlation_aware =>
            {
                match corj_try_swap(&mut self.state, group, site) {
                    Some(sacrificed) => {
                        // The swap traded the victim subscription away;
                        // its quality bookkeeping goes with it, and the
                        // caller is told so its granted state follows.
                        if let Some(rate) = self.rate.as_mut() {
                            rate.admitted.remove(&(site, sacrificed));
                        }
                        victim = Some(sacrificed);
                        self.state
                            .tree(group)
                            .parent_of(site)
                            .expect("swap attached the site")
                    }
                    None => return Ok(rejected(Quality::FULL)),
                }
            }
            _ => return Ok(rejected(Quality::FULL)),
        };

        let (quality, changed) = match self.rate.as_mut() {
            Some(rate) => {
                let changed = rate.commit_fit(site, Some((stream, admit_score)));
                (rate.admitted[&(site, stream)].1, changed)
            }
            None => (Quality::FULL, Vec::new()),
        };
        Ok(ScoredAdmission {
            result: SubscribeResult::Joined { parent },
            quality,
            changed,
            victim,
        })
    }

    /// Removes `site` from `stream`'s tree. If `site` was relaying, its
    /// orphaned descendants are detached and re-joined closest-to-source
    /// first; descendants that no longer fit are dropped (and reported).
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is outside the session universe, the
    /// site is not a declared subscriber, or it originates the stream.
    pub fn unsubscribe(
        &mut self,
        site: SiteId,
        stream: StreamId,
    ) -> Result<UnsubscribeResult, DynamicError> {
        let group = self.check_request(site, stream)?;
        if !self.state.tree(group).is_member(site) {
            return Ok(UnsubscribeResult::default());
        }

        // Collect the subtree below `site` (excluding `site`), then detach
        // leaf-by-leaf (deepest first).
        let subtree = self.collect_subtree(group, site);
        for &descendant in subtree.iter().rev() {
            self.state.detach_leaf(group, descendant);
        }
        self.state.detach_leaf(group, site);

        // Re-join descendants closest-to-source first, so earlier rejoins
        // can serve as relays for later ones.
        let mut result = UnsubscribeResult::default();
        for &descendant in &subtree {
            match self.state.try_join(group, descendant) {
                JoinOutcome::Joined { parent } => {
                    result.reattached.push((descendant, parent));
                }
                _ => result.dropped.push(descendant),
            }
        }
        // Release the departed (and dropped) subscriptions' quality
        // bookkeeping; re-attached descendants keep theirs.
        if let Some(rate) = self.rate.as_mut() {
            rate.admitted.remove(&(site, stream));
            for &dropped in &result.dropped {
                rate.admitted.remove(&(dropped, stream));
            }
        }
        Ok(result)
    }

    /// Returns the descendants of `site` in group `group`, ordered
    /// shallowest first (BFS).
    fn collect_subtree(&self, group: usize, site: SiteId) -> Vec<SiteId> {
        let tree = self.state.tree(group);
        let mut order = Vec::new();
        let mut frontier = vec![site];
        while let Some(node) = frontier.pop() {
            for child in tree.children(node) {
                order.push(child);
                frontier.push(child);
            }
        }
        // BFS order by recorded cost (shallower costs first) keeps rejoin
        // deterministic and relay-friendly.
        order.sort_by_key(|&s| tree.cost_from_source(s).expect("descendants are members"));
        order
    }

    /// Returns a snapshot of the forest in its current state, leaving the
    /// manager usable. Epoch-driven callers (the session runtime) derive a
    /// dissemination plan from every snapshot while churn continues.
    pub fn forest_snapshot(&self) -> crate::forest::Forest {
        self.state.forest_snapshot()
    }

    /// Consumes the manager, returning the forest in its current state.
    pub fn into_forest(self) -> crate::forest::Forest {
        self.state.into_forest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_forest;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn problem() -> ProblemInstance {
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(3))
            .streams_per_site(&[2, 2, 2, 2])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn subscribe_and_unsubscribe_round_trip() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        assert!(matches!(
            m.subscribe(site(1), s).unwrap(),
            SubscribeResult::Joined { .. }
        ));
        assert!(m.is_subscribed(site(1), s));
        assert_eq!(
            m.subscribe(site(1), s).unwrap(),
            SubscribeResult::AlreadyJoined
        );
        let r = m.unsubscribe(site(1), s).unwrap();
        assert!(r.reattached.is_empty());
        assert!(r.dropped.is_empty());
        assert!(!m.is_subscribed(site(1), s));
        // Degrees returned to zero.
        assert_eq!(m.state().out_degree(site(0)), 0);
        assert_eq!(m.state().in_degree(site(1)), 0);
    }

    #[test]
    fn unsubscribing_a_relay_reattaches_descendants() {
        // Force a chain: source capacity 1 so site 2 must relay through 1.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        m.subscribe(site(1), s).unwrap();
        m.subscribe(site(2), s).unwrap();
        assert_eq!(m.state().tree(0).parent_of(site(2)), Some(site(1)));

        // Site 1 leaves; site 2 must be re-attached… but the source's only
        // out slot is now free again, so site 2 re-joins under the source.
        let r = m.unsubscribe(site(1), s).unwrap();
        assert_eq!(r.reattached, vec![(site(2), site(0))]);
        assert!(r.dropped.is_empty());
        assert!(m.is_subscribed(site(2), s));
        validate_forest(&p, &m.into_forest()).expect("valid after churn");
    }

    #[test]
    fn descendants_that_no_longer_fit_are_dropped() {
        // Source can serve exactly one child; relay 1 carries 2 and 3.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(4)),
                crate::problem::NodeCapacity {
                    inbound: Degree::new(4),
                    outbound: Degree::new(0),
                },
                crate::problem::NodeCapacity {
                    inbound: Degree::new(4),
                    outbound: Degree::new(0),
                },
            ])
            .streams_per_site(&[1, 0, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone());
        let s = stream(0, 0);
        m.subscribe(site(1), s).unwrap();
        m.subscribe(site(2), s).unwrap();
        m.subscribe(site(3), s).unwrap();

        // Relay 1 leaves. The freed source slot can take one of {2, 3};
        // the other has out-degree 0 peers only and must be dropped.
        let r = m.unsubscribe(site(1), s).unwrap();
        assert_eq!(r.reattached.len(), 1);
        assert_eq!(r.dropped.len(), 1);
        validate_forest(&p, &m.into_forest()).expect("valid after drop");
    }

    #[test]
    fn rejects_foreign_and_own_streams() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        assert_eq!(
            m.subscribe(site(0), stream(0, 0)).unwrap_err(),
            DynamicError::OwnStream {
                site: site(0),
                stream: stream(0, 0)
            }
        );
        assert_eq!(
            m.subscribe(site(1), stream(2, 0)).unwrap_err(),
            DynamicError::UnknownStream {
                stream: stream(2, 0)
            }
        );
        // Site 3 never declared interest in stream(1, 0).
        assert_eq!(
            m.subscribe(site(3), stream(1, 0)).unwrap_err(),
            DynamicError::NotASubscriber {
                site: site(3),
                stream: stream(1, 0)
            }
        );
    }

    #[test]
    fn unsubscribe_of_non_member_is_a_no_op() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let r = m.unsubscribe(site(1), stream(0, 0)).unwrap();
        assert_eq!(r, UnsubscribeResult::default());
    }

    #[test]
    fn correlation_swapping_rescues_saturated_joins() {
        // Site 3 subscribes 1 stream from site 0 and 2 from site 1:
        // criticality favors keeping the site-0 stream.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                crate::problem::NodeCapacity::symmetric(Degree::new(1)),
                crate::problem::NodeCapacity::symmetric(Degree::new(8)),
                crate::problem::NodeCapacity::symmetric(Degree::new(8)),
                crate::problem::NodeCapacity {
                    inbound: Degree::new(2),
                    outbound: Degree::new(8),
                },
            ])
            .streams_per_site(&[1, 2, 0, 0])
            .subscribe(site(3), stream(0, 0))
            .subscribe(site(3), stream(1, 0))
            .subscribe(site(3), stream(1, 1))
            .subscribe(site(1), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone()).with_correlation_swapping();
        // Site 1 takes the source's only slot for the critical stream, so
        // it holds s0.0 and can later serve as the swap parent.
        m.subscribe(site(1), stream(0, 0)).unwrap();
        // Fill site 3's inbound with the two site-1 streams.
        m.subscribe(site(3), stream(1, 0)).unwrap();
        m.subscribe(site(3), stream(1, 1)).unwrap();
        // Inbound is now full (2 of 2); the critical site-0 stream would be
        // rejected, but swapping evicts one of the site-1 streams — and
        // the admission names the sacrificed subscription so callers can
        // release it from their granted state.
        let admission = m.subscribe_scored(site(3), stream(0, 0), 1.0).unwrap();
        assert!(
            matches!(admission.result, SubscribeResult::Joined { .. }),
            "swap should rescue the critical stream, got {:?}",
            admission.result
        );
        let victim = admission.victim.expect("the swap names its victim");
        assert_eq!(victim.origin(), site(1));
        assert!(!m.is_subscribed(site(3), victim));
        assert!(m.is_subscribed(site(3), stream(0, 0)));
        let still: usize = [stream(1, 0), stream(1, 1)]
            .iter()
            .filter(|&&s| m.is_subscribed(site(3), s))
            .count();
        assert_eq!(still, 1, "exactly one site-1 stream was sacrificed");
        validate_forest(&p, &m.into_forest()).expect("valid after swap");
    }

    #[test]
    fn rate_admission_degrades_the_newcomer_before_victims() {
        // Site 1 may take both of site 0's streams; a 12 Mbps budget
        // cannot carry two full 8 Mbps streams.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p).with_rate_admission(QualityLadder::paper_default());
        m.set_rate_budget(site(1), Some(12_000_000));

        let first = m.subscribe_scored(site(1), stream(0, 0), 0.9).unwrap();
        assert!(matches!(first.result, SubscribeResult::Joined { .. }));
        assert!(first.quality.is_full());

        // The newcomer scores lower than the incumbent: it degrades, the
        // incumbent stays full (8 + 4 = 12 fits).
        let second = m.subscribe_scored(site(1), stream(0, 1), 0.2).unwrap();
        assert!(matches!(second.result, SubscribeResult::Joined { .. }));
        assert_eq!(second.quality, Quality::new(1));
        assert!(second.changed.is_empty(), "incumbent untouched");
        assert!(m.quality_of(site(1), stream(0, 0)).is_full());
    }

    #[test]
    fn rate_admission_degrades_the_lowest_scored_victim() {
        // The newcomer scores HIGHER than the incumbent: the incumbent is
        // the CO-RJ-style victim and yields budget instead.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p).with_rate_admission(QualityLadder::paper_default());
        m.set_rate_budget(site(1), Some(12_000_000));
        m.subscribe_scored(site(1), stream(0, 0), 0.2).unwrap();

        let admission = m.subscribe_scored(site(1), stream(0, 1), 0.9).unwrap();
        assert!(matches!(admission.result, SubscribeResult::Joined { .. }));
        assert!(admission.quality.is_full(), "high scorer is served full");
        assert_eq!(admission.changed, vec![(stream(0, 0), Quality::new(1))]);
        assert_eq!(m.quality_of(site(1), stream(0, 0)), Quality::new(1));
    }

    #[test]
    fn rate_admission_rejects_only_when_the_ladder_is_exhausted() {
        // 5 Mbps carries two floor-rung (2 Mbps) streams but never three.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(8))
            .streams_per_site(&[3, 0, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .subscribe(site(1), stream(0, 2))
            .build()
            .unwrap();
        let mut m =
            OverlayManager::new(p.clone()).with_rate_admission(QualityLadder::paper_default());
        m.set_rate_budget(site(1), Some(5_000_000));

        assert!(matches!(
            m.subscribe_scored(site(1), stream(0, 0), 0.9)
                .unwrap()
                .result,
            SubscribeResult::Joined { .. }
        ));
        let second = m.subscribe_scored(site(1), stream(0, 1), 0.5).unwrap();
        assert!(matches!(second.result, SubscribeResult::Joined { .. }));
        // Both now sit low enough to fit 5 Mbps (2 + 2 = 4).
        assert!(!m.quality_of(site(1), stream(0, 0)).is_full());
        // A third stream cannot fit even at the floor: the ladder is
        // exhausted, and only now does the request reject — without
        // touching the forest.
        let third = m.subscribe_scored(site(1), stream(0, 2), 0.99).unwrap();
        assert_eq!(third.result, SubscribeResult::Rejected);
        assert!(!m.is_subscribed(site(1), stream(0, 2)));
        validate_forest(&p, &m.forest_snapshot()).expect("rejection left the forest intact");
    }

    #[test]
    fn refit_promotes_when_the_budget_recovers() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p).with_rate_admission(QualityLadder::paper_default());
        m.set_rate_budget(site(1), Some(10_000_000));
        m.subscribe_scored(site(1), stream(0, 0), 0.9).unwrap();
        m.subscribe_scored(site(1), stream(0, 1), 0.1).unwrap();
        assert_eq!(m.quality_of(site(1), stream(0, 1)), Quality::new(2));

        // Congestion clears: the refit promotes everything back to full.
        m.set_rate_budget(site(1), Some(40_000_000));
        let changes = m.refit_site(site(1));
        assert_eq!(changes, vec![(stream(0, 1), Quality::FULL)]);
        assert!(m.quality_of(site(1), stream(0, 1)).is_full());

        // And a tightened budget degrades again, lowest score first.
        m.set_rate_budget(site(1), Some(12_000_000));
        let changes = m.refit_site(site(1));
        assert_eq!(changes, vec![(stream(0, 1), Quality::new(1))]);
    }

    #[test]
    fn unsubscribing_releases_quality_bookkeeping() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p).with_rate_admission(QualityLadder::paper_default());
        m.set_rate_budget(site(1), Some(12_000_000));
        m.subscribe_scored(site(1), stream(0, 0), 0.9).unwrap();
        m.subscribe_scored(site(1), stream(0, 1), 0.1).unwrap();
        assert_eq!(m.quality_of(site(1), stream(0, 1)), Quality::new(1));

        // Dropping the full-quality incumbent frees 8 Mbps; the survivor
        // is promoted by the next refit.
        m.unsubscribe(site(1), stream(0, 0)).unwrap();
        assert!(
            m.quality_of(site(1), stream(0, 0)).is_full(),
            "released subscriptions report the default"
        );
        let changes = m.refit_site(site(1));
        assert_eq!(changes, vec![(stream(0, 1), Quality::FULL)]);
    }

    #[test]
    fn scoreless_resubscribes_do_not_clobber_stored_scores() {
        // A low-priority stream admitted with a real score must keep it
        // through an idempotent score-less subscribe(): otherwise the
        // next budget squeeze degrades the wrong victim.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(6))
            .streams_per_site(&[2, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p).with_rate_admission(QualityLadder::paper_default());
        m.subscribe_scored(site(1), stream(0, 0), 0.1).unwrap();
        m.subscribe_scored(site(1), stream(0, 1), 0.9).unwrap();
        // Idempotent plain re-subscribe of the low scorer.
        assert_eq!(
            m.subscribe(site(1), stream(0, 0)).unwrap(),
            SubscribeResult::AlreadyJoined
        );
        // Tighten the budget: the 0.1-scored stream must still be the
        // victim (a clobbered score of 1.0 would degrade 0.9 instead).
        m.set_rate_budget(site(1), Some(12_000_000));
        let changes = m.refit_site(site(1));
        assert_eq!(changes, vec![(stream(0, 0), Quality::new(1))]);
        assert!(m.quality_of(site(1), stream(0, 1)).is_full());
        // An explicit re-score does update it: now the other stream is
        // the lowest scorer and yields on the next refit.
        m.subscribe_scored(site(1), stream(0, 0), 0.95).unwrap();
        m.refit_site(site(1));
        assert!(m.quality_of(site(1), stream(0, 0)).is_full());
        assert_eq!(m.quality_of(site(1), stream(0, 1)), Quality::new(1));
    }

    #[test]
    fn plain_subscribe_is_unchanged_without_budgets() {
        // Rate admission enabled but no budget set: behavior (and
        // qualities) are identical to the plain path.
        let p = problem();
        let mut m =
            OverlayManager::new(p.clone()).with_rate_admission(QualityLadder::paper_default());
        assert!(m.has_rate_admission());
        assert_eq!(m.rate_budget(site(1)), None);
        let s = stream(0, 0);
        assert!(matches!(
            m.subscribe(site(1), s).unwrap(),
            SubscribeResult::Joined { .. }
        ));
        assert!(m.quality_of(site(1), s).is_full());
        let r = m.unsubscribe(site(1), s).unwrap();
        assert!(r.dropped.is_empty());
    }

    #[test]
    fn churn_preserves_invariants() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let streams0 = stream(0, 0);
        for _ in 0..5 {
            for s in [site(1), site(2), site(3)] {
                let _ = m.subscribe(s, streams0);
            }
            let _ = m.unsubscribe(site(2), streams0);
            let _ = m.subscribe(site(2), streams0);
            let _ = m.unsubscribe(site(1), streams0);
        }
        validate_forest(&p, &m.clone().into_forest()).expect("valid under churn");
    }
}
