//! Multicast trees and the dissemination forest produced by construction
//! algorithms.

use serde::{Deserialize, Serialize};
use teeve_types::{CostMs, SiteId, StreamId};

/// One multicast tree `T_s`: the dissemination paths of a single stream
/// from its source RP to the subscribing RPs that were accepted.
///
/// Membership and parent pointers are stored per site; non-members have no
/// parent and an undefined cost. The source is always a member with zero
/// cost and no parent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastTree {
    stream: StreamId,
    member: Vec<bool>,
    parent: Vec<Option<SiteId>>,
    cost_from_source: Vec<CostMs>,
}

impl MulticastTree {
    /// Creates a tree containing only its source, over `n` sites.
    ///
    /// # Panics
    ///
    /// Panics if the stream's origin is outside `0..n`.
    pub fn new(stream: StreamId, n: usize) -> Self {
        let source = stream.origin();
        assert!(source.index() < n, "source outside the session");
        let mut member = vec![false; n];
        member[source.index()] = true;
        MulticastTree {
            stream,
            member,
            parent: vec![None; n],
            cost_from_source: vec![CostMs::ZERO; n],
        }
    }

    /// Returns the stream this tree disseminates.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Returns the source RP (tree root).
    pub fn source(&self) -> SiteId {
        self.stream.origin()
    }

    /// Returns the number of sites the tree is defined over.
    pub fn site_count(&self) -> usize {
        self.member.len()
    }

    /// Returns true if `site` receives (or originates) the stream.
    pub fn is_member(&self, site: SiteId) -> bool {
        self.member[site.index()]
    }

    /// Returns the number of members, including the source.
    pub fn member_count(&self) -> usize {
        self.member.iter().filter(|&&m| m).count()
    }

    /// Returns the parent of `site` in the tree, `None` for the source or
    /// for non-members.
    pub fn parent_of(&self, site: SiteId) -> Option<SiteId> {
        self.parent[site.index()]
    }

    /// Returns the accumulated latency from the source to `site`
    /// (`cost(RP_i, RP_j)_{T_s}`), or `None` for non-members.
    pub fn cost_from_source(&self, site: SiteId) -> Option<CostMs> {
        if self.is_member(site) {
            Some(self.cost_from_source[site.index()])
        } else {
            None
        }
    }

    /// Returns the children of `site` in the tree.
    pub fn children(&self, site: SiteId) -> Vec<SiteId> {
        (0..self.member.len() as u32)
            .map(SiteId::new)
            .filter(|&c| self.parent[c.index()] == Some(site))
            .collect()
    }

    /// Returns true if `site` is a member with no children (the source with
    /// no children counts as a leaf too).
    pub fn is_leaf(&self, site: SiteId) -> bool {
        self.is_member(site) && !self.parent.contains(&Some(site))
    }

    /// Returns an iterator over the directed edges `(parent, child)` of the
    /// tree.
    pub fn edges(&self) -> impl Iterator<Item = (SiteId, SiteId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.map(|parent| (parent, SiteId::new(i as u32))))
    }

    /// Returns the maximum edge-hop depth of any member below the source.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        for i in 0..self.member.len() {
            let site = SiteId::new(i as u32);
            if !self.is_member(site) {
                continue;
            }
            let mut depth = 0;
            let mut cursor = site;
            while let Some(p) = self.parent_of(cursor) {
                depth += 1;
                cursor = p;
                // Cycle guard: a valid tree never exceeds n hops.
                if depth > self.member.len() {
                    break;
                }
            }
            max_depth = max_depth.max(depth);
        }
        max_depth
    }

    /// Attaches `child` under `parent` with the given edge cost.
    ///
    /// This performs *no* constraint checking: the node-join algorithm is
    /// responsible for degree and latency bounds. It does enforce tree
    /// well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a member or `child` already is.
    pub(crate) fn attach(&mut self, child: SiteId, parent: SiteId, edge_cost: CostMs) {
        assert!(self.is_member(parent), "parent must already be in the tree");
        assert!(!self.is_member(child), "child must not already be a member");
        self.member[child.index()] = true;
        self.parent[child.index()] = Some(parent);
        self.cost_from_source[child.index()] = self.cost_from_source[parent.index()] + edge_cost;
    }

    /// Detaches the leaf `site` from the tree (used by CO-RJ victim
    /// swapping).
    ///
    /// # Panics
    ///
    /// Panics if `site` is the source, not a member, or has children.
    pub(crate) fn detach_leaf(&mut self, site: SiteId) {
        assert!(self.is_member(site), "cannot detach a non-member");
        assert!(site != self.source(), "cannot detach the source");
        assert!(self.children(site).is_empty(), "can only detach leaf nodes");
        self.member[site.index()] = false;
        self.parent[site.index()] = None;
        self.cost_from_source[site.index()] = CostMs::ZERO;
    }
}

/// The spanning forest `F = {T_1, …, T_F}`: one multicast tree per
/// subscribed stream, in the same order as the problem's groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<MulticastTree>,
}

impl Forest {
    /// Assembles a forest from per-group trees.
    pub(crate) fn new(trees: Vec<MulticastTree>) -> Self {
        Forest { trees }
    }

    /// Returns the trees, in the problem's group order.
    pub fn trees(&self) -> &[MulticastTree] {
        &self.trees
    }

    /// Returns the tree disseminating `stream`, if the stream was
    /// subscribed at all.
    pub fn tree_for(&self, stream: StreamId) -> Option<&MulticastTree> {
        self.trees.iter().find(|t| t.stream() == stream)
    }

    /// Returns the number of trees `F`.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Returns true if the forest contains no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Returns the actual out-degree `d_out(RP_i)` of `site` across the
    /// whole forest.
    pub fn out_degree(&self, site: SiteId) -> u32 {
        self.trees
            .iter()
            .flat_map(|t| t.edges())
            .filter(|&(p, _)| p == site)
            .count() as u32
    }

    /// Returns the actual in-degree `d_in(RP_i)` of `site` across the whole
    /// forest.
    pub fn in_degree(&self, site: SiteId) -> u32 {
        self.trees
            .iter()
            .flat_map(|t| t.edges())
            .filter(|&(_, c)| c == site)
            .count() as u32
    }

    /// Returns the number of outgoing edges of `site` that forward streams
    /// originating at *other* sites (the "relaying" share of its
    /// out-degree, Figure 10 of the paper).
    pub fn relay_degree(&self, site: SiteId) -> u32 {
        self.trees
            .iter()
            .filter(|t| t.source() != site)
            .flat_map(|t| t.edges())
            .filter(|&(p, _)| p == site)
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    #[test]
    fn new_tree_contains_only_source() {
        let t = MulticastTree::new(stream(1, 0), 4);
        assert_eq!(t.member_count(), 1);
        assert!(t.is_member(site(1)));
        assert!(!t.is_member(site(0)));
        assert_eq!(t.parent_of(site(1)), None);
        assert_eq!(t.cost_from_source(site(1)), Some(CostMs::ZERO));
        assert_eq!(t.cost_from_source(site(0)), None);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn attach_accumulates_path_cost() {
        let mut t = MulticastTree::new(stream(0, 0), 4);
        t.attach(site(1), site(0), CostMs::new(4));
        t.attach(site(2), site(1), CostMs::new(5));
        assert_eq!(t.cost_from_source(site(2)), Some(CostMs::new(9)));
        assert_eq!(t.parent_of(site(2)), Some(site(1)));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.children(site(0)), vec![site(1)]);
    }

    #[test]
    fn leaves_are_detected() {
        let mut t = MulticastTree::new(stream(0, 0), 4);
        t.attach(site(1), site(0), CostMs::new(1));
        t.attach(site(2), site(1), CostMs::new(1));
        assert!(t.is_leaf(site(2)));
        assert!(!t.is_leaf(site(1)));
        assert!(!t.is_leaf(site(3)), "non-members are not leaves");
    }

    #[test]
    fn detach_leaf_removes_membership() {
        let mut t = MulticastTree::new(stream(0, 0), 3);
        t.attach(site(1), site(0), CostMs::new(2));
        t.detach_leaf(site(1));
        assert!(!t.is_member(site(1)));
        assert_eq!(t.member_count(), 1);
        assert_eq!(t.edges().count(), 0);
    }

    #[test]
    #[should_panic(expected = "leaf")]
    fn detach_rejects_internal_nodes() {
        let mut t = MulticastTree::new(stream(0, 0), 3);
        t.attach(site(1), site(0), CostMs::new(2));
        t.attach(site(2), site(1), CostMs::new(2));
        t.detach_leaf(site(1));
    }

    #[test]
    #[should_panic(expected = "source")]
    fn detach_rejects_source() {
        let mut t = MulticastTree::new(stream(0, 0), 3);
        t.detach_leaf(site(0));
    }

    #[test]
    #[should_panic(expected = "already be in the tree")]
    fn attach_rejects_non_member_parent() {
        let mut t = MulticastTree::new(stream(0, 0), 3);
        t.attach(site(2), site(1), CostMs::new(2));
    }

    #[test]
    fn edges_enumerate_parent_child_pairs() {
        let mut t = MulticastTree::new(stream(2, 0), 4);
        t.attach(site(0), site(2), CostMs::new(1));
        t.attach(site(1), site(2), CostMs::new(1));
        t.attach(site(3), site(0), CostMs::new(1));
        let mut edges: Vec<_> = t.edges().collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![(site(0), site(3)), (site(2), site(0)), (site(2), site(1)),]
        );
    }

    #[test]
    fn forest_degree_accounting() {
        // Two trees: stream from 0 relayed by 1; stream from 1 sent directly.
        let mut t0 = MulticastTree::new(stream(0, 0), 3);
        t0.attach(site(1), site(0), CostMs::new(1));
        t0.attach(site(2), site(1), CostMs::new(1));
        let mut t1 = MulticastTree::new(stream(1, 0), 3);
        t1.attach(site(0), site(1), CostMs::new(1));
        let forest = Forest::new(vec![t0, t1]);

        assert_eq!(forest.out_degree(site(0)), 1);
        assert_eq!(forest.out_degree(site(1)), 2);
        assert_eq!(forest.in_degree(site(2)), 1);
        assert_eq!(forest.in_degree(site(0)), 1);
        // Site 1's relay work: forwarding stream s0.0 to site 2.
        assert_eq!(forest.relay_degree(site(1)), 1);
        assert_eq!(forest.relay_degree(site(0)), 0);
    }

    #[test]
    fn tree_lookup_by_stream() {
        let t0 = MulticastTree::new(stream(0, 0), 3);
        let forest = Forest::new(vec![t0]);
        assert!(forest.tree_for(stream(0, 0)).is_some());
        assert!(forest.tree_for(stream(1, 0)).is_none());
        assert_eq!(forest.len(), 1);
        assert!(!forest.is_empty());
    }
}
