//! The basic node join algorithm (paper Section 4.3.1 and Appendix
//! Algorithm 1) and the mutable forest-construction state it operates on.

use std::borrow::Borrow;

use teeve_types::{CostMs, SiteId};

use crate::forest::{Forest, MulticastTree};
use crate::problem::ProblemInstance;

/// Result of attempting to join one requester into one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The requester was attached under the given parent.
    Joined {
        /// The node now forwarding the stream to the requester.
        parent: SiteId,
    },
    /// Rejected before looking at the tree: the requester's inbound
    /// bandwidth (`d_in(RP_i) ≥ I_i`) is saturated.
    RejectedInbound,
    /// Rejected because the tree is saturated: no member has spare
    /// out-degree, positive remaining forwarding capacity, and a path
    /// within the latency bound.
    RejectedSaturated,
}

impl JoinOutcome {
    /// Returns true for either rejection variant.
    pub fn is_rejected(self) -> bool {
        !matches!(self, JoinOutcome::Joined { .. })
    }
}

/// How the basic node join chooses among eligible parents.
///
/// The paper prescribes [`JoinPolicy::MaxForwardingCapacity`] (load
/// balancing); the other policies exist for the parent-selection ablation
/// bench, which isolates how much of the algorithms' performance comes
/// from that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// The paper's policy: the member with the largest remaining
    /// forwarding capacity `O_k − d_out(RP_k) − m̂_k`.
    #[default]
    MaxForwardingCapacity,
    /// The member offering the cheapest connecting edge (latency-greedy).
    MinCostEdge,
    /// The eligible member with the lowest site id (no balancing at all).
    FirstEligible,
}

/// Mutable state of an in-progress forest construction: the partially built
/// trees plus the shared per-node degree and reservation counters.
///
/// The counters implement the paper's bookkeeping:
///
/// * `d_in(RP_i)`, `d_out(RP_i)` — degrees *across the whole forest*, since
///   "the resources of the nodes are shared among all trees";
/// * `m̂_i` — the reservation counter: the number of streams originating at
///   `RP_i` that are subscribed by at least one other RP but have not yet
///   been disseminated to any other node. One slot of out-degree stays
///   reserved per such stream so that a whole tree is never unbuildable
///   because its source saturated.
///
/// `P` is how the state holds its problem instance: static construction
/// algorithms pass `&ProblemInstance` (zero-copy, scoped to one
/// `construct` call), while long-lived owners (the incremental
/// [`OverlayManager`](crate::OverlayManager), and through it the session
/// runtime and multi-session service) use `Arc<ProblemInstance>` so the
/// state carries its universe without a borrow lifetime.
#[derive(Debug, Clone)]
pub struct ForestState<P: Borrow<ProblemInstance>> {
    problem: P,
    trees: Vec<MulticastTree>,
    din: Vec<u32>,
    dout: Vec<u32>,
    mhat: Vec<u32>,
    reservation_enabled: bool,
}

impl<P: Borrow<ProblemInstance>> ForestState<P> {
    /// Initializes the state: every tree contains just its source, degrees
    /// are zero, and `m̂_i` equals the number of subscribed streams
    /// originating at `RP_i`.
    pub fn new(problem: P) -> Self {
        let n = problem.borrow().site_count();
        let mhat = (0..n as u32)
            .map(|i| problem.borrow().subscribed_local_streams(SiteId::new(i)))
            .collect();
        Self::with_initial_mhat(problem, mhat, true)
    }

    /// Initializes the state with the reservation mechanism disabled
    /// (`m̂_i = 0` everywhere, and no per-stream reserved slots).
    ///
    /// This exists for the ablation study of the paper's reservation
    /// mechanism: without it, sources can spend their whole out-degree on
    /// early trees and later trees may be unbuildable.
    pub fn new_without_reservation(problem: P) -> Self {
        let n = problem.borrow().site_count();
        Self::with_initial_mhat(problem, vec![0; n], false)
    }

    fn with_initial_mhat(problem: P, mhat: Vec<u32>, reservation_enabled: bool) -> Self {
        let n = problem.borrow().site_count();
        let trees = problem
            .borrow()
            .groups()
            .iter()
            .map(|g| MulticastTree::new(g.stream(), n))
            .collect();
        ForestState {
            problem,
            trees,
            din: vec![0; n],
            dout: vec![0; n],
            mhat,
            reservation_enabled,
        }
    }

    /// Returns the problem being solved.
    pub fn problem(&self) -> &ProblemInstance {
        self.problem.borrow()
    }

    /// Returns the current actual in-degree of `site`.
    pub fn in_degree(&self, site: SiteId) -> u32 {
        self.din[site.index()]
    }

    /// Returns the current actual out-degree of `site`.
    pub fn out_degree(&self, site: SiteId) -> u32 {
        self.dout[site.index()]
    }

    /// Returns the current reservation counter `m̂_i` of `site`.
    pub fn reserved(&self, site: SiteId) -> u32 {
        self.mhat[site.index()]
    }

    /// Returns the remaining forwarding capacity
    /// `rfc_i = O_i − d_out(RP_i) − m̂_i` of `site`, which may be negative
    /// when a node's reservations exceed its free slots.
    pub fn remaining_forwarding_capacity(&self, site: SiteId) -> i64 {
        let i = site.index();
        i64::from(self.problem().capacity(site).outbound.count())
            - i64::from(self.dout[i])
            - i64::from(self.mhat[i])
    }

    /// Returns the partially built tree of group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn tree(&self, group: usize) -> &MulticastTree {
        &self.trees[group]
    }

    /// Returns every group's tree as built so far, without cloning.
    pub fn trees(&self) -> &[MulticastTree] {
        &self.trees
    }

    /// Consumes the state, yielding the finished forest.
    pub fn into_forest(self) -> Forest {
        Forest::new(self.trees)
    }

    /// Returns a copy of the forest as built so far, leaving the state
    /// usable for further joins.
    pub fn forest_snapshot(&self) -> Forest {
        Forest::new(self.trees.clone())
    }

    /// **Basic node join** (Appendix Algorithm 1): joins `requester` into
    /// the tree of group `group`.
    ///
    /// Steps, following the paper:
    ///
    /// 1. Inbound check: reject immediately if `d_in ≥ I_i`.
    /// 2. Scan the members of the tree for an eligible parent `RP_k`:
    ///    `d_out(RP_k) < O_k`, and the path cost from the source through
    ///    `RP_k` to the requester stays strictly below `B_cost`.
    /// 3. Among eligible members, pick the one with the largest remaining
    ///    forwarding capacity `O_k − d_out(RP_k) − m̂_k` (load balancing).
    ///    The capacity must be strictly positive — except for the source
    ///    while its reservation for this stream is unconsumed (the tree has
    ///    no other member yet): then the source serves as an unconditional
    ///    fallback, which is how the reservation mechanism guarantees that
    ///    the first copy of a stream can leave even an overcommitted
    ///    source.
    /// 4. Ties break toward the cheaper edge, then the lower site id, so
    ///    construction is deterministic given a request order.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or `requester` is already a member
    /// of the tree.
    pub fn try_join(&mut self, group: usize, requester: SiteId) -> JoinOutcome {
        self.try_join_with_policy(group, requester, JoinPolicy::MaxForwardingCapacity)
    }

    /// The basic node join with an explicit parent-selection policy (see
    /// [`JoinPolicy`]); eligibility (degrees, latency, positive rfc, source
    /// reservation fallback) is identical across policies, only the ranking
    /// among eligible parents changes.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or `requester` is already a member
    /// of the tree.
    pub fn try_join_with_policy(
        &mut self,
        group: usize,
        requester: SiteId,
        policy: JoinPolicy,
    ) -> JoinOutcome {
        let tree = &self.trees[group];
        assert!(
            !tree.is_member(requester),
            "requester {requester} already in tree for {}",
            tree.stream()
        );
        let cap = self.problem().capacity(requester);
        if self.din[requester.index()] >= cap.inbound.count() {
            return JoinOutcome::RejectedInbound;
        }

        let source = tree.source();
        let bound = self.problem().cost_bound();
        let n = self.problem().site_count();

        // (score, Reverse(edge cost), Reverse(site id)) maximization over
        // candidates with strictly positive remaining forwarding capacity.
        let mut best: Option<(i64, CostMs, SiteId)> = None;
        // Algorithm 1's source special case: while the stream's reserved
        // slot is unconsumed (the tree has no other member yet), the source
        // is an *unconditional fallback* candidate — it only needs spare
        // out-degree and a feasible edge, not positive rfc. This is what
        // makes the reservation mechanism work: the first copy of a stream
        // can always leave an overcommitted source.
        let mut source_fallback: Option<CostMs> = None;
        for k in (0..n as u32).map(SiteId::new) {
            if !tree.is_member(k) {
                continue;
            }
            let outbound = self.problem().capacity(k).outbound.count();
            if self.dout[k.index()] >= outbound {
                continue;
            }
            let edge = self.problem().cost(k, requester);
            let path = tree
                .cost_from_source(k)
                .expect("members have a cost")
                .saturating_add(edge);
            if path >= bound {
                continue;
            }
            if self.reservation_enabled && k == source && tree.member_count() == 1 {
                source_fallback = Some(edge);
                continue;
            }
            let score = i64::from(outbound)
                - i64::from(self.dout[k.index()])
                - i64::from(self.mhat[k.index()]);
            if score <= 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((best_score, best_edge, best_site)) => match policy {
                    JoinPolicy::MaxForwardingCapacity => {
                        (score, std::cmp::Reverse(edge), std::cmp::Reverse(k))
                            > (
                                best_score,
                                std::cmp::Reverse(best_edge),
                                std::cmp::Reverse(best_site),
                            )
                    }
                    JoinPolicy::MinCostEdge => {
                        (std::cmp::Reverse(edge), score, std::cmp::Reverse(k))
                            > (
                                std::cmp::Reverse(best_edge),
                                best_score,
                                std::cmp::Reverse(best_site),
                            )
                    }
                    JoinPolicy::FirstEligible => k < best_site,
                },
            };
            if better {
                best = Some((score, edge, k));
            }
        }

        match (best, source_fallback) {
            (Some((_, edge, parent)), _) => {
                self.attach(group, requester, parent, edge);
                JoinOutcome::Joined { parent }
            }
            (None, Some(edge)) => {
                self.attach(group, requester, source, edge);
                JoinOutcome::Joined { parent: source }
            }
            (None, None) => JoinOutcome::RejectedSaturated,
        }
    }

    /// Attaches `child` under `parent` in group `group`, maintaining the
    /// shared degree and reservation counters. Used by the join algorithm
    /// and by CO-RJ's victim swap (which re-attaches under a saturated
    /// parent, trading one of its existing child edges).
    pub(crate) fn attach(&mut self, group: usize, child: SiteId, parent: SiteId, edge: CostMs) {
        let tree = &mut self.trees[group];
        let consuming_reservation = parent == tree.source() && tree.member_count() == 1;
        tree.attach(child, parent, edge);
        self.dout[parent.index()] += 1;
        self.din[child.index()] += 1;
        if consuming_reservation {
            let src = tree.source();
            self.mhat[src.index()] = self.mhat[src.index()].saturating_sub(1);
        }
    }

    /// Detaches the leaf `child` from group `group`, reverting the degree
    /// counters. The reservation counter is *not* re-incremented: the paper
    /// treats a stream as "disseminated" once it has ever left its source
    /// (CO-RJ swaps only remove leaves, never the source's last child edge
    /// carrying other subtrees).
    pub(crate) fn detach_leaf(&mut self, group: usize, child: SiteId) {
        let tree = &mut self.trees[group];
        let parent = tree
            .parent_of(child)
            .expect("detached node must have a parent");
        tree.detach_leaf(child);
        self.dout[parent.index()] -= 1;
        self.din[child.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_types::{CostMatrix, Degree, StreamId};

    use crate::problem::NodeCapacity;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    /// Reproduces the paper's **Figure 6** worked example.
    ///
    /// One existing tree rooted at S with members {S, A, B, C, D, E}; node F
    /// joins. Per-node `(O_i, d_out, m̂_i)`:
    ///
    /// * S: (20, 7, 7)  → rfc 6
    /// * A: (15, 5, 3)  → rfc 7  (second-largest rfc, path 4+5 = 9 < 10)
    /// * B: (12, 4, 4)  → rfc 4
    /// * C: (10, 4, 1)  → rfc 5  (but its path cost already exceeds bound)
    /// * D: (22, 8, 0)  → rfc 14 (largest, but path 8+3+3 = 14 > 10)
    /// * E: (8, 4, 4)   → rfc 0  (no forwarding capacity left)
    ///
    /// With cost bound 10, A must be chosen as F's parent.
    #[test]
    fn figure6_example_picks_a() {
        // Site indices: S=0, A=1, B=2, C=3, D=4, E=5, F=6.
        let (s, a, b, c, d, e, f) = (
            site(0),
            site(1),
            site(2),
            site(3),
            site(4),
            site(5),
            site(6),
        );
        let costs = CostMatrix::from_fn(7, |i, j| {
            let pair = (i.min(j), i.max(j));
            let ms = match pair {
                (0, 1) => 4, // S-A
                (0, 2) => 8, // S-B
                (2, 3) => 3, // B-C
                (3, 4) => 3, // C-D
                (2, 5) => 3, // B-E
                (1, 6) => 5, // A-F (4+5 = 9 < 10)
                (4, 6) => 3, // D-F (14+3 > 10)
                (0, 6) => 9, // S-F (9 < 10, S is eligible with rfc 6)
                (2, 6) => 4, // B-F (8+4 > 10)
                (3, 6) => 1, // C-F (11+1 > 10)
                (5, 6) => 1, // E-F (rfc 0, ineligible anyway)
                _ => 50,
            };
            CostMs::new(ms)
        });

        // Capacities O_i from the figure; inbound is irrelevant here.
        let caps = vec![
            NodeCapacity::symmetric(Degree::new(20)), // S
            NodeCapacity::symmetric(Degree::new(15)), // A
            NodeCapacity::symmetric(Degree::new(12)), // B
            NodeCapacity::symmetric(Degree::new(10)), // C
            NodeCapacity::symmetric(Degree::new(22)), // D
            NodeCapacity::symmetric(Degree::new(8)),  // E
            NodeCapacity::symmetric(Degree::new(10)), // F
        ];

        // One group: S's stream, subscribed by everyone else.
        let problem = ProblemInstance::builder(costs, CostMs::new(10))
            .capacities(caps)
            .streams_per_site(&[1, 0, 0, 0, 0, 0, 0])
            .subscribe(a, stream(0, 0))
            .subscribe(b, stream(0, 0))
            .subscribe(c, stream(0, 0))
            .subscribe(d, stream(0, 0))
            .subscribe(e, stream(0, 0))
            .subscribe(f, stream(0, 0))
            .build()
            .unwrap();

        let mut state = ForestState::new(&problem);
        // Assemble the existing tree of Figure 6 directly.
        state.attach(0, a, s, CostMs::new(4)); // path(A) = 4
        state.attach(0, b, s, CostMs::new(8)); // path(B) = 8
        state.attach(0, c, b, CostMs::new(3)); // path(C) = 11
        state.attach(0, d, c, CostMs::new(3)); // path(D) = 14
        state.attach(0, e, b, CostMs::new(3)); // path(E) = 11

        // Overlay the figure's degree/reservation numbers on the state. The
        // extra d_out/m̂ come from other trees not shown in the figure.
        state.dout = vec![7, 5, 4, 4, 8, 4, 0];
        state.mhat = vec![7, 3, 4, 1, 0, 4, 0];
        state.din = vec![0; 7];

        assert_eq!(state.remaining_forwarding_capacity(s), 6);
        assert_eq!(state.remaining_forwarding_capacity(a), 7);
        assert_eq!(state.remaining_forwarding_capacity(b), 4);
        assert_eq!(state.remaining_forwarding_capacity(c), 5);
        assert_eq!(state.remaining_forwarding_capacity(d), 14);
        assert_eq!(state.remaining_forwarding_capacity(e), 0);

        let outcome = state.try_join(0, f);
        assert_eq!(outcome, JoinOutcome::Joined { parent: a });
        assert_eq!(state.tree(0).cost_from_source(f), Some(CostMs::new(9)));
        assert_eq!(state.out_degree(a), 6);
        assert_eq!(state.in_degree(f), 1);
    }

    fn tiny_problem(bound: u32, capacity: u32) -> ProblemInstance {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        ProblemInstance::builder(costs, CostMs::new(bound))
            .symmetric_capacities(Degree::new(capacity))
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap()
    }

    #[test]
    fn inbound_saturation_rejects_before_tree_scan() {
        let problem = tiny_problem(100, 2);
        let mut state = ForestState::new(&problem);
        state.din[1] = 2; // site 1's inbound already full
        assert_eq!(state.try_join(0, site(1)), JoinOutcome::RejectedInbound);
    }

    #[test]
    fn source_reservation_admits_first_child() {
        // Source has O=1 and one subscribed stream: rfc = 1-0-1 = 0, but the
        // reservation is exactly for this stream, so the first join works.
        let problem = tiny_problem(100, 1);
        let mut state = ForestState::new(&problem);
        assert_eq!(state.remaining_forwarding_capacity(site(0)), (-1 + 1)); // O=1, mhat=1
        let outcome = state.try_join(0, site(1));
        assert_eq!(outcome, JoinOutcome::Joined { parent: site(0) });
        assert_eq!(state.reserved(site(0)), 0, "reservation consumed");
        // Source's out-degree now saturated; site 2 cannot join through it
        // and site 1 has rfc = 1 - 0 - 0 = 1, so site 1 relays.
        let outcome = state.try_join(0, site(2));
        assert_eq!(outcome, JoinOutcome::Joined { parent: site(1) });
    }

    #[test]
    fn latency_bound_is_strict() {
        // Edge cost 4, bound 4: path of cost 4 is NOT strictly below bound.
        let problem = tiny_problem(4, 10);
        let mut state = ForestState::new(&problem);
        assert_eq!(state.try_join(0, site(1)), JoinOutcome::RejectedSaturated);
        // Bound 5 admits it.
        let problem = tiny_problem(5, 10);
        let mut state = ForestState::new(&problem);
        assert!(matches!(
            state.try_join(0, site(1)),
            JoinOutcome::Joined { .. }
        ));
    }

    #[test]
    fn load_balancing_prefers_max_rfc_parent() {
        // Star costs; make site 1 (already in tree) have much more spare
        // capacity than the source, so the second joiner goes through 1.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(2)),  // source: tight
                NodeCapacity::symmetric(Degree::new(20)), // rich relay
                NodeCapacity::symmetric(Degree::new(5)),
                NodeCapacity::symmetric(Degree::new(5)),
            ])
            .streams_per_site(&[2, 0, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 1))
            .build()
            .unwrap();
        let mut state = ForestState::new(&problem);
        // Source rfc = 2 - 0 - 2 = 0 (+1 reservation bonus) -> joins ok.
        assert_eq!(
            state.try_join(0, site(1)),
            JoinOutcome::Joined { parent: site(0) }
        );
        // Now source rfc = 2 - 1 - 1 = 0, no bonus (tree has 2 members);
        // site 1 rfc = 20 - 0 - 0 = 20. Site 2 must attach under site 1.
        assert_eq!(
            state.try_join(0, site(2)),
            JoinOutcome::Joined { parent: site(1) }
        );
    }

    #[test]
    fn overcommitted_source_serves_first_copies_until_out_degree_exhausts() {
        // Source publishes three subscribed streams but has out-degree 2:
        // the reservation fallback lets the first copy of each stream out
        // while physical slots remain, then the third tree is unbuildable.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(1));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .capacities(vec![
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(2),
                },
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(0),
                },
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(0),
                },
            ])
            .streams_per_site(&[3, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(1), stream(0, 1))
            .subscribe(site(1), stream(0, 2))
            .build()
            .unwrap();
        let mut state = ForestState::new(&problem);
        // mhat[0] = 3 > O = 2: rfc is negative, but the reservation
        // fallback admits the first copy of each stream.
        assert_eq!(
            state.try_join(0, site(1)),
            JoinOutcome::Joined { parent: site(0) }
        );
        assert_eq!(
            state.try_join(1, site(1)),
            JoinOutcome::Joined { parent: site(0) }
        );
        // Out-degree exhausted: the third stream's tree cannot start.
        assert_eq!(state.try_join(2, site(1)), JoinOutcome::RejectedSaturated);
    }

    #[test]
    fn detach_leaf_reverts_degrees() {
        let problem = tiny_problem(100, 5);
        let mut state = ForestState::new(&problem);
        state.try_join(0, site(1));
        let (dout0, din1) = (state.out_degree(site(0)), state.in_degree(site(1)));
        state.try_join(0, site(2));
        state.detach_leaf(0, site(2));
        assert_eq!(state.out_degree(site(0)), dout0.max(1));
        assert_eq!(state.in_degree(site(1)), din1);
        assert_eq!(state.in_degree(site(2)), 0);
        assert!(!state.tree(0).is_member(site(2)));
    }

    #[test]
    fn disabled_reservation_lets_early_trees_starve_later_ones() {
        // Source out-degree 2 with three subscribed streams: with the
        // reservation fallback the first copies of two streams get out and
        // the third is rejected; without reservations the behavior is the
        // same here, but the *relay* capacity differs: a node with pending
        // local streams can spend all slots on relaying.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(1));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .capacities(vec![
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(3),
                },
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(1),
                },
                NodeCapacity {
                    inbound: Degree::new(10),
                    outbound: Degree::new(0),
                },
            ])
            .streams_per_site(&[1, 1, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 0))
            .build()
            .unwrap();
        // With reservations: site 1 holds one slot for its own stream
        // (mhat = 1, O = 1 -> rfc = 0), so it refuses to relay s0.0.
        let mut with_res = ForestState::new(&problem);
        assert_eq!(
            with_res.try_join(0, site(1)),
            JoinOutcome::Joined { parent: site(0) }
        );
        assert_eq!(
            with_res.try_join(0, site(2)),
            JoinOutcome::Joined { parent: site(0) },
            "source serves site 2 directly; site 1 cannot relay"
        );
        // Without reservations: site 1's slot is up for grabs as relay
        // capacity (rfc = 1), and max-rfc selection prefers it over the
        // source (rfc = 3 - 1 - 0 = 2 for source... source still larger).
        let mut without_res = ForestState::new_without_reservation(&problem);
        assert_eq!(
            without_res.try_join(0, site(1)),
            JoinOutcome::Joined { parent: site(0) }
        );
        assert_eq!(
            without_res.reserved(site(0)),
            0,
            "no reservation bookkeeping"
        );
    }

    #[test]
    fn join_policies_rank_parents_differently() {
        // Tree with two eligible relays: site 1 (cheap edge, low rfc) and
        // site 2 (expensive edge, high rfc). Site 3 joins.
        let costs = CostMatrix::from_fn(4, |i, j| {
            let pair = (i.min(j), i.max(j));
            CostMs::new(match pair {
                (1, 3) => 1, // cheap edge to relay 1
                (2, 3) => 5, // expensive edge to relay 2
                _ => 2,
            })
        });
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(2)),
                NodeCapacity::symmetric(Degree::new(2)), // low spare
                NodeCapacity::symmetric(Degree::new(20)), // high spare
                NodeCapacity::symmetric(Degree::new(2)),
            ])
            .streams_per_site(&[1, 0, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .build()
            .unwrap();

        let build_base = || {
            let mut st = ForestState::new(&problem);
            st.attach(0, site(1), site(0), CostMs::new(2));
            st.attach(0, site(2), site(0), CostMs::new(2));
            st
        };

        // Max-rfc picks the rich relay (site 2) despite the pricier edge.
        let mut st = build_base();
        assert_eq!(
            st.try_join_with_policy(0, site(3), JoinPolicy::MaxForwardingCapacity),
            JoinOutcome::Joined { parent: site(2) }
        );
        // Min-cost picks the cheap edge (site 1).
        let mut st = build_base();
        assert_eq!(
            st.try_join_with_policy(0, site(3), JoinPolicy::MinCostEdge),
            JoinOutcome::Joined { parent: site(1) }
        );
        // First-eligible picks the lowest id among eligible relays. The
        // source (site 0) is out of spare out-degree (2 of 2 used), so the
        // lowest eligible is site 1.
        let mut st = build_base();
        assert_eq!(
            st.try_join_with_policy(0, site(3), JoinPolicy::FirstEligible),
            JoinOutcome::Joined { parent: site(1) }
        );
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn joining_twice_panics() {
        let problem = tiny_problem(100, 5);
        let mut state = ForestState::new(&problem);
        state.try_join(0, site(1));
        state.try_join(0, site(1));
    }
}
