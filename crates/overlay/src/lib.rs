//! Static overlay construction for multi-site 3D tele-immersion — the core
//! contribution of *Wu et al., "Towards Multi-Site Collaboration in 3D
//! Tele-Immersive Environments" (ICDCS 2008)*.
//!
//! Given the subscription requests of a 3DTI session, a construction
//! algorithm organizes the rendezvous points into a **forest of multicast
//! trees** — one tree per subscribed stream — subject to per-node
//! inbound/outbound bandwidth bounds (in streams) and an end-to-end latency
//! bound, minimizing the request rejection ratio. The underlying decision
//! problem is NP-complete (multicast routing with two or more constraints,
//! Wang & Crowcroft), so the paper explores heuristics:
//!
//! | Algorithm | Type | Order of construction |
//! |-----------|------|----------------------|
//! | [`LargestTreeFirst`] (LTF) | tree-based | largest multicast group first |
//! | [`SmallestTreeFirst`] (STF) | tree-based | smallest group first |
//! | [`MinimumCapacityTreeFirst`] (MCTF) | tree-based | least aggregate forwarding capacity first |
//! | [`GranLtf`] | spectrum | LTF order, `g` trees at a time |
//! | [`RandomJoin`] (RJ) | randomized | all requests shuffled together |
//! | [`CorrelatedRandomJoin`] (CO-RJ) | randomized | RJ + criticality-based victim swapping |
//!
//! All of them share the **basic node join** of Section 4.3.1 (load
//! balancing toward the member with maximum remaining forwarding capacity,
//! with per-source reservation slots), implemented in [`ForestState`].
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
//! use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
//!
//! // Three sites fully subscribing to one stream from site 0.
//! let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(10));
//! let problem = ProblemInstance::builder(costs, CostMs::new(100))
//!     .symmetric_capacities(Degree::new(8))
//!     .streams_per_site(&[1, 1, 1])
//!     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
//!     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
//!     .build()?;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(2008);
//! let outcome = RandomJoin::default().construct(&problem, &mut rng);
//! assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
//!
//! let tree = outcome.forest().tree_for(StreamId::new(SiteId::new(0), 0)).unwrap();
//! assert!(tree.is_member(SiteId::new(1)));
//! assert!(tree.is_member(SiteId::new(2)));
//! # Ok::<(), teeve_overlay::ProblemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;
mod baseline;
mod dynamic;
mod forest;
mod join;
mod metrics;
mod optimal;
mod outcome;
mod problem;
mod quality;
mod spectrum;
mod validate;

pub use algorithms::{
    ConstructionAlgorithm, CorrelatedRandomJoin, GranLtf, LargestTreeFirst,
    MinimumCapacityTreeFirst, RandomJoin, SmallestTreeFirst,
};
pub use baseline::UnicastBaseline;
pub use dynamic::{
    DynamicError, OverlayManager, ScoredAdmission, SubscribeResult, UnsubscribeResult,
};
pub use forest::{Forest, MulticastTree};
pub use join::{ForestState, JoinOutcome, JoinPolicy};
pub use metrics::ConstructionMetrics;
pub use optimal::{OptimalError, OptimalSolver};
pub use outcome::ConstructionOutcome;
pub use problem::{
    MulticastGroup, NodeCapacity, ProblemBuilder, ProblemError, ProblemInstance, Request,
};
pub use quality::{fit_qualities, QualityFit};
pub use spectrum::{full_granularity_range, granularity_sweep, GranularityPoint};
pub use validate::{validate_forest, InvariantViolation};
