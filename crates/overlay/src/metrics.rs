//! Evaluation metrics: the rejection ratios of Equations 1 and 3 and the
//! load-balancing statistics of Figure 10.

use serde::{Deserialize, Serialize};
use teeve_types::{CostMs, SiteId};

use crate::forest::Forest;
use crate::problem::ProblemInstance;

/// Metrics of one constructed forest.
///
/// * [`rejection_ratio`](Self::rejection_ratio) — the paper's optimization
///   goal `X`: "the total rejection ratio of all requests in the system",
///   i.e. rejected requests over total requests. (Equation 1 writes this
///   as a double sum of per-pair fractions `û_{i→j}/u_{i→j}`; taken
///   literally that sum grows with `N²` while the paper plots values in
///   `[0, 0.45]`, so the prose definition — aggregate fraction — is the
///   one the figures use. The literal per-pair mean is also exposed as
///   [`pair_rejection_ratio`](Self::pair_rejection_ratio).)
/// * [`weighted_rejection`](Self::weighted_rejection) — the
///   correlation-aware metric `X′` (Equation 3), which weighs each lost
///   stream by its criticality `Q_{i→j} = 1 / u_{i→j}` and scales by the
///   subscriber's scarcest per-site subscription `u_{i→x} = min_j u_{i→j}`;
///   normalized by the number of requesting pairs for comparability across
///   session sizes.
/// * Degree utilization and relay statistics reproduce Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstructionMetrics {
    /// Total number of subscription requests in the problem.
    pub total_requests: usize,
    /// Requests satisfied by the forest.
    pub accepted_requests: usize,
    /// Requests rejected (total − accepted).
    pub rejected_requests: usize,
    /// The rejection ratio `X`: rejected over total requests, in `[0, 1]`.
    pub rejection_ratio: f64,
    /// The literal Equation 1 reading: mean over ordered pairs with
    /// `u_{i→j} > 0` of the per-pair rejection fraction.
    pub pair_rejection_ratio: f64,
    /// The criticality-weighted rejection `X′` (Equation 3).
    pub weighted_rejection: f64,
    /// Mean over nodes of `d_out(RP_i) / O_i`.
    pub mean_out_degree_utilization: f64,
    /// Population standard deviation of the out-degree utilization.
    pub stddev_out_degree_utilization: f64,
    /// Mean over nodes of the fraction of out-degree spent forwarding
    /// streams that originate at *other* sites.
    pub mean_relay_fraction: f64,
    /// Mean over nodes of `d_in(RP_i) / I_i`.
    pub mean_in_degree_utilization: f64,
    /// Deepest tree in the forest, in hops.
    pub max_tree_depth: usize,
    /// Largest source-to-subscriber path latency in the forest.
    pub max_path_cost: CostMs,
}

impl ConstructionMetrics {
    /// Computes all metrics for `forest` against `problem`.
    // Index loops mirror the paper's ordered-pair sums (Equations 1-3).
    #[allow(clippy::needless_range_loop)]
    pub fn compute(problem: &ProblemInstance, forest: &Forest) -> Self {
        let n = problem.site_count();

        // û_{i→j}: rejected request counts per ordered (subscriber, origin).
        let mut rejected = vec![vec![0u32; n]; n];
        let mut total_requests = 0usize;
        let mut rejected_requests = 0usize;
        for group in problem.groups() {
            let tree = forest
                .tree_for(group.stream())
                .expect("forest has a tree per group");
            let origin = group.source().index();
            for &sub in group.subscribers() {
                total_requests += 1;
                if !tree.is_member(sub) {
                    rejected[sub.index()][origin] += 1;
                    rejected_requests += 1;
                }
            }
        }

        // Equation 1, normalized over ordered pairs with u > 0.
        let mut pair_count = 0usize;
        let mut ratio_sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let u = problem.request_count(SiteId::new(i as u32), SiteId::new(j as u32));
                if u == 0 {
                    continue;
                }
                pair_count += 1;
                ratio_sum += f64::from(rejected[i][j]) / f64::from(u);
            }
        }
        let pair_rejection_ratio = if pair_count == 0 {
            0.0
        } else {
            ratio_sum / pair_count as f64
        };
        let rejection_ratio = if total_requests == 0 {
            0.0
        } else {
            rejected_requests as f64 / total_requests as f64
        };

        // Equation 3: X′ = Σ_i (Σ_j û_{i→j} / u²_{i→j}) · u_{i→x},
        // u_{i→x} = min_j u_{i→j} over pairs with u > 0; same normalization.
        let mut weighted_sum = 0.0;
        for i in 0..n {
            let mut inner = 0.0;
            let mut u_min: Option<u32> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let u = problem.request_count(SiteId::new(i as u32), SiteId::new(j as u32));
                if u == 0 {
                    continue;
                }
                u_min = Some(u_min.map_or(u, |m| m.min(u)));
                inner += f64::from(rejected[i][j]) / (f64::from(u) * f64::from(u));
            }
            if let Some(u_min) = u_min {
                weighted_sum += inner * f64::from(u_min);
            }
        }
        let weighted_rejection = if pair_count == 0 {
            0.0
        } else {
            weighted_sum / pair_count as f64
        };

        // Figure 10 statistics.
        let mut out_utils = Vec::with_capacity(n);
        let mut relay_fracs = Vec::with_capacity(n);
        let mut in_utils = Vec::with_capacity(n);
        for site in SiteId::all(n) {
            let cap = problem.capacity(site);
            if cap.outbound.count() > 0 {
                out_utils
                    .push(f64::from(forest.out_degree(site)) / f64::from(cap.outbound.count()));
                relay_fracs
                    .push(f64::from(forest.relay_degree(site)) / f64::from(cap.outbound.count()));
            }
            if cap.inbound.count() > 0 {
                in_utils.push(f64::from(forest.in_degree(site)) / f64::from(cap.inbound.count()));
            }
        }

        let max_tree_depth = forest.trees().iter().map(|t| t.depth()).max().unwrap_or(0);
        let max_path_cost = forest
            .trees()
            .iter()
            .flat_map(|t| {
                (0..n as u32)
                    .map(SiteId::new)
                    .filter_map(move |s| t.cost_from_source(s))
            })
            .max()
            .unwrap_or(CostMs::ZERO);

        ConstructionMetrics {
            total_requests,
            accepted_requests: total_requests - rejected_requests,
            rejected_requests,
            rejection_ratio,
            pair_rejection_ratio,
            weighted_rejection,
            mean_out_degree_utilization: mean(&out_utils),
            stddev_out_degree_utilization: stddev(&out_utils),
            mean_relay_fraction: mean(&relay_fracs),
            mean_in_degree_utilization: mean(&in_utils),
            max_tree_depth,
            max_path_cost,
        }
    }

    /// Returns the rejection ratio `X`: rejected over total requests.
    pub fn rejection_ratio(&self) -> f64 {
        self.rejection_ratio
    }

    /// Returns the literal Equation 1 reading: the mean per-pair rejection
    /// fraction.
    pub fn pair_rejection_ratio(&self) -> f64 {
        self.pair_rejection_ratio
    }

    /// Returns the criticality-weighted rejection `X′` (Equation 3).
    pub fn weighted_rejection(&self) -> f64 {
        self.weighted_rejection
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::ForestState;
    use teeve_types::{CostMatrix, Degree, StreamId};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn three_site_problem(capacity: u32) -> ProblemInstance {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(capacity))
            .streams_per_site(&[2, 2, 2])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn everything_accepted_means_zero_rejection() {
        let problem = three_site_problem(10);
        let mut state = ForestState::new(&problem);
        for (g, group) in problem.groups().iter().enumerate() {
            for &s in group.subscribers() {
                assert!(!state.try_join(g, s).is_rejected());
            }
        }
        let forest = state.into_forest();
        let m = ConstructionMetrics::compute(&problem, &forest);
        assert_eq!(m.total_requests, 4);
        assert_eq!(m.accepted_requests, 4);
        assert_eq!(m.rejection_ratio, 0.0);
        assert_eq!(m.weighted_rejection, 0.0);
        assert!(m.max_path_cost < CostMs::new(100));
    }

    #[test]
    fn everything_rejected_means_full_rejection() {
        let problem = three_site_problem(10);
        // Never join anyone: empty trees.
        let state = ForestState::new(&problem);
        let forest = state.into_forest();
        let m = ConstructionMetrics::compute(&problem, &forest);
        assert_eq!(m.accepted_requests, 0);
        assert_eq!(m.rejection_ratio, 1.0);
        assert!(m.weighted_rejection > 0.0);
    }

    #[test]
    fn rejection_ratios_count_aggregate_and_per_pair() {
        // Pairs with requests: (1,0) u=1, (2,0) u=1, (0,1) u=1, (2,1) u=1.
        let problem = three_site_problem(10);
        let mut state = ForestState::new(&problem);
        // Accept only group 0's two requests (stream s0.0).
        for &s in problem.groups()[0].subscribers().to_vec().iter() {
            state.try_join(0, s);
        }
        let forest = state.into_forest();
        let m = ConstructionMetrics::compute(&problem, &forest);
        // 2 of 4 requests rejected -> aggregate X = 0.5.
        assert!((m.rejection_ratio - 0.5).abs() < 1e-12);
        // Per-pair: (0,1) and (2,1) fully rejected, the others fully
        // accepted: (0 + 0 + 1 + 1) / 4 = 0.5 as well here.
        assert!((m.pair_rejection_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_and_pair_metrics_differ_on_skewed_losses() {
        // Site 0 requests 3 streams from site 1 and 1 from site 2; reject
        // only the single site-2 stream.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[0, 3, 1])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(0), stream(1, 1))
            .subscribe(site(0), stream(1, 2))
            .subscribe(site(0), stream(2, 0))
            .build()
            .unwrap();
        let mut state = ForestState::new(&problem);
        for g in 0..problem.group_count() {
            if problem.groups()[g].stream() == stream(2, 0) {
                continue;
            }
            state.try_join(g, site(0));
        }
        let m = ConstructionMetrics::compute(&problem, &state.into_forest());
        // Aggregate: 1 of 4 rejected.
        assert!((m.rejection_ratio - 0.25).abs() < 1e-12);
        // Per-pair: pair (0,1) has 0 rejected, pair (0,2) has 1/1: mean 0.5.
        assert!((m.pair_rejection_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_rejection_penalizes_scarce_streams_more() {
        // Site 0 subscribes 4 streams from site 1 and 1 stream from site 2.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let base = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[0, 4, 1])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(0), stream(1, 1))
            .subscribe(site(0), stream(1, 2))
            .subscribe(site(0), stream(1, 3))
            .subscribe(site(0), stream(2, 0))
            .build()
            .unwrap();

        // Case A: lose one of the four streams from site 1.
        let mut state = ForestState::new(&base);
        for g in 0..base.group_count() {
            let group_stream = base.groups()[g].stream();
            if group_stream == stream(1, 0) {
                continue; // rejected
            }
            state.try_join(g, site(0));
        }
        let lose_bulk = ConstructionMetrics::compute(&base, &state.into_forest());

        // Case B: lose the single stream from site 2.
        let mut state = ForestState::new(&base);
        for g in 0..base.group_count() {
            let group_stream = base.groups()[g].stream();
            if group_stream == stream(2, 0) {
                continue; // rejected
            }
            state.try_join(g, site(0));
        }
        let lose_scarce = ConstructionMetrics::compute(&base, &state.into_forest());

        assert_eq!(lose_bulk.rejected_requests, 1);
        assert_eq!(lose_scarce.rejected_requests, 1);
        assert!(
            lose_scarce.weighted_rejection > lose_bulk.weighted_rejection,
            "losing the only stream of a scene ({}) must outweigh losing one of four ({})",
            lose_scarce.weighted_rejection,
            lose_bulk.weighted_rejection
        );
    }

    #[test]
    fn utilization_statistics_reflect_degrees() {
        let problem = three_site_problem(2);
        let mut state = ForestState::new(&problem);
        for (g, group) in problem.groups().iter().enumerate() {
            for &s in group.subscribers() {
                state.try_join(g, s);
            }
        }
        let forest = state.into_forest();
        let m = ConstructionMetrics::compute(&problem, &forest);
        assert!(m.mean_out_degree_utilization > 0.0);
        assert!(m.mean_out_degree_utilization <= 1.0);
        assert!(m.mean_in_degree_utilization > 0.0);
        assert!(m.stddev_out_degree_utilization >= 0.0);
    }

    #[test]
    fn empty_problem_yields_zero_metrics() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(2));
        let problem = ProblemInstance::builder(costs, CostMs::new(10))
            .symmetric_capacities(Degree::new(5))
            .streams_per_site(&[1, 1, 1])
            .build()
            .unwrap();
        let forest = ForestState::new(&problem).into_forest();
        let m = ConstructionMetrics::compute(&problem, &forest);
        assert_eq!(m.total_requests, 0);
        assert_eq!(m.rejection_ratio, 0.0);
        assert_eq!(m.weighted_rejection, 0.0);
    }
}
