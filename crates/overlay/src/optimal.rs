//! An exact solver for small forest-construction instances.
//!
//! The decision problem is NP-complete (Wang & Crowcroft via the paper's
//! Section 4.2), so no heuristic comes with a quality guarantee. For small
//! sessions, however, the optimum is computable: this module enumerates,
//! per multicast group, every feasible tree shape (parent assignment over
//! every subset of the group's subscribers), then branch-and-bounds across
//! groups over the shared degree budget. The result is the **minimum
//! possible number of rejected requests**, used to measure the optimality
//! gap of the paper's heuristics.

use std::fmt;

use teeve_types::{CostMs, SiteId};

use crate::forest::{Forest, MulticastTree};
use crate::outcome::ConstructionOutcome;
use crate::problem::ProblemInstance;

/// Error produced when an instance is too large for exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimalError {
    /// The instance exceeds the request cap.
    TooManyRequests {
        /// Requests in the instance.
        requests: usize,
        /// The solver's cap.
        cap: usize,
    },
    /// One multicast group exceeds the per-group subscriber cap.
    GroupTooLarge {
        /// Subscribers in the largest group.
        size: usize,
        /// The solver's cap.
        cap: usize,
    },
}

impl fmt::Display for OptimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimalError::TooManyRequests { requests, cap } => {
                write!(f, "{requests} requests exceed the exact-search cap {cap}")
            }
            OptimalError::GroupTooLarge { size, cap } => {
                write!(f, "group of {size} subscribers exceeds the cap {cap}")
            }
        }
    }
}

impl std::error::Error for OptimalError {}

/// One feasible tree shape for a group: parent per subscriber (`None` =
/// rejected) plus its degree footprint.
struct Candidate {
    rejections: u32,
    /// Parent per subscriber index, aligned with the group's subscriber
    /// list.
    parents: Vec<Option<SiteId>>,
    out_delta: Vec<u32>,
    in_delta: Vec<u32>,
}

/// Exhaustive branch-and-bound solver.
///
/// # Examples
///
/// ```
/// use teeve_overlay::{OptimalSolver, ProblemInstance};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// // A source with out-degree 1 and two subscribers: the optimum relays
/// // through the first subscriber and rejects nothing.
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .capacities(vec![
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(1)),
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
///         teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
///     ])
///     .streams_per_site(&[1, 0, 0])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
///     .build()?;
/// let outcome = OptimalSolver::default().solve(&problem)?;
/// assert_eq!(outcome.metrics().rejected_requests, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalSolver {
    max_requests: usize,
    max_group: usize,
}

impl OptimalSolver {
    /// Creates a solver with explicit size caps.
    pub fn new(max_requests: usize, max_group: usize) -> Self {
        OptimalSolver {
            max_requests,
            max_group,
        }
    }

    /// Finds a forest with the minimum number of rejected requests.
    ///
    /// # Errors
    ///
    /// Returns an error when the instance exceeds the solver's caps —
    /// exact search is exponential, the caps keep it interactive.
    pub fn solve(&self, problem: &ProblemInstance) -> Result<ConstructionOutcome, OptimalError> {
        let requests = problem.total_requests();
        if requests > self.max_requests {
            return Err(OptimalError::TooManyRequests {
                requests,
                cap: self.max_requests,
            });
        }
        if let Some(size) = problem.groups().iter().map(|g| g.len()).max() {
            if size > self.max_group {
                return Err(OptimalError::GroupTooLarge {
                    size,
                    cap: self.max_group,
                });
            }
        }

        let n = problem.site_count();

        // Per-group candidate tree shapes, each sorted by rejections so the
        // branch-and-bound meets good solutions early.
        let group_candidates: Vec<Vec<Candidate>> = (0..problem.group_count())
            .map(|g| {
                let mut cands = enumerate_group(problem, g);
                cands.sort_by_key(|c| c.rejections);
                cands
            })
            .collect();

        // Suffix lower bounds: the fewest rejections any candidate of each
        // remaining group can contribute, ignoring degree interactions.
        let mut suffix_min = vec![0u32; group_candidates.len() + 1];
        for g in (0..group_candidates.len()).rev() {
            let min_here = group_candidates[g]
                .iter()
                .map(|c| c.rejections)
                .min()
                .unwrap_or(0);
            suffix_min[g] = suffix_min[g + 1] + min_here;
        }

        let mut search = Search {
            group_candidates: &group_candidates,
            suffix_min: &suffix_min,
            out_left: (0..n)
                .map(|i| problem.capacity(SiteId::new(i as u32)).outbound.count())
                .collect(),
            in_left: (0..n)
                .map(|i| problem.capacity(SiteId::new(i as u32)).inbound.count())
                .collect(),
            chosen: Vec::new(),
            best_rejections: u32::MAX,
            best_choice: None,
        };
        search.dfs(0, 0);

        let choice = search
            .best_choice
            .expect("every group has the all-rejected candidate, so a solution exists");
        let trees = (0..problem.group_count())
            .map(|g| build_tree(problem, g, &group_candidates[g][choice[g]]))
            .collect();
        Ok(ConstructionOutcome::new(
            "Optimal",
            problem,
            Forest::new(trees),
        ))
    }
}

impl Default for OptimalSolver {
    /// Caps at 12 requests and 5 subscribers per group — fractions of a
    /// second of search.
    fn default() -> Self {
        OptimalSolver::new(12, 5)
    }
}

struct Search<'a> {
    group_candidates: &'a [Vec<Candidate>],
    suffix_min: &'a [u32],
    out_left: Vec<u32>,
    in_left: Vec<u32>,
    chosen: Vec<usize>,
    best_rejections: u32,
    best_choice: Option<Vec<usize>>,
}

impl Search<'_> {
    fn dfs(&mut self, group: usize, rejected: u32) {
        if rejected + self.suffix_min[group] >= self.best_rejections {
            return; // cannot beat the incumbent
        }
        if group == self.group_candidates.len() {
            self.best_rejections = rejected;
            self.best_choice = Some(self.chosen.clone());
            return;
        }
        for (i, cand) in self.group_candidates[group].iter().enumerate() {
            if !self.fits(cand) {
                continue;
            }
            self.apply(cand);
            self.chosen.push(i);
            self.dfs(group + 1, rejected + cand.rejections);
            self.chosen.pop();
            self.revert(cand);
        }
    }

    fn fits(&self, cand: &Candidate) -> bool {
        cand.out_delta
            .iter()
            .zip(&self.out_left)
            .all(|(d, left)| d <= left)
            && cand
                .in_delta
                .iter()
                .zip(&self.in_left)
                .all(|(d, left)| d <= left)
    }

    fn apply(&mut self, cand: &Candidate) {
        for (left, d) in self.out_left.iter_mut().zip(&cand.out_delta) {
            *left -= d;
        }
        for (left, d) in self.in_left.iter_mut().zip(&cand.in_delta) {
            *left -= d;
        }
    }

    fn revert(&mut self, cand: &Candidate) {
        for (left, d) in self.out_left.iter_mut().zip(&cand.out_delta) {
            *left += d;
        }
        for (left, d) in self.in_left.iter_mut().zip(&cand.in_delta) {
            *left += d;
        }
    }
}

/// Enumerates every feasible tree shape of group `g`: each subscriber
/// picks a parent among {source} ∪ {other subscribers} or is rejected;
/// assignments whose accepted part is not a tree rooted at the source, or
/// whose path cost breaks the bound, are discarded.
fn enumerate_group(problem: &ProblemInstance, g: usize) -> Vec<Candidate> {
    let group = &problem.groups()[g];
    let source = group.source();
    let subs = group.subscribers();
    let k = subs.len();
    let n = problem.site_count();
    let bound = problem.cost_bound();

    // Choice encoding per subscriber: 0 = rejected, 1 = source parent,
    // 2 + j = parent is subscriber j.
    let options = k + 1;
    let mut out = Vec::new();
    let mut counters = vec![0usize; k];
    loop {
        if let Some(cand) = realize(problem, source, subs, &counters, n, bound) {
            out.push(cand);
        }

        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == k {
                return out;
            }
            counters[pos] += 1;
            if counters[pos] <= options {
                break;
            }
            counters[pos] = 0;
            pos += 1;
        }
        // Skip self-parenting codes (choice 2 + own index).
        if counters.iter().enumerate().any(|(i, &c)| c == 2 + i) {
            continue;
        }
    }
}

/// Materializes one choice vector into a candidate, or `None` if invalid.
fn realize(
    problem: &ProblemInstance,
    source: SiteId,
    subs: &[SiteId],
    counters: &[usize],
    n: usize,
    bound: CostMs,
) -> Option<Candidate> {
    let k = subs.len();
    let parents: Vec<Option<SiteId>> = counters
        .iter()
        .enumerate()
        .map(|(i, &c)| match c {
            0 => None,
            1 => Some(source),
            j => {
                let p = j - 2;
                if p == i || p >= k {
                    // Self-parent or odometer overflow code: invalid.
                    Some(subs[i]) // sentinel caught below (self-parent)
                } else {
                    Some(subs[p])
                }
            }
        })
        .collect();
    // Reject invalid codes: self-parents and parents that are rejected.
    for (i, &p) in parents.iter().enumerate() {
        let Some(p) = p else { continue };
        if p == subs[i] {
            return None;
        }
        if p != source {
            let pi = subs.iter().position(|&s| s == p).expect("parent in group");
            parents[pi]?;
        }
    }

    // Path costs: walk chains; a cycle never reaches the source.
    let mut cost_cache: Vec<Option<CostMs>> = vec![None; k];
    for i in 0..k {
        if parents[i].is_none() {
            continue;
        }
        let cost = path_cost(problem, source, subs, &parents, i, &mut cost_cache, 0)?;
        if cost >= bound {
            return None;
        }
    }

    let mut out_delta = vec![0u32; n];
    let mut in_delta = vec![0u32; n];
    let mut rejections = 0;
    for (i, &p) in parents.iter().enumerate() {
        match p {
            Some(p) => {
                out_delta[p.index()] += 1;
                in_delta[subs[i].index()] += 1;
            }
            None => rejections += 1,
        }
    }
    Some(Candidate {
        rejections,
        parents,
        out_delta,
        in_delta,
    })
}

/// Cost from the source to subscriber `i` along the assignment, `None` on
/// a cycle.
fn path_cost(
    problem: &ProblemInstance,
    source: SiteId,
    subs: &[SiteId],
    parents: &[Option<SiteId>],
    i: usize,
    cache: &mut Vec<Option<CostMs>>,
    depth: usize,
) -> Option<CostMs> {
    if depth > subs.len() {
        return None; // cycle
    }
    if let Some(c) = cache[i] {
        return Some(c);
    }
    let p = parents[i].expect("only accepted nodes are costed");
    let edge = problem.cost(p, subs[i]);
    let total = if p == source {
        edge
    } else {
        let pi = subs.iter().position(|&s| s == p).expect("parent in group");
        path_cost(problem, source, subs, parents, pi, cache, depth + 1)? + edge
    };
    cache[i] = Some(total);
    Some(total)
}

/// Builds the group's [`MulticastTree`] from a candidate, attaching in
/// root-to-leaf order.
fn build_tree(problem: &ProblemInstance, g: usize, cand: &Candidate) -> MulticastTree {
    let group = &problem.groups()[g];
    let subs = group.subscribers();
    let mut tree = MulticastTree::new(group.stream(), problem.site_count());
    let mut attached = vec![false; subs.len()];
    loop {
        let mut progress = false;
        for (i, &parent) in cand.parents.iter().enumerate() {
            let Some(parent) = parent else { continue };
            if attached[i] || !tree.is_member(parent) {
                continue;
            }
            tree.attach(subs[i], parent, problem.cost(parent, subs[i]));
            attached[i] = true;
            progress = true;
        }
        if !progress {
            return tree;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{
        ConstructionAlgorithm, LargestTreeFirst, RandomJoin, SmallestTreeFirst,
    };
    use crate::problem::NodeCapacity;
    use crate::validate::validate_forest;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_types::{CostMatrix, Degree, StreamId};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    #[test]
    fn relay_instance_is_solved_without_rejections() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(1)),
                NodeCapacity::symmetric(Degree::new(4)),
                NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let outcome = OptimalSolver::default().solve(&problem).unwrap();
        assert_eq!(outcome.metrics().rejected_requests, 0);
        assert!(validate_forest(&problem, outcome.forest()).is_ok());
    }

    #[test]
    fn infeasible_request_is_the_only_rejection() {
        // Out-degree 1 at the source, cost bound that forbids relaying
        // (depth-2 paths exceed it): one of the two requests must go.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(30));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                NodeCapacity::symmetric(Degree::new(1)),
                NodeCapacity::symmetric(Degree::new(4)),
                NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let outcome = OptimalSolver::default().solve(&problem).unwrap();
        assert_eq!(outcome.metrics().rejected_requests, 1);
    }

    #[test]
    fn optimal_is_never_beaten_by_heuristics() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for seed in 0..12u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let problem = random_small_instance(&mut gen);
            let optimal = OptimalSolver::default()
                .solve(&problem)
                .unwrap()
                .metrics()
                .rejected_requests;
            for alg in [
                &RandomJoin as &dyn ConstructionAlgorithm,
                &LargestTreeFirst,
                &SmallestTreeFirst,
            ] {
                let h = alg
                    .construct(&problem, &mut rng)
                    .metrics()
                    .rejected_requests;
                assert!(
                    optimal <= h,
                    "seed {seed}: optimal {optimal} beaten by {} with {h}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn optimal_forest_always_validates() {
        for seed in 0..8u64 {
            let mut gen = ChaCha8Rng::seed_from_u64(seed);
            let problem = random_small_instance(&mut gen);
            let outcome = OptimalSolver::default().solve(&problem).unwrap();
            assert!(
                validate_forest(&problem, outcome.forest()).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn caps_are_enforced() {
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(5));
        let mut b = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[4, 4, 4, 4]);
        for sub in 0..4u32 {
            for origin in 0..4u32 {
                if sub != origin {
                    for q in 0..4 {
                        b = b.subscribe(site(sub), stream(origin, q));
                    }
                }
            }
        }
        let problem = b.build().unwrap();
        let err = OptimalSolver::default().solve(&problem).unwrap_err();
        assert!(matches!(err, OptimalError::TooManyRequests { .. }));

        let err = OptimalSolver::new(1_000, 2).solve(&problem).unwrap_err();
        assert!(matches!(err, OptimalError::GroupTooLarge { .. }));
    }

    /// A random 3-site instance with tight capacities, small enough for
    /// exact search.
    fn random_small_instance(rng: &mut ChaCha8Rng) -> ProblemInstance {
        use rand::Rng;
        let costs = CostMatrix::from_fn(3, |i, j| {
            if i == j {
                CostMs::ZERO
            } else {
                CostMs::new(5 + ((i * 3 + j) % 4) as u32 * 7)
            }
        });
        let mut b = ProblemInstance::builder(costs, CostMs::new(40))
            .capacities(
                (0..3)
                    .map(|_| NodeCapacity::symmetric(Degree::new(rng.gen_range(1..4))))
                    .collect(),
            )
            .streams_per_site(&[2, 2, 2]);
        for sub in 0..3u32 {
            for origin in 0..3u32 {
                if sub == origin {
                    continue;
                }
                for q in 0..2 {
                    if rng.gen_bool(0.6) {
                        b = b.subscribe(site(sub), stream(origin, q));
                    }
                }
            }
        }
        b.build().unwrap()
    }
}
