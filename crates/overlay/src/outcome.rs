//! The result of running a construction algorithm on a problem instance.

use serde::{Deserialize, Serialize};

use crate::forest::Forest;
use crate::metrics::ConstructionMetrics;
use crate::problem::{ProblemInstance, Request};

/// Everything produced by one run of a construction algorithm: the forest,
/// plus the metrics the paper evaluates (rejection ratios, load balancing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstructionOutcome {
    algorithm: String,
    forest: Forest,
    metrics: ConstructionMetrics,
}

impl ConstructionOutcome {
    /// Assembles an outcome, computing metrics from the finished forest.
    pub(crate) fn new(algorithm: &str, problem: &ProblemInstance, forest: Forest) -> Self {
        let metrics = ConstructionMetrics::compute(problem, &forest);
        ConstructionOutcome {
            algorithm: algorithm.to_string(),
            forest,
            metrics,
        }
    }

    /// Returns the name of the algorithm that produced this outcome.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Returns the constructed dissemination forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Returns the evaluation metrics.
    pub fn metrics(&self) -> &ConstructionMetrics {
        &self.metrics
    }

    /// Returns the requests that were satisfied: the subscriber is a member
    /// of the stream's tree.
    pub fn accepted_requests<'a>(
        &'a self,
        problem: &'a ProblemInstance,
    ) -> impl Iterator<Item = Request> + 'a {
        problem.requests().filter(|r| {
            self.forest
                .tree_for(r.stream)
                .is_some_and(|t| t.is_member(r.subscriber))
        })
    }

    /// Returns the requests that were rejected.
    pub fn rejected_requests<'a>(
        &'a self,
        problem: &'a ProblemInstance,
    ) -> impl Iterator<Item = Request> + 'a {
        problem.requests().filter(|r| {
            !self
                .forest
                .tree_for(r.stream)
                .is_some_and(|t| t.is_member(r.subscriber))
        })
    }
}
