//! The forest construction problem (paper Section 4.2, Table 1).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

/// A single subscription request `r_i(s_j^q)`: RP `i` requests the stream
/// `s_j^q` originating from site `H_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Request {
    /// The requesting (subscribing) RP node.
    pub subscriber: SiteId,
    /// The requested stream.
    pub stream: StreamId,
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r_{}({})", self.subscriber.index(), self.stream)
    }
}

/// Inbound/outbound bandwidth limits of one RP node, in streams
/// (`I_i`, `O_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeCapacity {
    /// Inbound limit `I_i`.
    pub inbound: Degree,
    /// Outbound limit `O_i`.
    pub outbound: Degree,
}

impl NodeCapacity {
    /// Creates a capacity with equal inbound and outbound limits, the shape
    /// used throughout the paper's evaluation (`O_i = I_i`).
    pub fn symmetric(limit: Degree) -> Self {
        NodeCapacity {
            inbound: limit,
            outbound: limit,
        }
    }
}

/// A multicast group `G(s)`: the set of RP nodes that requested stream `s`,
/// together with the stream's source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastGroup {
    stream: StreamId,
    subscribers: Vec<SiteId>,
}

impl MulticastGroup {
    /// Returns the stream this group disseminates.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Returns the source RP (the stream's origin site).
    pub fn source(&self) -> SiteId {
        self.stream.origin()
    }

    /// Returns the subscribing RPs, in ascending site order. The source is
    /// not included.
    pub fn subscribers(&self) -> &[SiteId] {
        &self.subscribers
    }

    /// Returns the group size `|G(s)|`: the number of requesting RPs.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Returns true if no RP requested the stream (never the case for
    /// groups stored in a [`ProblemInstance`]).
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }
}

/// Error produced while assembling a [`ProblemInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A request referenced a site outside the session.
    UnknownSite {
        /// The offending site.
        site: SiteId,
        /// Number of sites in the session.
        sites: usize,
    },
    /// A site subscribed to a stream it originates itself; local streams
    /// reach local displays through the site's star network, not the
    /// overlay.
    SelfSubscription {
        /// The offending request.
        request: Request,
    },
    /// A stream's local index is out of range for its origin site.
    UnknownStream {
        /// The offending stream.
        stream: StreamId,
        /// Number of streams published by the origin site.
        available: u32,
    },
    /// The capacity table does not cover every site.
    MissingCapacity {
        /// The site without a declared capacity.
        site: SiteId,
    },
    /// The cost matrix size does not match the number of sites.
    CostMatrixMismatch {
        /// Number of sites declared.
        sites: usize,
        /// Size of the provided cost matrix.
        matrix: usize,
    },
    /// The session has fewer than the paper's minimum of three sites
    /// (`N ≥ 3`); two-site sessions need no overlay.
    TooFewSites {
        /// Number of sites declared.
        sites: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::UnknownSite { site, sites } => {
                write!(f, "site {site} outside session of {sites} sites")
            }
            ProblemError::SelfSubscription { request } => {
                write!(f, "request {request} subscribes to a local stream")
            }
            ProblemError::UnknownStream { stream, available } => {
                write!(
                    f,
                    "stream {stream} does not exist (origin publishes {available})"
                )
            }
            ProblemError::MissingCapacity { site } => {
                write!(f, "no capacity declared for site {site}")
            }
            ProblemError::CostMatrixMismatch { sites, matrix } => {
                write!(f, "cost matrix covers {matrix} nodes, session has {sites}")
            }
            ProblemError::TooFewSites { sites } => {
                write!(
                    f,
                    "a multi-site session needs at least 3 sites, got {sites}"
                )
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A complete instance of the **forest construction problem**:
///
/// * a completely connected graph over `N` RP nodes with latency costs,
/// * per-node in/out-degree bounds `I(v)`, `O(v)`,
/// * a latency bound `B_cost`,
/// * one multicast group per subscribed stream.
///
/// Instances are immutable once built; construction algorithms read them and
/// produce a forest.
///
/// # Examples
///
/// ```
/// use teeve_overlay::ProblemInstance;
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(100))
///     .symmetric_capacities(Degree::new(20))
///     .streams_per_site(&[2, 2, 2])
///     .subscribe(SiteId::new(0), StreamId::new(SiteId::new(1), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(1), 0))
///     .build()?;
/// assert_eq!(problem.site_count(), 3);
/// assert_eq!(problem.group_count(), 1);
/// assert_eq!(problem.total_requests(), 2);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemInstance {
    n: usize,
    capacities: Vec<NodeCapacity>,
    streams_per_site: Vec<u32>,
    costs: CostMatrix,
    cost_bound: CostMs,
    groups: Vec<MulticastGroup>,
    /// `u[i][j]`: number of streams originating from `H_j` requested by
    /// `RP_i` (the paper's `u_{i→j}`).
    request_counts: Vec<Vec<u32>>,
}

impl ProblemInstance {
    /// Starts building a problem over the sites covered by `costs`, with
    /// interactivity bound `cost_bound`.
    pub fn builder(costs: CostMatrix, cost_bound: CostMs) -> ProblemBuilder {
        ProblemBuilder {
            costs,
            cost_bound,
            capacities: Vec::new(),
            streams_per_site: Vec::new(),
            requests: BTreeSet::new(),
        }
    }

    /// Returns the number of sites `N`.
    pub fn site_count(&self) -> usize {
        self.n
    }

    /// Returns the capacity of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn capacity(&self, site: SiteId) -> NodeCapacity {
        self.capacities[site.index()]
    }

    /// Returns the number of streams published by `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn streams_of(&self, site: SiteId) -> u32 {
        self.streams_per_site[site.index()]
    }

    /// Returns the pairwise latency matrix.
    pub fn costs(&self) -> &CostMatrix {
        &self.costs
    }

    /// Returns the latency between two RPs.
    pub fn cost(&self, a: SiteId, b: SiteId) -> CostMs {
        self.costs.cost(a, b)
    }

    /// Returns the interactivity bound `B_cost`.
    pub fn cost_bound(&self) -> CostMs {
        self.cost_bound
    }

    /// Returns the multicast groups, one per subscribed stream, in
    /// ascending stream order. `F = self.groups().len()`.
    pub fn groups(&self) -> &[MulticastGroup] {
        &self.groups
    }

    /// Returns the number of multicast groups `F`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Returns the total number of subscription requests across all groups.
    pub fn total_requests(&self) -> usize {
        self.groups.iter().map(MulticastGroup::len).sum()
    }

    /// Returns `u_{i→j}`: the number of streams originating from `to`
    /// requested by `from`.
    ///
    /// # Panics
    ///
    /// Panics if either site is outside the session.
    pub fn request_count(&self, from: SiteId, to: SiteId) -> u32 {
        self.request_counts[from.index()][to.index()]
    }

    /// Returns `m_i`: the number of streams originating at `site` that are
    /// subscribed by at least one other RP. Used by MCTF's forwarding
    /// capacity (`O_i - m_i`) and to initialize the reservation counters.
    pub fn subscribed_local_streams(&self, site: SiteId) -> u32 {
        self.groups.iter().filter(|g| g.source() == site).count() as u32
    }

    /// Returns an iterator over every request in the instance, grouped by
    /// multicast group (group index, then ascending subscriber).
    pub fn requests(&self) -> impl Iterator<Item = Request> + '_ {
        self.groups.iter().flat_map(|g| {
            g.subscribers().iter().map(move |&subscriber| Request {
                subscriber,
                stream: g.stream(),
            })
        })
    }
}

/// Incremental builder for [`ProblemInstance`]; see
/// [`ProblemInstance::builder`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    costs: CostMatrix,
    cost_bound: CostMs,
    capacities: Vec<NodeCapacity>,
    streams_per_site: Vec<u32>,
    requests: BTreeSet<Request>,
}

impl ProblemBuilder {
    /// Declares the capacity of every site at once, in site order.
    pub fn capacities(mut self, capacities: Vec<NodeCapacity>) -> Self {
        self.capacities = capacities;
        self
    }

    /// Gives every site the same symmetric capacity (`O_i = I_i = limit`).
    pub fn symmetric_capacities(mut self, limit: Degree) -> Self {
        self.capacities = vec![NodeCapacity::symmetric(limit); self.costs.len()];
        self
    }

    /// Declares how many streams each site publishes, in site order.
    ///
    /// Subscriptions to stream indices at or above a site's count are
    /// rejected at build time.
    pub fn streams_per_site(mut self, counts: &[u32]) -> Self {
        self.streams_per_site = counts.to_vec();
        self
    }

    /// Adds one subscription request. Duplicate requests collapse: the
    /// overlay delivers each stream to a site at most once, and fan-out to
    /// multiple local displays happens on the site's star network.
    pub fn subscribe(mut self, subscriber: SiteId, stream: StreamId) -> Self {
        self.requests.insert(Request { subscriber, stream });
        self
    }

    /// Adds many subscription requests at once.
    pub fn subscribe_all(mut self, requests: impl IntoIterator<Item = Request>) -> Self {
        self.requests.extend(requests);
        self
    }

    /// Validates and assembles the instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the session has fewer than three sites, the
    /// capacity table or cost matrix does not match the site count, or any
    /// request references an unknown site/stream or subscribes to a local
    /// stream.
    pub fn build(self) -> Result<ProblemInstance, ProblemError> {
        let n = self.costs.len();
        if n < 3 {
            return Err(ProblemError::TooFewSites { sites: n });
        }
        if self.capacities.len() != n {
            let site = SiteId::new(self.capacities.len() as u32);
            return Err(ProblemError::MissingCapacity { site });
        }
        let streams_per_site = if self.streams_per_site.is_empty() {
            // Default: infer from the largest subscribed index per site.
            let mut counts = vec![0u32; n];
            for r in &self.requests {
                let o = r.stream.origin().index();
                if o < n {
                    counts[o] = counts[o].max(r.stream.local_index() + 1);
                }
            }
            counts
        } else {
            if self.streams_per_site.len() != n {
                return Err(ProblemError::CostMatrixMismatch {
                    sites: self.streams_per_site.len(),
                    matrix: n,
                });
            }
            self.streams_per_site
        };

        let mut request_counts = vec![vec![0u32; n]; n];
        let mut groups: std::collections::BTreeMap<StreamId, Vec<SiteId>> =
            std::collections::BTreeMap::new();
        for r in self.requests {
            let sub = r.subscriber;
            let origin = r.stream.origin();
            if sub.index() >= n {
                return Err(ProblemError::UnknownSite {
                    site: sub,
                    sites: n,
                });
            }
            if origin.index() >= n {
                return Err(ProblemError::UnknownSite {
                    site: origin,
                    sites: n,
                });
            }
            if sub == origin {
                return Err(ProblemError::SelfSubscription { request: r });
            }
            let available = streams_per_site[origin.index()];
            if r.stream.local_index() >= available {
                return Err(ProblemError::UnknownStream {
                    stream: r.stream,
                    available,
                });
            }
            request_counts[sub.index()][origin.index()] += 1;
            groups.entry(r.stream).or_default().push(sub);
        }

        let groups = groups
            .into_iter()
            .map(|(stream, subscribers)| MulticastGroup {
                stream,
                subscribers,
            })
            .collect();

        Ok(ProblemInstance {
            n,
            capacities: self.capacities,
            streams_per_site,
            costs: self.costs,
            cost_bound: self.cost_bound,
            groups,
            request_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_costs(n: usize) -> CostMatrix {
        CostMatrix::from_fn(n, |_, _| CostMs::new(5))
    }

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    #[test]
    fn builds_groups_per_stream() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[2, 2, 2])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 0))
            .subscribe(site(0), stream(2, 1))
            .build()
            .unwrap();
        assert_eq!(problem.group_count(), 2);
        let g = &problem.groups()[0];
        assert_eq!(g.stream(), stream(1, 0));
        assert_eq!(g.source(), site(1));
        assert_eq!(g.subscribers(), &[site(0), site(2)]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn duplicate_requests_collapse() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 1, 1])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(0), stream(1, 0))
            .build()
            .unwrap();
        assert_eq!(problem.total_requests(), 1);
        assert_eq!(problem.request_count(site(0), site(1)), 1);
    }

    #[test]
    fn request_counts_match_subscriptions() {
        let problem = ProblemInstance::builder(flat_costs(4), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[3, 3, 3, 3])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(0), stream(1, 1))
            .subscribe(site(0), stream(2, 0))
            .subscribe(site(3), stream(0, 2))
            .build()
            .unwrap();
        assert_eq!(problem.request_count(site(0), site(1)), 2);
        assert_eq!(problem.request_count(site(0), site(2)), 1);
        assert_eq!(problem.request_count(site(0), site(3)), 0);
        assert_eq!(problem.request_count(site(3), site(0)), 1);
    }

    #[test]
    fn subscribed_local_streams_counts_distinct_streams() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[3, 3, 3])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 0))
            .subscribe(site(0), stream(1, 2))
            .build()
            .unwrap();
        assert_eq!(problem.subscribed_local_streams(site(1)), 2);
        assert_eq!(problem.subscribed_local_streams(site(0)), 0);
    }

    #[test]
    fn rejects_self_subscription() {
        let err = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 1, 1])
            .subscribe(site(1), stream(1, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::SelfSubscription { .. }));
    }

    #[test]
    fn rejects_unknown_stream_index() {
        let err = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 1, 1])
            .subscribe(site(0), stream(1, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::UnknownStream { .. }));
    }

    #[test]
    fn rejects_unknown_site() {
        let err = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[1, 1, 1])
            .subscribe(site(7), stream(1, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::UnknownSite { .. }));
    }

    #[test]
    fn rejects_two_site_sessions() {
        let err = ProblemInstance::builder(flat_costs(2), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .build()
            .unwrap_err();
        assert_eq!(err, ProblemError::TooFewSites { sites: 2 });
    }

    #[test]
    fn rejects_missing_capacities() {
        let err = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .capacities(vec![NodeCapacity::symmetric(Degree::new(5)); 2])
            .build()
            .unwrap_err();
        assert!(matches!(err, ProblemError::MissingCapacity { .. }));
    }

    #[test]
    fn infers_stream_counts_when_not_declared() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .subscribe(site(0), stream(1, 4))
            .build()
            .unwrap();
        assert_eq!(problem.streams_of(site(1)), 5);
        assert_eq!(problem.streams_of(site(0)), 0);
    }

    #[test]
    fn requests_iterator_covers_all_groups() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(100))
            .symmetric_capacities(Degree::new(10))
            .streams_per_site(&[2, 2, 2])
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 0))
            .subscribe(site(1), stream(0, 1))
            .build()
            .unwrap();
        let all: Vec<Request> = problem.requests().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all.len(), problem.total_requests());
    }

    #[test]
    fn serde_roundtrip() {
        let problem = ProblemInstance::builder(flat_costs(3), CostMs::new(50))
            .symmetric_capacities(Degree::new(8))
            .streams_per_site(&[2, 2, 2])
            .subscribe(site(0), stream(1, 1))
            .build()
            .unwrap();
        let json = serde_json::to_string(&problem).unwrap();
        let back: ProblemInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, problem);
    }
}
