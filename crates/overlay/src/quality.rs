//! Rate-aware quality fitting: the pure arithmetic behind the overlay's
//! degrade-don't-reject admission path.
//!
//! The paper's CO-RJ heuristic argues that under saturation a less
//! critical stream should yield to a more critical one (Fig. 11). This
//! module generalizes that idea from *drop the victim* to *degrade the
//! victim*: given a receiving site's bit-rate budget and the FOV
//! contribution scores of the streams it takes, [`fit_qualities`] finds
//! the deterministic rung assignment that fits the budget by repeatedly
//! degrading the least-contributing stream one rung — never dropping
//! anything. Whether the assignment actually fits is reported separately,
//! so admission can reject a newcomer exactly when the ladder is
//! exhausted.

use std::collections::BTreeMap;

use teeve_types::{Quality, QualityLadder, StreamId};

/// The outcome of fitting a stream set into a rate budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityFit {
    /// The chosen rung per stream. Every input stream is present; with no
    /// budget everything is [`Quality::FULL`].
    pub qualities: BTreeMap<StreamId, Quality>,
    /// Total bit rate of the assignment under the shared ladder.
    pub total_bps: u64,
    /// Whether the assignment fits the budget. `false` means every
    /// stream sits at the ladder floor and the demand *still* exceeds the
    /// budget — the ladder is exhausted.
    pub fits: bool,
}

/// Fits `streams` (id, FOV contribution score) into `budget_bps` by
/// degrading the least-scored stream one rung at a time, mirroring the
/// adaptation controller's policy but never dropping a stream: the floor
/// of the ladder is as far as fitting goes, and [`QualityFit::fits`]
/// reports whether that was enough.
///
/// Ties and NaN scores order deterministically (`f64::total_cmp`, then
/// stream id), so the same inputs always produce the same assignment.
/// `budget_bps = None` means unconstrained: everything at full quality.
pub fn fit_qualities(
    ladder: &QualityLadder,
    budget_bps: Option<u64>,
    streams: &[(StreamId, f64)],
) -> QualityFit {
    let mut qualities: BTreeMap<StreamId, Quality> =
        streams.iter().map(|&(s, _)| (s, Quality::FULL)).collect();
    let mut total: u64 = qualities.len() as u64 * ladder.full().bitrate_bps;
    let Some(budget) = budget_bps else {
        return QualityFit {
            qualities,
            total_bps: total,
            fits: true,
        };
    };

    // Degradation order: ascending score (total_cmp pins NaN), then
    // stream id. The weakest stream that can still step down yields
    // first; once it hits the floor the next-weakest starts stepping.
    let mut order: Vec<(StreamId, f64)> = streams.to_vec();
    order.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

    while total > budget {
        let Some(&(victim, _)) = order.iter().find(|(s, _)| ladder.can_degrade(qualities[s]))
        else {
            break; // everything at the floor; the ladder is exhausted
        };
        let current = qualities[&victim];
        total = total - ladder.rate_of(current) + ladder.rate_of(current.degraded());
        qualities.insert(victim, current.degraded());
    }
    QualityFit {
        fits: total <= budget,
        total_bps: total,
        qualities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_types::SiteId;

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(SiteId::new(origin), q)
    }

    fn paper() -> QualityLadder {
        QualityLadder::paper_default()
    }

    #[test]
    fn no_budget_keeps_everything_full() {
        let fit = fit_qualities(&paper(), None, &[(stream(0, 0), 0.1), (stream(1, 0), 0.9)]);
        assert!(fit.fits);
        assert_eq!(fit.total_bps, 16_000_000);
        assert!(fit.qualities.values().all(|q| q.is_full()));
    }

    #[test]
    fn weakest_stream_yields_first() {
        // 8 + 8 = 16 Mbps into 12 Mbps: only the low-score stream steps.
        let fit = fit_qualities(
            &paper(),
            Some(12_000_000),
            &[(stream(0, 0), 0.9), (stream(1, 0), 0.1)],
        );
        assert!(fit.fits);
        assert_eq!(fit.qualities[&stream(0, 0)], Quality::FULL);
        assert_eq!(fit.qualities[&stream(1, 0)], Quality::new(1));
        assert_eq!(fit.total_bps, 12_000_000);
    }

    #[test]
    fn exhausted_ladders_report_not_fitting() {
        // Two streams cannot go below 2 + 2 = 4 Mbps.
        let fit = fit_qualities(
            &paper(),
            Some(3_000_000),
            &[(stream(0, 0), 0.9), (stream(1, 0), 0.1)],
        );
        assert!(!fit.fits);
        assert_eq!(fit.total_bps, 4_000_000);
        assert!(fit
            .qualities
            .values()
            .all(|&q| q == QualityLadder::paper_default().floor()));
    }

    #[test]
    fn nan_scores_fit_deterministically() {
        let streams = [
            (stream(0, 0), f64::NAN),
            (stream(1, 0), 0.5),
            (stream(2, 0), f64::NAN),
        ];
        let a = fit_qualities(&paper(), Some(14_000_000), &streams);
        let mut reversed = streams;
        reversed.reverse();
        let b = fit_qualities(&paper(), Some(14_000_000), &reversed);
        assert_eq!(a, b);
        assert!(a.fits);
    }

    #[test]
    fn empty_stream_sets_fit_any_budget() {
        let fit = fit_qualities(&paper(), Some(0), &[]);
        assert!(fit.fits);
        assert_eq!(fit.total_bps, 0);
        assert!(fit.qualities.is_empty());
    }
}
