//! Granularity analysis (paper Section 5.3): sweep the algorithm spectrum
//! from tree-by-tree construction (`g = 1`) to whole-forest randomization
//! (`g = F`).

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::algorithms::{ConstructionAlgorithm, GranLtf};
use crate::problem::ProblemInstance;

/// One point of a granularity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// The granularity `g` (number of trees constructed at once).
    pub granularity: usize,
    /// Mean rejection ratio `X` over the sweep's samples.
    pub mean_rejection_ratio: f64,
}

/// Runs Gran-LTF at every granularity in `granularities`, averaging the
/// rejection ratio over `samples` randomized runs per point.
///
/// This regenerates the data behind the paper's Figure 9: rejection
/// generally decreases as granularity grows, with a small fluctuation
/// region at large `g`.
///
/// # Panics
///
/// Panics if `samples` is zero or any granularity is zero.
pub fn granularity_sweep(
    problem: &ProblemInstance,
    granularities: &[usize],
    samples: usize,
    rng: &mut dyn RngCore,
) -> Vec<GranularityPoint> {
    assert!(samples > 0, "at least one sample per point is required");
    granularities
        .iter()
        .map(|&g| {
            let algo = GranLtf::new(g);
            let mut total = 0.0;
            for _ in 0..samples {
                total += algo.construct(problem, rng).metrics().rejection_ratio();
            }
            GranularityPoint {
                granularity: g,
                mean_rejection_ratio: total / samples as f64,
            }
        })
        .collect()
}

/// Returns the full sweep range `1..=F` for a problem (every legal
/// granularity).
pub fn full_granularity_range(problem: &ProblemInstance) -> Vec<usize> {
    (1..=problem.group_count().max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::contended_problem;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sweep_covers_requested_granularities() {
        let problem = contended_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let points = granularity_sweep(&problem, &[1, 3, 6, 12], 5, &mut rng);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].granularity, 1);
        assert_eq!(points[3].granularity, 12);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.mean_rejection_ratio));
        }
    }

    #[test]
    fn full_range_spans_one_to_f() {
        let problem = contended_problem();
        let range = full_granularity_range(&problem);
        assert_eq!(range.first(), Some(&1));
        assert_eq!(range.last(), Some(&problem.group_count()));
    }

    /// The paper's Figure 9 finding, in expectation: the randomized end of
    /// the spectrum (g = F) does not reject more than the tree-by-tree end
    /// (g = 1).
    #[test]
    fn larger_granularity_does_not_hurt() {
        let problem = contended_problem();
        let f = problem.group_count();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let points = granularity_sweep(&problem, &[1, f], 60, &mut rng);
        let (g1, gf) = (
            points[0].mean_rejection_ratio,
            points[1].mean_rejection_ratio,
        );
        assert!(
            gf <= g1 + 0.02,
            "granularity F ({gf:.3}) should be at least as good as 1 ({g1:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "sample")]
    fn rejects_zero_samples() {
        let problem = contended_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = granularity_sweep(&problem, &[1], 0, &mut rng);
    }
}
