//! Forest invariant validation: every constraint of the problem
//! formulation, checkable on any constructed forest.

use std::fmt;

use teeve_types::{CostMs, SiteId, StreamId};

use crate::forest::Forest;
use crate::problem::ProblemInstance;

/// A violated invariant found by [`validate_forest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The forest's tree count differs from the problem's group count.
    WrongTreeCount {
        /// Trees in the forest.
        trees: usize,
        /// Groups in the problem.
        groups: usize,
    },
    /// A node receives more streams than its inbound limit.
    InDegreeExceeded {
        /// The overloaded node.
        site: SiteId,
        /// Actual in-degree.
        actual: u32,
        /// Inbound limit `I_i`.
        limit: u32,
    },
    /// A node sends more streams than its outbound limit.
    OutDegreeExceeded {
        /// The overloaded node.
        site: SiteId,
        /// Actual out-degree.
        actual: u32,
        /// Outbound limit `O_i`.
        limit: u32,
    },
    /// A member's source-to-node path latency reaches or exceeds `B_cost`.
    LatencyBoundViolated {
        /// The stream whose tree violates the bound.
        stream: StreamId,
        /// The member with an over-budget path.
        site: SiteId,
        /// The offending path cost.
        cost: CostMs,
        /// The bound `B_cost`.
        bound: CostMs,
    },
    /// A tree contains a member that neither originates nor subscribed to
    /// the stream.
    UninvitedMember {
        /// The stream whose tree contains the stranger.
        stream: StreamId,
        /// The member that never requested the stream.
        site: SiteId,
    },
    /// A member's recorded path cost disagrees with the sum of its parent
    /// chain's edge costs.
    CostMismatch {
        /// The stream whose tree is inconsistent.
        stream: StreamId,
        /// The member with an inconsistent cost.
        site: SiteId,
        /// Cost recorded in the tree.
        recorded: CostMs,
        /// Cost recomputed from the parent chain.
        recomputed: CostMs,
    },
    /// A member's parent chain does not reach the source (cycle or orphan).
    BrokenParentChain {
        /// The stream whose tree is broken.
        stream: StreamId,
        /// The member whose chain does not terminate at the source.
        site: SiteId,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::WrongTreeCount { trees, groups } => {
                write!(f, "forest has {trees} trees for {groups} groups")
            }
            InvariantViolation::InDegreeExceeded {
                site,
                actual,
                limit,
            } => {
                write!(f, "{site}: in-degree {actual} exceeds limit {limit}")
            }
            InvariantViolation::OutDegreeExceeded {
                site,
                actual,
                limit,
            } => {
                write!(f, "{site}: out-degree {actual} exceeds limit {limit}")
            }
            InvariantViolation::LatencyBoundViolated {
                stream,
                site,
                cost,
                bound,
            } => write!(
                f,
                "tree {stream}: {site} path cost {cost} violates bound {bound}"
            ),
            InvariantViolation::UninvitedMember { stream, site } => {
                write!(f, "tree {stream}: {site} is a member but never subscribed")
            }
            InvariantViolation::CostMismatch {
                stream,
                site,
                recorded,
                recomputed,
            } => write!(
                f,
                "tree {stream}: {site} records cost {recorded}, parent chain sums to {recomputed}"
            ),
            InvariantViolation::BrokenParentChain { stream, site } => {
                write!(f, "tree {stream}: {site} has no parent chain to the source")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks a forest against every constraint of the forest construction
/// problem (Section 4.2):
///
/// * one tree per multicast group;
/// * `d_in(v) ≤ I(v)` and `d_out(v) ≤ O(v)` across the whole forest;
/// * every member's source path cost is strictly below `B_cost`;
/// * trees contain only the source and actual subscribers;
/// * parent chains terminate at the source and recorded costs equal the
///   recomputed edge sums (well-formedness).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_forest(
    problem: &ProblemInstance,
    forest: &Forest,
) -> Result<(), InvariantViolation> {
    if forest.len() != problem.group_count() {
        return Err(InvariantViolation::WrongTreeCount {
            trees: forest.len(),
            groups: problem.group_count(),
        });
    }

    let n = problem.site_count();
    for site in SiteId::all(n) {
        let cap = problem.capacity(site);
        let din = forest.in_degree(site);
        if din > cap.inbound.count() {
            return Err(InvariantViolation::InDegreeExceeded {
                site,
                actual: din,
                limit: cap.inbound.count(),
            });
        }
        let dout = forest.out_degree(site);
        if dout > cap.outbound.count() {
            return Err(InvariantViolation::OutDegreeExceeded {
                site,
                actual: dout,
                limit: cap.outbound.count(),
            });
        }
    }

    for (group, tree) in problem.groups().iter().zip(forest.trees()) {
        let stream = tree.stream();
        debug_assert_eq!(group.stream(), stream, "forest preserves group order");
        for site in SiteId::all(n) {
            if !tree.is_member(site) {
                continue;
            }
            if site == tree.source() {
                continue;
            }
            if !group.subscribers().contains(&site) {
                return Err(InvariantViolation::UninvitedMember { stream, site });
            }
            // Walk the parent chain, recomputing the path cost.
            let mut recomputed = CostMs::ZERO;
            let mut cursor = site;
            let mut hops = 0;
            while let Some(parent) = tree.parent_of(cursor) {
                recomputed = recomputed.saturating_add(problem.cost(parent, cursor));
                cursor = parent;
                hops += 1;
                if hops > n {
                    return Err(InvariantViolation::BrokenParentChain { stream, site });
                }
            }
            if cursor != tree.source() {
                return Err(InvariantViolation::BrokenParentChain { stream, site });
            }
            let recorded = tree
                .cost_from_source(site)
                .expect("members always have a cost");
            if recorded != recomputed {
                return Err(InvariantViolation::CostMismatch {
                    stream,
                    site,
                    recorded,
                    recomputed,
                });
            }
            if recorded >= problem.cost_bound() {
                return Err(InvariantViolation::LatencyBoundViolated {
                    stream,
                    site,
                    cost: recorded,
                    bound: problem.cost_bound(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::ForestState;
    use teeve_types::{CostMatrix, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn problem(bound: u32) -> ProblemInstance {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(3));
        ProblemInstance::builder(costs, CostMs::new(bound))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(0), stream(1, 0))
            .build()
            .unwrap()
    }

    #[test]
    fn valid_construction_passes() {
        let p = problem(100);
        let mut state = ForestState::new(&p);
        for (g, group) in p.groups().iter().enumerate() {
            for &s in group.subscribers() {
                state.try_join(g, s);
            }
        }
        validate_forest(&p, &state.into_forest()).expect("clean forest");
    }

    #[test]
    fn empty_forest_with_requests_is_still_structurally_valid() {
        // Rejecting everything is allowed by the constraints (it just has
        // rejection ratio 1); validation checks structure, not optimality.
        let p = problem(100);
        let forest = ForestState::new(&p).into_forest();
        validate_forest(&p, &forest).expect("empty trees are valid");
    }

    #[test]
    fn detects_wrong_tree_count() {
        let p = problem(100);
        let forest = Forest::new(vec![]);
        assert_eq!(
            validate_forest(&p, &forest),
            Err(InvariantViolation::WrongTreeCount {
                trees: 0,
                groups: 2
            })
        );
    }

    #[test]
    fn detects_latency_violations() {
        // Bound 3 with edges of cost 3: any edge's path cost (3) is not
        // strictly below the bound, so a forest containing such an edge is
        // invalid. Build it by bypassing try_join.
        let p = problem(3);
        let mut state = ForestState::new(&p);
        state.attach(0, site(1), site(0), CostMs::new(3));
        let forest = state.into_forest();
        assert!(matches!(
            validate_forest(&p, &forest),
            Err(InvariantViolation::LatencyBoundViolated { .. })
        ));
    }

    #[test]
    fn detects_uninvited_members() {
        let p = problem(100);
        let mut state = ForestState::new(&p);
        // Group 1 is stream s1.0, subscribed only by site 0; attach site 2.
        state.attach(1, site(2), site(1), CostMs::new(3));
        let forest = state.into_forest();
        assert!(matches!(
            validate_forest(&p, &forest),
            Err(InvariantViolation::UninvitedMember { .. })
        ));
    }

    #[test]
    fn detects_degree_overruns() {
        // Capacity 1 at the source, two joins forced via attach.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(1));
        let p = ProblemInstance::builder(costs, CostMs::new(100))
            .symmetric_capacities(Degree::new(1))
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut state = ForestState::new(&p);
        state.attach(0, site(1), site(0), CostMs::new(1));
        state.attach(0, site(2), site(0), CostMs::new(1));
        let forest = state.into_forest();
        assert!(matches!(
            validate_forest(&p, &forest),
            Err(InvariantViolation::OutDegreeExceeded { site, actual: 2, limit: 1 })
                if site == SiteId::new(0)
        ));
    }

    #[test]
    fn violation_messages_are_informative() {
        let v = InvariantViolation::InDegreeExceeded {
            site: site(3),
            actual: 9,
            limit: 5,
        };
        let text = v.to_string();
        assert!(text.contains("H3"));
        assert!(text.contains('9'));
        assert!(text.contains('5'));
    }
}
