//! Session-level subscription churn: users retargeting their fields of
//! view while the overlay is live.
//!
//! The paper constructs the overlay *statically* and defers live
//! re-subscription to future work. This module drives that scenario end to
//! end: a scripted sequence of display FOV changes is applied to a
//! [`Session`], each change is diffed against the site's previous
//! aggregated subscription, and the difference is pushed through an
//! incremental [`OverlayManager`](teeve_overlay::OverlayManager) — so
//! trees are repaired, not rebuilt, exactly as a deployed membership
//! server would operate.

use std::collections::BTreeSet;

use teeve_overlay::{OverlayManager, ProblemInstance, SubscribeResult};
use teeve_types::{DisplayId, SiteId, StreamId};

use crate::session::Session;

/// One scripted churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// `display` retargets its viewpoint at `target`'s participant.
    Retarget {
        /// The display changing its FOV.
        display: DisplayId,
        /// The site whose participant it now watches.
        target: SiteId,
    },
    /// `display` stops watching anything.
    Clear {
        /// The display clearing its subscription.
        display: DisplayId,
    },
}

/// Aggregate statistics of one churn run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Events processed.
    pub events: usize,
    /// Stream joins attempted (new site-level subscriptions).
    pub subscribes: usize,
    /// Joins that found a feasible parent.
    pub accepted: usize,
    /// Joins rejected for bandwidth or latency.
    pub rejected: usize,
    /// Site-level unsubscriptions applied.
    pub unsubscribes: usize,
    /// Downstream sites re-attached after a relay left.
    pub reattached: usize,
    /// Downstream sites dropped because no feasible parent remained.
    pub dropped: usize,
}

impl ChurnReport {
    /// Returns the acceptance ratio of attempted joins (1.0 when nothing
    /// was attempted).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.subscribes == 0 {
            1.0
        } else {
            self.accepted as f64 / self.subscribes as f64
        }
    }
}

/// Error produced by a churn run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// The session's full subscription universe is not a valid problem
    /// instance (e.g. fewer than three sites).
    InvalidUniverse(teeve_overlay::ProblemError),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::InvalidUniverse(e) => write!(f, "invalid subscription universe: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChurnError::InvalidUniverse(e) => Some(e),
        }
    }
}

/// Builds the session's **subscription universe**: a problem instance in
/// which every site is a declared subscriber of every foreign stream, so
/// an incremental [`OverlayManager`] can admit any FOV a live session may
/// ever select. This is the instance churn runs and the session runtime
/// (`teeve-runtime`) operate over.
///
/// # Errors
///
/// Returns an error if the session cannot form a valid problem instance
/// (fewer than three sites).
pub fn subscription_universe(session: &Session) -> Result<ProblemInstance, ChurnError> {
    let n = session.site_count();
    let streams: Vec<u32> = SiteId::all(n)
        .map(|s| session.rp(s).camera_count())
        .collect();
    let mut builder = ProblemInstance::builder(session.costs().clone(), session.cost_bound())
        .capacities(session.capacities().to_vec())
        .streams_per_site(&streams);
    for sub in SiteId::all(n) {
        for origin in SiteId::all(n) {
            if sub == origin {
                continue;
            }
            for q in 0..streams[origin.index()] {
                builder = builder.subscribe(sub, StreamId::new(origin, q));
            }
        }
    }
    builder.build().map_err(ChurnError::InvalidUniverse)
}

/// Runs `events` against `session`, maintaining the overlay incrementally.
///
/// The session's *current* subscriptions seed the overlay; each event then
/// updates one display's FOV, and only the per-site subscription *diff* is
/// pushed into the overlay manager (leave events first, so freed slots can
/// serve the joins). With `correlation_aware`, saturated joins attempt a
/// CO-RJ victim swap before giving up.
///
/// Returns the churn statistics together with the final forest, which
/// satisfies every static invariant (see
/// [`validate_forest`](teeve_overlay::validate_forest)).
///
/// # Errors
///
/// Returns an error if the session cannot form a valid subscription
/// universe (fewer than three sites).
///
/// # Examples
///
/// ```
/// use teeve_pubsub::{run_churn, ChurnEvent, Session};
/// use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};
///
/// let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(8));
/// let mut session = Session::builder(costs)
///     .cameras_per_site(6)
///     .displays_per_site(1)
///     .symmetric_capacity(Degree::new(10))
///     .build();
/// for site in SiteId::all(4) {
///     let target = SiteId::new((site.index() as u32 + 1) % 4);
///     session.subscribe_viewpoint(DisplayId::new(site, 0), target);
/// }
///
/// // Site 0's display swings from watching site 1 to watching site 2.
/// let events = [ChurnEvent::Retarget {
///     display: DisplayId::new(SiteId::new(0), 0),
///     target: SiteId::new(2),
/// }];
/// let (report, _forest) = run_churn(&mut session, &events, false)?;
/// assert_eq!(report.events, 1);
/// assert!(report.acceptance_ratio() > 0.0);
/// # Ok::<(), teeve_pubsub::ChurnError>(())
/// ```
pub fn run_churn(
    session: &mut Session,
    events: &[ChurnEvent],
    correlation_aware: bool,
) -> Result<(ChurnReport, teeve_overlay::Forest), ChurnError> {
    let universe = subscription_universe(session)?;
    let mut manager = if correlation_aware {
        OverlayManager::new(universe).with_correlation_swapping()
    } else {
        OverlayManager::new(universe)
    };
    let mut report = ChurnReport::default();

    // Seed the overlay with the session's current aggregated state.
    let n = session.site_count();
    let mut current: Vec<BTreeSet<StreamId>> = SiteId::all(n)
        .map(|s| session.rp(s).aggregated_requests())
        .collect();
    for (i, streams) in current.iter().enumerate() {
        let site = SiteId::new(i as u32);
        for &stream in streams {
            report.subscribes += 1;
            match manager.subscribe(site, stream) {
                Ok(SubscribeResult::Joined { .. }) | Ok(SubscribeResult::AlreadyJoined) => {
                    report.accepted += 1;
                }
                _ => report.rejected += 1,
            }
        }
    }

    for &event in events {
        report.events += 1;
        let site = match event {
            ChurnEvent::Retarget { display, target } => {
                session.subscribe_viewpoint(display, target);
                display.site()
            }
            ChurnEvent::Clear { display } => {
                session.subscribe_streams(display, Vec::new());
                display.site()
            }
        };

        let next = session.rp(site).aggregated_requests();
        let prev = &current[site.index()];

        // Leaves first: freed slots can host the subsequent joins.
        for &gone in prev.difference(&next) {
            report.unsubscribes += 1;
            if let Ok(r) = manager.unsubscribe(site, gone) {
                report.reattached += r.reattached.len();
                report.dropped += r.dropped.len();
            }
        }
        for &new in next.difference(prev) {
            report.subscribes += 1;
            match manager.subscribe(site, new) {
                Ok(SubscribeResult::Joined { .. }) | Ok(SubscribeResult::AlreadyJoined) => {
                    report.accepted += 1;
                }
                _ => report.rejected += 1,
            }
        }
        current[site.index()] = next;
    }

    Ok((report, manager.into_forest()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn session(n: usize, capacity: u32) -> Session {
        let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
        Session::builder(costs)
            .cameras_per_site(6)
            .displays_per_site(2)
            .symmetric_capacity(Degree::new(capacity))
            .build()
    }

    fn ring_subscriptions(s: &mut Session, n: usize) {
        for site in SiteId::all(n) {
            let target = SiteId::new((site.index() as u32 + 1) % n as u32);
            s.subscribe_viewpoint(DisplayId::new(site, 0), target);
        }
    }

    #[test]
    fn no_events_just_seeds_the_overlay() {
        let mut s = session(4, 12);
        ring_subscriptions(&mut s, 4);
        let (report, forest) = run_churn(&mut s, &[], false).unwrap();
        assert_eq!(report.events, 0);
        assert!(report.subscribes > 0);
        assert_eq!(report.rejected, 0);
        assert!(forest.trees().iter().any(|t| t.member_count() > 1));
    }

    #[test]
    fn retarget_swings_the_subscription() {
        let mut s = session(4, 12);
        ring_subscriptions(&mut s, 4);
        let display = DisplayId::new(SiteId::new(0), 0);
        let before = s.rp(SiteId::new(0)).aggregated_requests();
        let events = [ChurnEvent::Retarget {
            display,
            target: SiteId::new(2),
        }];
        let (report, _) = run_churn(&mut s, &events, false).unwrap();
        let after = s.rp(SiteId::new(0)).aggregated_requests();
        assert_ne!(before, after, "the FOV change must alter the subscription");
        assert!(report.unsubscribes > 0);
        assert!(report.acceptance_ratio() > 0.0);
    }

    #[test]
    fn clear_releases_capacity() {
        let mut s = session(4, 12);
        ring_subscriptions(&mut s, 4);
        let events: Vec<ChurnEvent> = SiteId::all(4)
            .map(|site| ChurnEvent::Clear {
                display: DisplayId::new(site, 0),
            })
            .collect();
        let (report, forest) = run_churn(&mut s, &events, false).unwrap();
        assert_eq!(report.unsubscribes, report.subscribes - report.rejected);
        // Everything unsubscribed: the forest is back to bare sources.
        for tree in forest.trees() {
            assert_eq!(tree.member_count(), 1, "stream {}", tree.stream());
        }
    }

    #[test]
    fn churned_forest_respects_static_invariants() {
        let mut s = session(5, 8);
        ring_subscriptions(&mut s, 5);
        let mut events = Vec::new();
        for round in 0..4u32 {
            for site in SiteId::all(5) {
                events.push(ChurnEvent::Retarget {
                    display: DisplayId::new(site, round % 2),
                    target: SiteId::new((site.index() as u32 + 2 + round) % 5),
                });
            }
        }
        let (_, forest) = run_churn(&mut s, &events, false).unwrap();
        let universe = subscription_universe(&s).unwrap();
        teeve_overlay::validate_forest(&universe, &forest).expect("invariants hold under churn");
    }

    #[test]
    fn correlation_awareness_never_lowers_acceptance() {
        // Tight capacity so saturation and swapping actually occur.
        for seed_target in 1..4u32 {
            let build = |corr: bool| {
                let mut s = session(4, 4);
                ring_subscriptions(&mut s, 4);
                let events: Vec<ChurnEvent> = (0..6)
                    .map(|i| ChurnEvent::Retarget {
                        display: DisplayId::new(SiteId::new(i % 4), 0),
                        target: SiteId::new((i + seed_target) % 4),
                    })
                    .collect();
                run_churn(&mut s, &events, corr).unwrap().0
            };
            let plain = build(false);
            let aware = build(true);
            assert!(
                aware.accepted >= plain.accepted,
                "swapping should not hurt: {} vs {}",
                aware.accepted,
                plain.accepted
            );
        }
    }

    #[test]
    fn two_site_universe_is_rejected() {
        let costs = CostMatrix::from_fn(2, |_, _| CostMs::new(4));
        let mut s = Session::builder(costs)
            .cameras_per_site(2)
            .displays_per_site(1)
            .symmetric_capacity(Degree::new(4))
            .build();
        assert!(matches!(
            run_churn(&mut s, &[], false),
            Err(ChurnError::InvalidUniverse(_))
        ));
    }
}
